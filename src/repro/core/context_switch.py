"""High-level entry point to the cluster-wide context switch.

The :class:`ClusterContextSwitch` facade ties the pieces of Section 4 together:
the decision module supplies the desired state of each VM, the optimizer picks
a cheap viable placement, the planner sequences the actions into pools, and the
cost model prices the resulting plan.  This is the object the Entropy control
loop (:mod:`repro.entropy.loop`) manipulates at every iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..model.configuration import Configuration
from ..model.vm import VMState
from .cost import PlanCost, plan_cost
from .optimizer import ContextSwitchOptimizer, OptimizationResult
from .placement import PlacementConstraint
from .plan import ReconfigurationPlan
from .planner import PlannerOptions, ReconfigurationPlanner


@dataclass
class ContextSwitchReport:
    """Everything a caller needs to know about one cluster-wide context
    switch: the target configuration, the feasible plan reaching it, and its
    cost breakdown."""

    current: Configuration
    target: Configuration
    plan: ReconfigurationPlan
    cost: PlanCost
    used_fallback: bool = False

    @property
    def total_cost(self) -> int:
        return self.cost.total

    def summary(self) -> dict[str, int]:
        data = self.plan.summary()
        data["cost"] = self.total_cost
        return data


class ClusterContextSwitch:
    """Compute cluster-wide context switches between configurations."""

    def __init__(
        self,
        optimizer_timeout: float = 40.0,
        planner_options: Optional[PlannerOptions] = None,
        use_optimizer: bool = True,
        engine: str = "event",
        max_workers: Optional[int] = None,
        zone_executor: str = "auto",
    ) -> None:
        """``engine`` selects the solving strategy: a propagation engine of
        the monolithic optimizer (``"event"`` / ``"fixpoint"``) or
        ``"partitioned"``, which decomposes the cluster into independent
        placement zones solved concurrently (:mod:`repro.scale.parallel`)
        and transparently falls back to the monolithic solve when no
        decomposition exists.  ``max_workers`` / ``zone_executor`` only
        apply to the partitioned engine."""
        self.planner = ReconfigurationPlanner(planner_options)
        if engine == "partitioned":
            # Deferred import: repro.scale builds on repro.core.
            from ..scale.parallel import ParallelOptimizer

            self.optimizer = ParallelOptimizer(
                timeout=optimizer_timeout,
                planner_options=planner_options,
                max_workers=max_workers,
                zone_executor=zone_executor,
            )
        else:
            self.optimizer = ContextSwitchOptimizer(
                timeout=optimizer_timeout,
                planner_options=planner_options,
                engine=engine,
            )
        self.engine = engine
        self.use_optimizer = use_optimizer

    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Release solver resources — the partitioned engine keeps a
        persistent worker-process pool across rounds.  Idempotent, and the
        switch remains usable afterwards (the next partitioned solve
        respawns the pool); a no-op for the monolithic engines."""
        closer = getattr(self.optimizer, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "ClusterContextSwitch":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #

    def compute(
        self,
        current: Configuration,
        target_states: Mapping[str, VMState],
        vjob_of_vm: Optional[Mapping[str, str]] = None,
        fallback_target: Optional[Configuration] = None,
        constraints: Sequence[PlacementConstraint] = (),
    ) -> ContextSwitchReport:
        """Derive a target configuration from desired VM states and plan the
        switch towards it.

        When ``use_optimizer`` is False the ``fallback_target`` (e.g. an FFD
        placement) is planned directly, reproducing the baseline behaviour of
        Section 5.1.  ``constraints`` are placement relations
        (:mod:`repro.core.placement`) the target must honour.
        """
        if self.use_optimizer:
            result: OptimizationResult = self.optimizer.optimize(
                current,
                target_states,
                vjob_of_vm=vjob_of_vm,
                fallback_target=fallback_target,
                constraints=constraints,
            )
            return ContextSwitchReport(
                current=current,
                target=result.target,
                plan=result.plan,
                cost=plan_cost(result.plan),
                used_fallback=result.used_fallback,
            )
        if fallback_target is None:
            raise ValueError(
                "use_optimizer=False requires an explicit fallback_target"
            )
        return self.plan_to(current, fallback_target, vjob_of_vm, constraints)

    def plan_to(
        self,
        current: Configuration,
        target: Configuration,
        vjob_of_vm: Optional[Mapping[str, str]] = None,
        constraints: Sequence[PlacementConstraint] = (),
    ) -> ContextSwitchReport:
        """Plan the switch towards an explicit target configuration.

        ``constraints`` only turn on continuous-satisfaction bookkeeping here
        (the target is the caller's responsibility); violations of
        intermediate states land on ``plan.constraint_violations``.
        """
        plan = self.planner.build(current, target, vjob_of_vm, constraints=constraints)
        return ContextSwitchReport(
            current=current,
            target=target,
            plan=plan,
            cost=plan_cost(plan),
        )
