"""High-level entry point to the cluster-wide context switch.

The :class:`ClusterContextSwitch` facade ties the pieces of Section 4 together:
the decision module supplies the desired state of each VM, the optimizer picks
a cheap viable placement, the planner sequences the actions into pools, and the
cost model prices the resulting plan.  This is the object the Entropy control
loop (:mod:`repro.entropy.loop`) manipulates at every iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..cp.solver import SearchStatistics
from ..model.configuration import Configuration
from ..model.vm import VMState
from ..obs import span
from .cost import PlanCost, plan_cost
from .optimizer import ContextSwitchOptimizer, OptimizationResult
from .placement import PlacementConstraint
from .plan import ReconfigurationPlan
from .planner import PlannerOptions, ReconfigurationPlanner


@dataclass
class ContextSwitchReport:
    """Everything a caller needs to know about one cluster-wide context
    switch: the target configuration, the feasible plan reaching it, and its
    cost breakdown."""

    current: Configuration
    target: Configuration
    plan: ReconfigurationPlan
    cost: PlanCost
    used_fallback: bool = False
    #: Repair-engine trace (:meth:`repro.repair.RepairResult.trace`) when the
    #: switch was computed by ``engine="repair"`` / ``"repair-partitioned"``;
    #: ``None`` for the cold engines.
    repair: Optional[dict] = None
    #: CP search statistics of the optimizing solve that produced the
    #: target (merged across zones for the partitioned engines); ``None``
    #: when no search ran (:meth:`ClusterContextSwitch.plan_to`).
    statistics: Optional[SearchStatistics] = None

    @property
    def total_cost(self) -> int:
        return self.cost.total

    def summary(self) -> dict[str, int]:
        data = self.plan.summary()
        data["cost"] = self.total_cost
        return data


class ClusterContextSwitch:
    """Compute cluster-wide context switches between configurations."""

    def __init__(
        self,
        optimizer_timeout: float = 40.0,
        planner_options: Optional[PlannerOptions] = None,
        use_optimizer: bool = True,
        engine: str = "event",
        max_workers: Optional[int] = None,
        zone_executor: str = "auto",
        repair_halo: int = 1,
    ) -> None:
        """``engine`` selects the solving strategy: a propagation engine of
        the monolithic optimizer (``"event"`` / ``"fixpoint"``),
        ``"partitioned"``, which decomposes the cluster into independent
        placement zones solved concurrently (:mod:`repro.scale.parallel`)
        and transparently falls back to the monolithic solve when no
        decomposition exists, or the incremental ``"repair"`` /
        ``"repair-partitioned"`` engines (:mod:`repro.repair`), which
        freeze the VMs outside the round's perturbed region and solve the
        dirty region only, falling back to the full solve on
        infeasibility.  ``max_workers`` / ``zone_executor`` only apply to
        the partitioned engines; ``repair_halo`` tunes the dirty region's
        co-host expansion for the repair engines."""
        self.planner = ReconfigurationPlanner(planner_options)
        if engine in ("partitioned", "repair-partitioned"):
            # Deferred import: repro.scale builds on repro.core.
            from ..scale.parallel import ParallelOptimizer

            self.optimizer = ParallelOptimizer(
                timeout=optimizer_timeout,
                planner_options=planner_options,
                max_workers=max_workers,
                zone_executor=zone_executor,
            )
        elif engine == "repair":
            self.optimizer = ContextSwitchOptimizer(
                timeout=optimizer_timeout,
                planner_options=planner_options,
            )
        else:
            self.optimizer = ContextSwitchOptimizer(
                timeout=optimizer_timeout,
                planner_options=planner_options,
                engine=engine,
            )
        if engine in ("repair", "repair-partitioned"):
            # Deferred import: repro.repair builds on repro.core and scale.
            from ..repair import RepairOptimizer

            self.optimizer = RepairOptimizer(
                self.optimizer,
                timeout=optimizer_timeout,
                halo=repair_halo,
            )
        self.engine = engine
        self.use_optimizer = use_optimizer

    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Release solver resources — the partitioned engine keeps a
        persistent worker-process pool across rounds.  Idempotent, and the
        switch remains usable afterwards (the next partitioned solve
        respawns the pool); a no-op for the monolithic engines."""
        closer = getattr(self.optimizer, "close", None)
        if closer is not None:
            closer()

    def mark_dirty(self, vms) -> None:
        """Forward the round's perturbed VMs to the repair engine; a no-op
        for the cold engines (they re-solve everything anyway)."""
        marker = getattr(self.optimizer, "mark_dirty", None)
        if marker is not None:
            marker(vms)

    def __enter__(self) -> "ClusterContextSwitch":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #

    def compute(
        self,
        current: Configuration,
        target_states: Mapping[str, VMState],
        vjob_of_vm: Optional[Mapping[str, str]] = None,
        fallback_target: Optional[Configuration] = None,
        constraints: Sequence[PlacementConstraint] = (),
    ) -> ContextSwitchReport:
        """Derive a target configuration from desired VM states and plan the
        switch towards it.

        When ``use_optimizer`` is False the ``fallback_target`` (e.g. an FFD
        placement) is planned directly, reproducing the baseline behaviour of
        Section 5.1.  ``constraints`` are placement relations
        (:mod:`repro.core.placement`) the target must honour.
        """
        if self.use_optimizer:
            with span("solve", engine=self.engine) as solve_span:
                result: OptimizationResult = self.optimizer.optimize(
                    current,
                    target_states,
                    vjob_of_vm=vjob_of_vm,
                    fallback_target=fallback_target,
                    constraints=constraints,
                )
                if result.used_fallback:
                    solve_span.set(used_fallback=True)
            trace = getattr(result, "trace", None)
            return ContextSwitchReport(
                current=current,
                target=result.target,
                plan=result.plan,
                cost=plan_cost(result.plan),
                used_fallback=result.used_fallback,
                repair=trace() if callable(trace) else None,
                statistics=getattr(result, "statistics", None),
            )
        if fallback_target is None:
            raise ValueError(
                "use_optimizer=False requires an explicit fallback_target"
            )
        return self.plan_to(current, fallback_target, vjob_of_vm, constraints)

    def plan_to(
        self,
        current: Configuration,
        target: Configuration,
        vjob_of_vm: Optional[Mapping[str, str]] = None,
        constraints: Sequence[PlacementConstraint] = (),
    ) -> ContextSwitchReport:
        """Plan the switch towards an explicit target configuration.

        ``constraints`` only turn on continuous-satisfaction bookkeeping here
        (the target is the caller's responsibility); violations of
        intermediate states land on ``plan.constraint_violations``.
        """
        plan = self.planner.build(current, target, vjob_of_vm, constraints=constraints)
        return ContextSwitchReport(
            current=current,
            target=target,
            plan=plan,
            cost=plan_cost(plan),
        )
