"""Reconfiguration plans: ordered pools of parallel actions (Section 4.1).

A plan is a sequence of *pools*.  Pools are executed sequentially while the
actions of one pool run in parallel.  A plan is *feasible* when every action is
feasible against the temporary configuration obtained by applying all previous
pools, and *correct* for a target configuration when applying the whole plan to
the source configuration produces that target assignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..model.configuration import Configuration
from ..model.errors import PlanningError
from ..model.resources import ResourceVector
from .actions import Action, ActionKind


def apply_pool_effects(configuration: Configuration, pool: Iterable[Action]) -> None:
    """Apply a pool's actions to ``configuration`` in place: liberating
    actions first, consumers second.  The end state is order-independent
    (one action touches at most one VM); this is the single definition of
    the pool end-state convention shared by plan application, the planner's
    working states and the constraint checker's stage walk."""
    for action in pool:
        if not action.consumes_resources():
            action.apply(configuration)
    for action in pool:
        if action.consumes_resources():
            action.apply(configuration)


@dataclass
class Pool:
    """A set of actions feasible in parallel."""

    actions: list[Action] = field(default_factory=list)

    def add(self, action: Action) -> None:
        self.actions.append(action)

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self) -> Iterator[Action]:
        return iter(self.actions)

    def __bool__(self) -> bool:
        return bool(self.actions)

    def cost(self, configuration: Configuration) -> int:
        """Cost of a pool: the cost of its most expensive action."""
        if not self.actions:
            return 0
        return max(action.cost(configuration) for action in self.actions)

    def kinds(self) -> dict[ActionKind, int]:
        counts: dict[ActionKind, int] = {}
        for action in self.actions:
            counts[action.kind] = counts.get(action.kind, 0) + 1
        return counts

    def __str__(self) -> str:
        return "{" + ", ".join(str(a) for a in self.actions) + "}"


@dataclass
class ReconfigurationPlan:
    """An ordered sequence of pools transforming ``source`` into a target
    assignment.

    ``constraint_violations`` is filled by the planner when placement
    constraints are supplied: each entry is a
    :class:`repro.constraints.checker.Violation` flagging an intermediate
    state (pool boundary) that breaks a constraint — continuous satisfaction
    bookkeeping, empty on unconstrained plans.
    """

    source: Configuration
    pools: list[Pool] = field(default_factory=list)
    constraint_violations: list = field(default_factory=list)

    @property
    def honours_constraints(self) -> bool:
        """True when no intermediate state broke a supplied constraint."""
        return not self.constraint_violations

    # -- construction ---------------------------------------------------------

    def append_pool(self, pool: Pool) -> None:
        if pool:
            self.pools.append(pool)

    # -- basic queries --------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not any(self.pools)

    def actions(self) -> list[Action]:
        return [action for pool in self.pools for action in pool]

    def action_count(self) -> int:
        return sum(len(pool) for pool in self.pools)

    def count(self, kind: ActionKind) -> int:
        return sum(1 for action in self.actions() if action.kind is kind)

    def pool_of(self, action: Action) -> int:
        for index, pool in enumerate(self.pools):
            if action in pool.actions:
                return index
        raise PlanningError(f"action {action} is not part of the plan")

    def __len__(self) -> int:
        return len(self.pools)

    def __iter__(self) -> Iterator[Pool]:
        return iter(self.pools)

    # -- semantics ------------------------------------------------------------

    def apply(self, configuration: Configuration | None = None) -> Configuration:
        """Apply every pool in order and return the resulting configuration.

        Raises :class:`PlanningError` if an action is not feasible when its
        pool starts — i.e. the plan violates the sequential constraints.
        """
        current = (configuration or self.source).copy()
        for index, pool in enumerate(self.pools):
            # Every action of the pool must be feasible before the pool starts.
            for action in pool:
                if not action.is_feasible(current):
                    raise PlanningError(
                        f"pool {index}: action {action} is not feasible"
                    )
            # Conservative parallel feasibility: the consumers of the pool must
            # fit on their destination nodes *without* counting the resources
            # that same-pool actions liberate (those only become available once
            # the pool completes).
            incoming: dict[str, list[Action]] = {}
            for action in pool:
                destination = action.destination()
                if destination is not None:
                    incoming.setdefault(destination, []).append(action)
            for node, actions in incoming.items():
                demand = ResourceVector.total(
                    current.vm(a.vm).demand for a in actions
                )
                if not demand.fits_in(current.free_capacity(node)):
                    raise PlanningError(
                        f"pool {index}: the actions targeting node {node} do "
                        "not fit in parallel"
                    )
            next_configuration = current.copy()
            apply_pool_effects(next_configuration, pool)
            current = next_configuration
        return current

    def is_feasible(self) -> bool:
        try:
            self.apply()
        except PlanningError:
            return False
        return True

    def check_reaches(self, target: Configuration) -> None:
        """Verify that applying the plan yields the target assignment."""
        result = self.apply()
        if not result.same_assignment(target):
            raise PlanningError("the plan does not reach the expected configuration")

    # -- reporting ------------------------------------------------------------

    def summary(self) -> dict[str, int]:
        counts = {kind.value: 0 for kind in ActionKind}
        for action in self.actions():
            counts[action.kind.value] += 1
        counts["pools"] = len(self.pools)
        counts["actions"] = self.action_count()
        return counts

    def __str__(self) -> str:
        lines = [f"ReconfigurationPlan({self.action_count()} actions, "
                 f"{len(self.pools)} pools)"]
        for index, pool in enumerate(self.pools):
            lines.append(f"  pool {index}: {pool}")
        return "\n".join(lines)


def merge_pools(pools: Iterable[Pool]) -> Pool:
    """Merge several pools into one (used by the vjob-consistency step)."""
    merged = Pool()
    for pool in pools:
        for action in pool:
            merged.add(action)
    return merged


def plan_from_pools(source: Configuration, pools: Sequence[Sequence[Action]]) -> ReconfigurationPlan:
    """Convenience constructor used by tests."""
    plan = ReconfigurationPlan(source=source.copy())
    for actions in pools:
        plan.append_pool(Pool(list(actions)))
    return plan
