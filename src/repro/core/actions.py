"""VM context-switch actions (Section 2.2) and their local costs (Table 1).

Five actions change the state or the location of a VM:

========  =========================================  ==========================
action    effect                                      local cost (Table 1)
========  =========================================  ==========================
run       Waiting -> Running on a destination node    constant (0)
stop      Running -> Terminated                       constant (0)
migrate   live-migrate a running VM                   Dm(vm)
suspend   Running -> Sleeping (image written on the   Dm(vm)
          hosting node)
resume    Sleeping -> Running                          Dm(vm) if resumed on the
                                                       node holding the image,
                                                       2 x Dm(vm) otherwise
========  =========================================  ==========================

where ``Dm(vm)`` is the memory demand (MB) of the manipulated VM.

Every action knows whether it *liberates* resources (suspend, stop), *requires*
resources on a destination node (run, resume, migrate), whether it is feasible
against a given configuration, and how to apply itself to a configuration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..model.configuration import Configuration
from ..model.errors import ExecutionError
from ..model.resources import ResourceVector
from ..model.vm import VMState


class ActionKind(enum.Enum):
    RUN = "run"
    STOP = "stop"
    MIGRATE = "migrate"
    SUSPEND = "suspend"
    RESUME = "resume"


@dataclass(frozen=True)
class Action:
    """Base class of the five VM actions."""

    vm: str

    @property
    def kind(self) -> ActionKind:
        raise NotImplementedError

    # -- resource effects ----------------------------------------------------

    def destination(self) -> Optional[str]:
        """Node on which the action consumes resources, if any."""
        return None

    def source(self) -> Optional[str]:
        """Node on which the action liberates resources, if any."""
        return None

    def consumes_resources(self) -> bool:
        return self.destination() is not None

    def liberates_resources(self) -> bool:
        return self.source() is not None

    # -- cost (Table 1) ------------------------------------------------------

    def cost(self, configuration: Configuration) -> int:
        """Local cost of the action in the model of Table 1."""
        raise NotImplementedError

    # -- feasibility & application --------------------------------------------

    def is_feasible(self, configuration: Configuration) -> bool:
        """True when the action can start against ``configuration``."""
        raise NotImplementedError

    def apply(self, configuration: Configuration) -> None:
        """Mutate ``configuration`` to reflect the action's completion."""
        raise NotImplementedError

    def __str__(self) -> str:
        return f"{self.kind.value}({self.vm})"


@dataclass(frozen=True)
class Run(Action):
    """Boot the VM on ``node`` (Waiting -> Running)."""

    node: str

    @property
    def kind(self) -> ActionKind:
        return ActionKind.RUN

    def destination(self) -> Optional[str]:
        return self.node

    def cost(self, configuration: Configuration) -> int:
        return 0

    def is_feasible(self, configuration: Configuration) -> bool:
        vm = configuration.vm(self.vm)
        if configuration.state_of(self.vm) is not VMState.WAITING:
            return False
        return configuration.can_host(self.node, vm)

    def apply(self, configuration: Configuration) -> None:
        if configuration.state_of(self.vm) is not VMState.WAITING:
            raise ExecutionError(f"run({self.vm}): VM is not waiting")
        configuration.set_running(self.vm, self.node)

    def __str__(self) -> str:
        return f"run({self.vm} on {self.node})"


@dataclass(frozen=True)
class Stop(Action):
    """Shut the VM down (Running -> Terminated)."""

    node: str

    @property
    def kind(self) -> ActionKind:
        return ActionKind.STOP

    def source(self) -> Optional[str]:
        return self.node

    def cost(self, configuration: Configuration) -> int:
        return 0

    def is_feasible(self, configuration: Configuration) -> bool:
        return configuration.state_of(self.vm) is VMState.RUNNING

    def apply(self, configuration: Configuration) -> None:
        if configuration.state_of(self.vm) is not VMState.RUNNING:
            raise ExecutionError(f"stop({self.vm}): VM is not running")
        configuration.set_terminated(self.vm)

    def __str__(self) -> str:
        return f"stop({self.vm} on {self.node})"


@dataclass(frozen=True)
class Migrate(Action):
    """Live-migrate a running VM from ``source_node`` to ``destination_node``."""

    source_node: str
    destination_node: str

    @property
    def kind(self) -> ActionKind:
        return ActionKind.MIGRATE

    def destination(self) -> Optional[str]:
        return self.destination_node

    def source(self) -> Optional[str]:
        return self.source_node

    def cost(self, configuration: Configuration) -> int:
        return configuration.vm(self.vm).memory

    def is_feasible(self, configuration: Configuration) -> bool:
        if configuration.state_of(self.vm) is not VMState.RUNNING:
            return False
        if configuration.location_of(self.vm) != self.source_node:
            return False
        vm = configuration.vm(self.vm)
        return configuration.can_host(self.destination_node, vm)

    def apply(self, configuration: Configuration) -> None:
        if configuration.location_of(self.vm) != self.source_node:
            raise ExecutionError(
                f"migrate({self.vm}): VM is not on {self.source_node}"
            )
        configuration.migrate(self.vm, self.destination_node)

    def __str__(self) -> str:
        return f"migrate({self.vm}: {self.source_node} -> {self.destination_node})"


@dataclass(frozen=True)
class Suspend(Action):
    """Suspend a running VM to disk on its hosting node (Running -> Sleeping)."""

    node: str

    @property
    def kind(self) -> ActionKind:
        return ActionKind.SUSPEND

    def source(self) -> Optional[str]:
        return self.node

    def cost(self, configuration: Configuration) -> int:
        return configuration.vm(self.vm).memory

    def is_feasible(self, configuration: Configuration) -> bool:
        return (
            configuration.state_of(self.vm) is VMState.RUNNING
            and configuration.location_of(self.vm) == self.node
        )

    def apply(self, configuration: Configuration) -> None:
        if configuration.state_of(self.vm) is not VMState.RUNNING:
            raise ExecutionError(f"suspend({self.vm}): VM is not running")
        configuration.set_sleeping(self.vm, self.node)

    def __str__(self) -> str:
        return f"suspend({self.vm} on {self.node})"


@dataclass(frozen=True)
class Resume(Action):
    """Resume a sleeping VM on ``destination_node`` (Sleeping -> Running).

    The resume is *local* when the destination node already holds the suspend
    image, and *remote* otherwise (the image must be transferred first, which
    doubles the cost — Table 1).
    """

    image_node: Optional[str]
    destination_node: str

    @property
    def kind(self) -> ActionKind:
        return ActionKind.RESUME

    def destination(self) -> Optional[str]:
        return self.destination_node

    @property
    def is_local(self) -> bool:
        return self.image_node == self.destination_node

    def cost(self, configuration: Configuration) -> int:
        memory = configuration.vm(self.vm).memory
        return memory if self.is_local else 2 * memory

    def is_feasible(self, configuration: Configuration) -> bool:
        if configuration.state_of(self.vm) is not VMState.SLEEPING:
            return False
        vm = configuration.vm(self.vm)
        return configuration.can_host(self.destination_node, vm)

    def apply(self, configuration: Configuration) -> None:
        if configuration.state_of(self.vm) is not VMState.SLEEPING:
            raise ExecutionError(f"resume({self.vm}): VM is not sleeping")
        configuration.set_running(self.vm, self.destination_node)

    def __str__(self) -> str:
        flavour = "local" if self.is_local else "remote"
        return f"resume({self.vm} on {self.destination_node}, {flavour})"


def required_resources(action: Action, configuration: Configuration) -> ResourceVector:
    """Resources the action claims on its destination node (zero if none)."""
    if not action.consumes_resources():
        return ResourceVector(0, 0)
    return configuration.vm(action.vm).demand
