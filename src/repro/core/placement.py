"""Compatibility shim for the historical placement-constraint module.

The constraint system grew into the full :mod:`repro.constraints` subsystem
(nine-relation catalog, independent configuration/plan checkers, repair
hooks, greedy candidate filtering).  This module keeps the original import
surface alive — ``from repro.core.placement import Spread, check_constraints``
keeps working — while the implementation lives in one place.

``check_constraints`` is the historical name of
:func:`repro.constraints.checker.violated_constraints`.

Two deliberate changes rode along for custom subclasses:

* the optimizer now passes the observed configuration to
  ``allowed_nodes(vm_name, node_names, configuration=None)`` (stateful
  relations like ``Root`` need it) — old two-parameter overrides must add
  the third parameter;
* the validating ``__init__(vms)`` moved from the base class to
  :class:`repro.constraints.VMGroupConstraint` (the base also covers
  node-scoped relations now) — subclasses calling ``super().__init__(vms)``
  should derive from ``VMGroupConstraint`` instead.

The concrete relations, ``cp_constraints``, ``is_satisfied_by`` and
``check_constraints`` behave as before.
"""

from __future__ import annotations

from ..constraints import (
    Among,
    Ban,
    Fence,
    Gather,
    Lonely,
    MaxOnline,
    PlacementConstraint,
    Root,
    RunningCapacity,
    Spread,
    violated_constraints as check_constraints,
)

__all__ = [
    "PlacementConstraint",
    "Spread",
    "Gather",
    "Ban",
    "Fence",
    "Among",
    "Root",
    "MaxOnline",
    "RunningCapacity",
    "Lonely",
    "check_constraints",
]
