"""Placement constraints between VMs and nodes.

The paper's conclusion announces "additional low level relations between the
VMs in the decision module", such as "hosting some VMs on different nodes for
high availability considerations", already available in the original Entropy.
This module provides those relations and the optimizer honours them when it
searches for the target configuration:

* :class:`Spread` — the running VMs of a group must be hosted on pairwise
  distinct nodes (high availability);
* :class:`Gather` — the running VMs of a group must share one node (latency /
  page-sharing friendly co-location);
* :class:`Ban` — a group of VMs may never run on a given set of nodes
  (maintenance, licensing);
* :class:`Fence` — a group of VMs may only run inside a given set of nodes
  (hardware affinity, security zones).

A constraint restricts where VMs may *run*; it says nothing about sleeping,
waiting or terminated VMs.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from ..cp import AllDifferent, Constraint as CPConstraint
from ..cp.constraints import AllEqual
from ..cp.variables import IntVar
from ..model.configuration import Configuration


class PlacementConstraint:
    """Base class of the VM placement relations."""

    def __init__(self, vms: Iterable[str]):
        self.vms: tuple[str, ...] = tuple(vms)
        if not self.vms:
            raise ValueError("a placement constraint needs at least one VM")

    # -- unary part ------------------------------------------------------------

    def allowed_nodes(self, vm_name: str, node_names: Sequence[str]) -> Optional[set[str]]:
        """Nodes on which ``vm_name`` may run, or ``None`` when the constraint
        does not restrict that VM individually."""
        return None

    # -- n-ary part -------------------------------------------------------------

    def cp_constraints(
        self,
        variables: Mapping[str, IntVar],
        node_index: Mapping[str, int],
    ) -> list[CPConstraint]:
        """Solver constraints over the assignment variables of the running VMs
        involved in this relation (empty when the relation is purely unary)."""
        return []

    # -- validation --------------------------------------------------------------

    def is_satisfied_by(self, configuration: Configuration) -> bool:
        """Check the relation on a concrete configuration."""
        raise NotImplementedError

    def _running_locations(self, configuration: Configuration) -> list[str]:
        locations = []
        for vm_name in self.vms:
            if not configuration.has_vm(vm_name):
                continue
            node = configuration.location_of(vm_name)
            if node is not None:
                locations.append(node)
        return locations

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({', '.join(self.vms)})"


class Spread(PlacementConstraint):
    """The running VMs of the group are hosted on pairwise distinct nodes."""

    def cp_constraints(self, variables, node_index):
        involved = [variables[vm] for vm in self.vms if vm in variables]
        if len(involved) < 2:
            return []
        return [AllDifferent(involved)]

    def is_satisfied_by(self, configuration: Configuration) -> bool:
        locations = self._running_locations(configuration)
        return len(locations) == len(set(locations))


class Gather(PlacementConstraint):
    """The running VMs of the group share a single hosting node."""

    def cp_constraints(self, variables, node_index):
        involved = [variables[vm] for vm in self.vms if vm in variables]
        if len(involved) < 2:
            return []
        return [AllEqual(involved)]

    def is_satisfied_by(self, configuration: Configuration) -> bool:
        locations = self._running_locations(configuration)
        return len(set(locations)) <= 1


class Ban(PlacementConstraint):
    """The VMs of the group may never run on the banned nodes."""

    def __init__(self, vms: Iterable[str], nodes: Iterable[str]):
        super().__init__(vms)
        self.nodes: frozenset[str] = frozenset(nodes)
        if not self.nodes:
            raise ValueError("Ban requires at least one node")

    def allowed_nodes(self, vm_name, node_names):
        if vm_name not in self.vms:
            return None
        return {n for n in node_names if n not in self.nodes}

    def is_satisfied_by(self, configuration: Configuration) -> bool:
        return not any(
            node in self.nodes for node in self._running_locations(configuration)
        )


class Fence(PlacementConstraint):
    """The VMs of the group may only run inside the given node set."""

    def __init__(self, vms: Iterable[str], nodes: Iterable[str]):
        super().__init__(vms)
        self.nodes: frozenset[str] = frozenset(nodes)
        if not self.nodes:
            raise ValueError("Fence requires at least one node")

    def allowed_nodes(self, vm_name, node_names):
        if vm_name not in self.vms:
            return None
        return {n for n in node_names if n in self.nodes}

    def is_satisfied_by(self, configuration: Configuration) -> bool:
        return all(
            node in self.nodes for node in self._running_locations(configuration)
        )


def check_constraints(
    configuration: Configuration,
    constraints: Sequence[PlacementConstraint],
) -> list[PlacementConstraint]:
    """Return the constraints violated by ``configuration``."""
    return [c for c in constraints if not c.is_satisfied_by(configuration)]
