"""Cost model of a cluster-wide context switch (Section 4.2).

The cost of a whole plan is the sum of the *total* costs of all its actions.
The total cost of an action is the sum of the costs of the pools that precede
its own pool, plus the *local* cost of the action (Table 1).  The cost of a
pool is the cost of its most expensive action.  The model conservatively
assumes that delaying an action degrades the context switch, which is why the
optimizer tries to schedule actions as early as possible and to maximize pool
sizes (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..model.configuration import Configuration
from .actions import Action
from .plan import Pool, ReconfigurationPlan


@dataclass(frozen=True)
class ActionCost:
    """Cost breakdown for a single action of a plan."""

    action: Action
    pool_index: int
    local_cost: int
    delay_cost: int

    @property
    def total_cost(self) -> int:
        return self.local_cost + self.delay_cost


@dataclass(frozen=True)
class PlanCost:
    """Cost breakdown of a whole reconfiguration plan."""

    actions: tuple[ActionCost, ...]
    pool_costs: tuple[int, ...]

    @property
    def total(self) -> int:
        return sum(item.total_cost for item in self.actions)

    @property
    def local_total(self) -> int:
        """Sum of the local costs only (the lower bound the optimizer uses)."""
        return sum(item.local_cost for item in self.actions)

    def __int__(self) -> int:
        return self.total


def pool_cost(pool: Pool, configuration: Configuration) -> int:
    """Cost of a pool: its most expensive action (0 for an empty pool)."""
    return pool.cost(configuration)


def plan_cost(plan: ReconfigurationPlan, configuration: Configuration | None = None) -> PlanCost:
    """Evaluate the full cost model on a plan.

    ``configuration`` provides the memory demands used by Table 1; it defaults
    to the plan's source configuration (memory demands do not change during a
    context switch).
    """
    reference = configuration or plan.source
    pool_costs: list[int] = [pool_cost(pool, reference) for pool in plan.pools]
    breakdown: list[ActionCost] = []
    elapsed = 0
    for index, pool in enumerate(plan.pools):
        for action in pool:
            breakdown.append(
                ActionCost(
                    action=action,
                    pool_index=index,
                    local_cost=action.cost(reference),
                    delay_cost=elapsed,
                )
            )
        elapsed += pool_costs[index]
    return PlanCost(actions=tuple(breakdown), pool_costs=tuple(pool_costs))


def total_cost(plan: ReconfigurationPlan, configuration: Configuration | None = None) -> int:
    """Shortcut returning only the scalar cost of a plan."""
    return plan_cost(plan, configuration).total


def minimum_possible_cost(plan: ReconfigurationPlan, configuration: Configuration | None = None) -> int:
    """Lower bound of any plan performing the same actions: the sum of the
    local costs, i.e. the cost of a hypothetical plan with a single pool."""
    return plan_cost(plan, configuration).local_total
