"""Reconfiguration graphs (Section 4.1).

A reconfiguration graph is an oriented multigraph whose vertices are the
cluster nodes and whose edges are the VM actions required to go from a current
configuration to a target configuration.  Each edge carries the action and the
CPU/memory demand of the manipulated VM; each vertex carries the node's
capacities.  The graph is recomputed after every pool from the temporary
configuration, so it always describes the *remaining* work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..model.configuration import Configuration
from ..model.errors import PlanningError
from ..model.resources import ResourceVector
from ..model.vm import VMState
from .actions import Action, Migrate, Resume, Run, Stop, Suspend


@dataclass(frozen=True)
class Edge:
    """One action of the graph, annotated with the VM demand."""

    action: Action
    demand: ResourceVector

    @property
    def source(self) -> Optional[str]:
        return self.action.source()

    @property
    def destination(self) -> Optional[str]:
        return self.action.destination()


@dataclass
class ReconfigurationGraph:
    """The remaining actions between two configurations."""

    current: Configuration
    target: Configuration
    edges: list[Edge] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.edges:
            self.edges = list(_derive_edges(self.current, self.target))

    # -- queries ---------------------------------------------------------------

    @property
    def actions(self) -> list[Action]:
        return [edge.action for edge in self.edges]

    def is_empty(self) -> bool:
        return not self.edges

    def incoming(self, node: str) -> list[Edge]:
        return [edge for edge in self.edges if edge.destination == node]

    def outgoing(self, node: str) -> list[Edge]:
        return [edge for edge in self.edges if edge.source == node]

    def __len__(self) -> int:
        return len(self.edges)


def _derive_edges(current: Configuration, target: Configuration) -> Iterable[Edge]:
    """Compute the actions needed to turn ``current`` into ``target``.

    One action at most is generated per VM:

    * Waiting -> Running: ``run`` on the target node;
    * Sleeping -> Running: ``resume`` on the target node (local or remote
      depending on where the suspend image lives);
    * Running -> Running on a different node: ``migrate``;
    * Running -> Sleeping: ``suspend`` on the current node;
    * Running -> Terminated: ``stop``;
    * Waiting/Sleeping -> Terminated and no-op transitions produce no action.
    """
    if set(current.vm_names) != set(target.vm_names):
        raise PlanningError(
            "current and target configurations do not describe the same VMs"
        )
    for vm_name in current.vm_names:
        vm = current.vm(vm_name)
        current_state = current.state_of(vm_name)
        target_state = target.state_of(vm_name)

        if target_state is VMState.RUNNING:
            destination = target.location_of(vm_name)
            if destination is None:
                raise PlanningError(
                    f"target configuration does not place running VM {vm_name!r}"
                )
            if current_state is VMState.WAITING:
                action: Action = Run(vm=vm_name, node=destination)
            elif current_state is VMState.SLEEPING:
                action = Resume(
                    vm=vm_name,
                    image_node=current.image_location_of(vm_name),
                    destination_node=destination,
                )
            elif current_state is VMState.RUNNING:
                origin = current.location_of(vm_name)
                if origin == destination:
                    continue
                action = Migrate(
                    vm=vm_name, source_node=origin, destination_node=destination
                )
            else:
                raise PlanningError(
                    f"VM {vm_name!r} is terminated and cannot run again"
                )
            yield Edge(action=action, demand=vm.demand)

        elif target_state is VMState.SLEEPING:
            if current_state is VMState.RUNNING:
                node = current.location_of(vm_name)
                yield Edge(
                    action=Suspend(vm=vm_name, node=node), demand=vm.demand
                )
            # Sleeping -> Sleeping and Waiting -> Sleeping: nothing to do
            # (a waiting VM cannot be suspended, the decision module keeps it
            # waiting instead).

        elif target_state is VMState.TERMINATED:
            if current_state is VMState.RUNNING:
                node = current.location_of(vm_name)
                yield Edge(action=Stop(vm=vm_name, node=node), demand=vm.demand)
            # Waiting/Sleeping VMs are removed without a driver action.

        elif target_state is VMState.WAITING:
            if current_state is VMState.RUNNING:
                # The life cycle (Figure 2) has no Running -> Waiting edge: a
                # running vjob can only be suspended or terminated.
                raise PlanningError(
                    f"VM {vm_name!r} is running and cannot return to the "
                    "Waiting state"
                )
            # Waiting/Sleeping VMs staying out of the Running state need no
            # driver action.
