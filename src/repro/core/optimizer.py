"""CP-based optimization of the cluster-wide context switch (Section 4.3).

Given the current configuration and the *states* the decision module wants for
every VM (``mustBeRunning``, ``mustBeReady`` / sleeping, terminated or
unchanged), several viable placements are usually possible, and they differ
by the cost of their reconfiguration plan.  The optimizer models the placement
of the VMs that must run as a constraint satisfaction problem:

* one assignment variable per running VM, whose domain is the set of nodes;
* a 2-dimensional bin-packing constraint relating assignments to the CPU and
  memory capacities of the nodes (Definition 4.1);
* a cost variable equal to the sum of per-VM movement costs (Table 1): 0 when
  a running VM stays on its host or a waiting VM boots anywhere, ``Dm`` for a
  migration or a local resume, ``2 Dm`` for a remote resume;

and searches for the assignment minimizing that cost with branch-and-bound,
using a first-fail variable ordering (most demanding VMs first) and a value
ordering that favours each VM's current location.  The suspend costs are a
constant offset (they do not depend on the placement) and are added after the
search.  The best assignment found within the timeout is turned into a target
configuration and a feasible plan by :mod:`repro.core.planner`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..model.configuration import Configuration
from ..model.errors import PlanningError, SolverError
from ..model.vm import VMState
from ..cp import (
    ENGINES,
    ActivityLastConflict,
    ElementSum,
    IntVar,
    Model,
    SearchStatistics,
    Solver,
    VectorPacking,
    prefer_value,
    static_order,
)
from .cost import plan_cost
from .placement import PlacementConstraint, check_constraints
from .plan import ReconfigurationPlan
from .planner import PlannerOptions, ReconfigurationPlanner


#: Maximum number of distinct values allowed in the objective domain; larger
#: cost ranges are scaled down (the optimum is then approximate, which only
#: affects tie-breaking between plans of nearly identical costs).
_MAX_OBJECTIVE_RANGE = 120_000


@dataclass
class OptimizationResult:
    """Outcome of :meth:`ContextSwitchOptimizer.optimize`."""

    target: Configuration
    plan: ReconfigurationPlan
    cost: int
    movement_cost: int
    fixed_cost: int
    used_fallback: bool = False
    statistics: Optional[SearchStatistics] = None
    improving_costs: list[int] = field(default_factory=list)


class ContextSwitchOptimizer:
    """Search for a cheap viable placement honouring requested VM states."""

    def __init__(
        self,
        timeout: float = 40.0,
        planner_options: Optional[PlannerOptions] = None,
        first_solution_only: bool = False,
        engine: str = "event",
        use_greedy_bound: bool = True,
        node_limit: Optional[int] = None,
    ) -> None:
        """``engine`` selects the propagation engine (``"event"`` or the
        naive ``"fixpoint"`` reference); ``use_greedy_bound=False`` disables
        the greedy incumbent so the search effort itself can be measured
        (used by ``benchmarks/bench_solver_scaling.py``); ``node_limit``
        caps the search-tree size deterministically."""
        if engine not in ENGINES:
            raise SolverError(
                f"unknown propagation engine {engine!r}; expected one of {ENGINES}"
            )
        self.timeout = timeout
        self.planner = ReconfigurationPlanner(planner_options)
        self.first_solution_only = first_solution_only
        self.engine = engine
        self.use_greedy_bound = use_greedy_bound
        self.node_limit = node_limit

    # ------------------------------------------------------------------ #
    # public API                                                          #
    # ------------------------------------------------------------------ #

    def optimize(
        self,
        current: Configuration,
        target_states: Mapping[str, VMState],
        vjob_of_vm: Optional[Mapping[str, str]] = None,
        fallback_target: Optional[Configuration] = None,
        constraints: Sequence["PlacementConstraint"] = (),
        pinned: Optional[Mapping[str, str]] = None,
    ) -> OptimizationResult:
        """Compute an optimized target configuration and its plan.

        Parameters
        ----------
        current:
            The observed configuration.
        target_states:
            Desired state for each VM; VMs absent from the mapping keep their
            current state (the ``keepVMState`` constraint of Definition 4.1).
        vjob_of_vm:
            VM -> vjob mapping used to regroup suspends/resumes.
        fallback_target:
            Configuration to fall back to (typically the FFD solution) when
            the search finds no assignment within the timeout.
        constraints:
            Placement relations (:mod:`repro.core.placement`) the target
            configuration must honour, e.g. spreading the VMs of a vjob over
            distinct nodes for high availability.
        pinned:
            VM -> node-name placements frozen by the repair engine
            (:mod:`repro.repair`): pinned VMs must end up exactly there, so
            the search only branches over the remaining (dirty) VMs.  An
            unsatisfiable pin makes the search fail rather than silently
            unpinning — the repair layer then widens its neighbourhood.
        """
        states = self._complete_states(current, target_states)
        running_vms = [name for name, state in states.items() if state is VMState.RUNNING]
        fixed_cost = self._fixed_cost(current, states)

        named_assignment, statistics, improving = self.search_assignment(
            current, target_states, constraints, pinned=pinned
        )

        if named_assignment is None:
            if fallback_target is None:
                raise PlanningError(
                    "the optimizer found no viable assignment and no fallback "
                    "configuration was provided"
                )
            violated = check_constraints(fallback_target, constraints)
            if violated:
                raise PlanningError(
                    "no assignment satisfies the placement constraints "
                    f"({', '.join(map(repr, violated))}) and the fallback "
                    "configuration violates them too"
                )
            plan = self.planner.build(
                current, fallback_target, vjob_of_vm, constraints=constraints
            )
            cost = plan_cost(plan).total
            return OptimizationResult(
                target=fallback_target,
                plan=plan,
                cost=cost,
                movement_cost=cost,
                fixed_cost=fixed_cost,
                used_fallback=True,
                statistics=statistics,
            )

        target = self._build_target(current, states, named_assignment)
        plan = self.planner.build(current, target, vjob_of_vm, constraints=constraints)
        cost = plan_cost(plan).total
        movement = sum(
            self.movement_cost(current, vm, named_assignment[vm])
            for vm in running_vms
        )
        return OptimizationResult(
            target=target,
            plan=plan,
            cost=cost,
            movement_cost=movement,
            fixed_cost=fixed_cost,
            statistics=statistics,
            improving_costs=improving,
        )

    def search_assignment(
        self,
        current: Configuration,
        target_states: Mapping[str, VMState],
        constraints: Sequence["PlacementConstraint"] = (),
        pinned: Optional[Mapping[str, str]] = None,
    ) -> tuple[Optional[dict[str, str]], SearchStatistics, list[int]]:
        """Run only the CP search and return a VM -> node *name* assignment.

        This is the solver core without the planning step — the entry point
        the partitioned optimizer (:mod:`repro.scale.parallel`) calls inside
        worker processes, where each zone's assignment is merged into one
        global target before a single planner pass.  Returns ``(None,
        statistics, improving)`` when no viable assignment was found.
        """
        states = self._complete_states(current, target_states)
        running_vms = [
            name for name, state in states.items() if state is VMState.RUNNING
        ]
        assignment, statistics, improving = self._search(
            current, states, running_vms, constraints, pinned=pinned
        )
        if assignment is None:
            return None, statistics, improving
        node_names = current.node_names
        return (
            {vm: node_names[index] for vm, index in assignment.items()},
            statistics,
            improving,
        )

    # ------------------------------------------------------------------ #
    # model construction                                                  #
    # ------------------------------------------------------------------ #

    @staticmethod
    def _complete_states(
        current: Configuration, target_states: Mapping[str, VMState]
    ) -> dict[str, VMState]:
        states: dict[str, VMState] = {}
        for name in current.vm_names:
            states[name] = target_states.get(name, current.state_of(name))
            if (
                states[name] is VMState.WAITING
                and current.state_of(name) is VMState.RUNNING
            ):
                raise PlanningError(
                    f"VM {name!r} is running and cannot return to the Waiting "
                    "state; suspend or terminate it instead"
                )
        return states

    @staticmethod
    def _fixed_cost(current: Configuration, states: Mapping[str, VMState]) -> int:
        """Cost of the actions whose cost does not depend on the placement:
        the suspends of the VMs that must leave the Running state."""
        total = 0
        for name, state in states.items():
            if (
                state is VMState.SLEEPING
                and current.state_of(name) is VMState.RUNNING
            ):
                total += current.vm(name).memory
        return total

    @staticmethod
    def movement_cost(
        current: Configuration, vm_name: str, node_name: str
    ) -> int:
        """Movement cost (Table 1) of placing ``vm_name`` running on
        ``node_name``: 0 for staying put or booting, ``Dm`` for a migration
        or local resume, ``2 Dm`` for a remote resume."""
        vm = current.vm(vm_name)
        state = current.state_of(vm_name)
        if state is VMState.RUNNING:
            return 0 if current.location_of(vm_name) == node_name else vm.memory
        if state is VMState.SLEEPING:
            local = current.image_location_of(vm_name) == node_name
            return vm.memory if local else 2 * vm.memory
        return 0

    @staticmethod
    def _movement_cost_table(current: Configuration, vm_name: str) -> dict[int, int]:
        """Per-node movement cost of placing ``vm_name`` in the running state
        (node indices follow ``current.node_names``)."""
        vm = current.vm(vm_name)
        state = current.state_of(vm_name)
        table: dict[int, int] = {}
        for index, node in enumerate(current.node_names):
            if state is VMState.RUNNING:
                table[index] = 0 if current.location_of(vm_name) == node else vm.memory
            elif state is VMState.SLEEPING:
                local = current.image_location_of(vm_name) == node
                table[index] = vm.memory if local else 2 * vm.memory
            else:  # WAITING: a run action costs a constant (0)
                table[index] = 0
        return table

    def _greedy_assignment(
        self,
        current: Configuration,
        running_vms: list[str],
        pinned: Optional[Mapping[str, str]] = None,
    ) -> Optional[dict[str, int]]:
        """A cheap repair of the current placement used to seed the search.

        Running VMs keep their host whenever possible, sleeping VMs resume on
        the node holding their image, waiting VMs and evicted VMs are packed
        first-fit-decreasing on the remaining space.  This mirrors the
        "assign each running VM to its initial location in priority" strategy
        of Section 4.3 and gives branch-and-bound a strong incumbent; the CP
        search then tries to improve on it within its time budget.

        With ``pinned``, the pinned VMs are placed first at exactly their
        pinned host (failure to fit them means there is no incumbent under
        these pins) — the warm start of the repair engine: clean VMs stay
        put, dirty VMs are packed around them.
        """
        node_names = current.node_names
        node_index = {name: i for i, name in enumerate(node_names)}
        free = {
            name: [current.node(name).capacity.cpu, current.node(name).capacity.memory]
            for name in node_names
        }
        assignment: dict[str, int] = {}
        homeless: list[str] = []

        def try_place(vm_name: str, node_name: Optional[str]) -> bool:
            if node_name is None:
                return False
            vm = current.vm(vm_name)
            capacity = free[node_name]
            if vm.cpu_demand <= capacity[0] and vm.memory <= capacity[1]:
                capacity[0] -= vm.cpu_demand
                capacity[1] -= vm.memory
                assignment[vm_name] = node_index[node_name]
                return True
            return False

        # Pinned VMs go exactly where the repair engine froze them.
        if pinned:
            for vm_name in running_vms:
                if vm_name in pinned and not try_place(vm_name, pinned[vm_name]):
                    return None

        # Keep running VMs in place, resume sleeping VMs locally.
        for vm_name in running_vms:
            if pinned and vm_name in pinned:
                continue
            state = current.state_of(vm_name)
            preferred = None
            if state is VMState.RUNNING:
                preferred = current.location_of(vm_name)
            elif state is VMState.SLEEPING:
                preferred = current.image_location_of(vm_name)
            if not try_place(vm_name, preferred):
                homeless.append(vm_name)

        # Pack the rest first-fit-decreasing.
        homeless.sort(
            key=lambda name: (
                current.vm(name).cpu_demand,
                current.vm(name).memory,
            ),
            reverse=True,
        )
        for vm_name in homeless:
            placed = False
            for node_name in node_names:
                if try_place(vm_name, node_name):
                    placed = True
                    break
            if not placed:
                return None
        return assignment

    def _search(
        self,
        current: Configuration,
        states: Mapping[str, VMState],
        running_vms: list[str],
        constraints: Sequence["PlacementConstraint"] = (),
        pinned: Optional[Mapping[str, str]] = None,
    ) -> tuple[Optional[dict[str, int]], SearchStatistics, list[int]]:
        """Run the CP search; returns (assignment or None, statistics,
        improving objective values)."""
        node_names = current.node_names
        if not running_vms:
            # Nothing to place: the empty assignment is trivially optimal.
            return {}, SearchStatistics(proven_optimal=True), [0]

        node_index = {name: i for i, name in enumerate(node_names)}
        pins: dict[str, str] = {}
        if pinned:
            running_set = set(running_vms)
            for vm_name in sorted(pinned):
                if vm_name not in running_set:
                    continue
                if pinned[vm_name] not in node_index:
                    # Pinned to a node that left the configuration — the
                    # caller's dirty tracking missed a retirement; fail so
                    # the repair layer widens instead of planning onto it.
                    return None, SearchStatistics(), []
                pins[vm_name] = pinned[vm_name]
        if pins and not constraints:
            # Repair fast path: fold the frozen VMs into the node capacities
            # so the model (and the search) only covers the dirty region.
            return self._search_folded(current, running_vms, pins)

        model = Model()
        assignment_vars: list[IntVar] = []
        tables: list[dict[int, int]] = []
        preferences: dict[str, int] = {}

        for vm_name in running_vms:
            # Unary placement constraints (Ban/Fence) shrink the domain of the
            # assignment variable before the search even starts.
            allowed = set(node_names)
            for constraint in constraints:
                restriction = constraint.allowed_nodes(vm_name, node_names, current)
                if restriction is not None:
                    allowed &= restriction
            if not allowed:
                return None, SearchStatistics(), []
            pin = pins.get(vm_name)
            if pin is not None:
                if pin not in allowed:
                    # The pin violates a (possibly crash-shrunken) unary
                    # constraint: refuse rather than silently unpin, so the
                    # repair layer widens its neighbourhood.
                    return None, SearchStatistics(), []
                # With relational constraints in play the frozen VMs cannot
                # be folded away (MaxOnline/RunningCapacity count them), so
                # they stay in the model as unary-domain variables.
                var = model.pinned_var(f"x({vm_name})", node_index[pin])
                assignment_vars.append(var)
                tables.append(self._movement_cost_table(current, vm_name))
                continue
            domain = [node_index[name] for name in node_names if name in allowed]
            var = model.int_var(f"x({vm_name})", domain)
            assignment_vars.append(var)
            tables.append(self._movement_cost_table(current, vm_name))
            state = current.state_of(vm_name)
            if state is VMState.RUNNING:
                preferred = node_index[current.location_of(vm_name)]
                if preferred in domain:
                    preferences[var.name] = preferred
            elif state is VMState.SLEEPING:
                image = current.image_location_of(vm_name)
                if image is not None and node_index[image] in domain:
                    preferences[var.name] = node_index[image]

        demands = [current.vm(name).demand.as_tuple() for name in running_vms]
        capacities = [current.node(name).capacity.as_tuple() for name in node_names]
        model.add_constraint(VectorPacking(assignment_vars, demands, capacities))

        # Relational placement constraints (Spread/Gather) become solver
        # constraints over the assignment variables.
        variables_by_vm = {
            vm_name: assignment_vars[i] for i, vm_name in enumerate(running_vms)
        }
        for constraint in constraints:
            for cp_constraint in constraint.cp_constraints(variables_by_vm, node_index):
                model.add_constraint(cp_constraint)

        # Scale the cost tables so the objective domain stays tractable.
        upper = sum(max(table.values()) for table in tables)
        scale = max(1, math.gcd(*(v for t in tables for v in t.values())) or 1)
        if upper // scale > _MAX_OBJECTIVE_RANGE:
            scale = max(scale, math.ceil(upper / _MAX_OBJECTIVE_RANGE))
        scaled_tables = [
            {k: math.ceil(v / scale) for k, v in table.items()} for table in tables
        ]
        scaled_upper = sum(max(table.values()) for table in scaled_tables)
        # Interval domain: the objective spans up to _MAX_OBJECTIVE_RANGE
        # values and is only ever tightened from the outside in, so bound
        # updates must not pay for the width.
        total_var = model.interval_var("total_cost", 0, scaled_upper)
        model.add_constraint(ElementSum(assignment_vars, scaled_tables, total_var))

        # First-fail flavoured ordering: the most demanding VMs first
        # (Section 4.3, following Haralick & Elliott).
        order = sorted(
            range(len(running_vms)),
            key=lambda i: (demands[i][0], demands[i][1]),
            reverse=True,
        )
        ordered_vars = [assignment_vars[i] for i in order]

        # Seed branch-and-bound with a greedy repair of the current placement;
        # the search then only accepts strictly cheaper assignments.  The
        # greedy repair is unaware of relational placement constraints, so it
        # is only used when none are requested.
        greedy = (
            self._greedy_assignment(current, running_vms)
            if self.use_greedy_bound and not constraints
            else None
        )
        initial_bound = None
        if greedy is not None:
            initial_bound = sum(
                scaled_tables[i][greedy[vm_name]]
                for i, vm_name in enumerate(running_vms)
            )

        # Last-conflict intensification around the paper's static
        # biggest-first order: after a failure the search branches on the
        # conflicting variable first instead of thrashing down the order.
        solver = Solver(
            model,
            variable_selector=ActivityLastConflict(static_order(ordered_vars)),
            value_selector=prefer_value(preferences),
            engine=self.engine,
        )
        result = solver.solve(
            minimize=total_var,
            timeout=self.timeout,
            collect_all=True,
            first_solution_only=self.first_solution_only,
            initial_bound=initial_bound,
            node_limit=self.node_limit,
        )
        improving = [
            solution.objective * scale
            for solution in result.all_solutions
            if solution.objective is not None
        ]
        if result.best is not None:
            assignment = {
                vm_name: result.best[f"x({vm_name})"] for vm_name in running_vms
            }
            return assignment, result.statistics, improving
        if greedy is not None:
            # The search did not improve on (or ran out of time before
            # matching) the greedy incumbent: use the incumbent.
            return greedy, result.statistics, improving
        return None, result.statistics, improving

    def _search_folded(
        self,
        current: Configuration,
        running_vms: list[str],
        pins: Mapping[str, str],
    ) -> tuple[Optional[dict[str, int]], SearchStatistics, list[int]]:
        """Repair fast path: solve the dirty region only.

        The frozen VMs never enter the model — their demands are subtracted
        from the capacities of their pinned hosts and their (constant)
        movement costs are excluded from the objective — so model building
        and search both scale with the dirty region, not the fleet.  Only
        valid without placement constraints: a relational constraint must see
        the frozen placements (the unary-pinned-variable path covers that).
        """
        node_names = current.node_names
        node_index = {name: i for i, name in enumerate(node_names)}
        free_capacity = [
            list(current.node(name).capacity.as_tuple()) for name in node_names
        ]
        pinned_assignment: dict[str, int] = {}
        for vm_name in sorted(pins):
            index = node_index[pins[vm_name]]
            demand = current.vm(vm_name).demand.as_tuple()
            free_capacity[index][0] -= demand[0]
            free_capacity[index][1] -= demand[1]
            pinned_assignment[vm_name] = index
        if any(cpu < 0 or memory < 0 for cpu, memory in free_capacity):
            # The frozen region alone overloads a node (post-crash slack is
            # gone): infeasible under these pins, the repair layer widens.
            return None, SearchStatistics(), []

        free_vms = [name for name in running_vms if name not in pins]
        if not free_vms:
            # Everything is frozen: the previous placement *is* the solution.
            return pinned_assignment, SearchStatistics(proven_optimal=True), [0]

        model = Model()
        assignment_vars: list[IntVar] = []
        tables: list[dict[int, int]] = []
        preferences: dict[str, int] = {}
        all_nodes = list(range(len(node_names)))
        for vm_name in free_vms:
            var = model.int_var(f"x({vm_name})", all_nodes)
            assignment_vars.append(var)
            tables.append(self._movement_cost_table(current, vm_name))
            state = current.state_of(vm_name)
            if state is VMState.RUNNING:
                preferences[var.name] = node_index[current.location_of(vm_name)]
            elif state is VMState.SLEEPING:
                image = current.image_location_of(vm_name)
                if image is not None:
                    preferences[var.name] = node_index[image]

        demands = [current.vm(name).demand.as_tuple() for name in free_vms]
        capacities = [tuple(capacity) for capacity in free_capacity]
        model.add_constraint(VectorPacking(assignment_vars, demands, capacities))

        upper = sum(max(table.values()) for table in tables)
        scale = max(1, math.gcd(*(v for t in tables for v in t.values())) or 1)
        if upper // scale > _MAX_OBJECTIVE_RANGE:
            scale = max(scale, math.ceil(upper / _MAX_OBJECTIVE_RANGE))
        scaled_tables = [
            {k: math.ceil(v / scale) for k, v in table.items()} for table in tables
        ]
        scaled_upper = sum(max(table.values()) for table in scaled_tables)
        total_var = model.interval_var("total_cost", 0, scaled_upper)
        model.add_constraint(ElementSum(assignment_vars, scaled_tables, total_var))

        order = sorted(
            range(len(free_vms)),
            key=lambda i: (demands[i][0], demands[i][1]),
            reverse=True,
        )
        ordered_vars = [assignment_vars[i] for i in order]

        greedy = (
            self._greedy_assignment(current, running_vms, pinned=pins)
            if self.use_greedy_bound
            else None
        )
        initial_bound = None
        if greedy is not None:
            initial_bound = sum(
                scaled_tables[i][greedy[vm_name]]
                for i, vm_name in enumerate(free_vms)
            )

        solver = Solver(
            model,
            variable_selector=ActivityLastConflict(static_order(ordered_vars)),
            value_selector=prefer_value(preferences),
            engine=self.engine,
        )
        result = solver.solve(
            minimize=total_var,
            timeout=self.timeout,
            collect_all=True,
            first_solution_only=self.first_solution_only,
            initial_bound=initial_bound,
            node_limit=self.node_limit,
        )
        improving = [
            solution.objective * scale
            for solution in result.all_solutions
            if solution.objective is not None
        ]
        if result.best is not None:
            assignment = dict(pinned_assignment)
            for vm_name in free_vms:
                assignment[vm_name] = result.best[f"x({vm_name})"]
            return assignment, result.statistics, improving
        if greedy is not None:
            # ``greedy`` already covers the pinned VMs (placed first).
            return greedy, result.statistics, improving
        return None, result.statistics, improving

    # ------------------------------------------------------------------ #
    # target construction                                                 #
    # ------------------------------------------------------------------ #

    @staticmethod
    def _build_target(
        current: Configuration,
        states: Mapping[str, VMState],
        assignment: Mapping[str, str],
    ) -> Configuration:
        """Build the target configuration from a VM -> node-name assignment
        of the running VMs (also used by the partitioned optimizer to merge
        per-zone assignments into one global target)."""
        target = current.copy()
        for name, state in states.items():
            if state is VMState.RUNNING:
                target.set_running(name, assignment[name])
            elif state is VMState.SLEEPING:
                if current.state_of(name) is VMState.RUNNING:
                    target.set_sleeping(name, current.location_of(name))
                elif current.state_of(name) is VMState.SLEEPING:
                    target.set_sleeping(name, current.image_location_of(name))
                else:
                    # A waiting VM cannot be suspended: it stays waiting.
                    target.set_waiting(name)
            elif state is VMState.TERMINATED:
                target.set_terminated(name)
            else:
                target.set_waiting(name)
        return target
