"""The paper's primary contribution: the cluster-wide context switch.

Actions and their cost model (Table 1), reconfiguration graphs and plans,
the pool-based planner that resolves sequential and inter-dependent
constraints (Section 4.1), the plan cost model (Section 4.2) and the
constraint-programming optimizer (Section 4.3).

Exports resolve lazily (PEP 562): importing a light submodule such as
:mod:`repro.core.actions` or :mod:`repro.core.plan` no longer loads the CP
optimizer and its solver.  The standalone verifier
(:mod:`repro.instances.verifier`) depends on this — it scores plans with the
action/plan/cost machinery and the independent constraint checker, and a
test asserts that its call path never imports the optimizer.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - static-analysis / IDE resolution only
    from .actions import (
        Action,
        ActionKind,
        Migrate,
        Resume,
        Run,
        Stop,
        Suspend,
        required_resources,
    )
    from .context_switch import ClusterContextSwitch, ContextSwitchReport
    from .cost import (
        ActionCost,
        PlanCost,
        minimum_possible_cost,
        plan_cost,
        total_cost,
    )
    from .graph import Edge, ReconfigurationGraph
    from .optimizer import ContextSwitchOptimizer, OptimizationResult
    from .placement import (
        Among,
        Ban,
        Fence,
        Gather,
        Lonely,
        MaxOnline,
        PlacementConstraint,
        Root,
        RunningCapacity,
        Spread,
        check_constraints,
    )
    from .plan import Pool, ReconfigurationPlan, merge_pools, plan_from_pools
    from .planner import PlannerOptions, ReconfigurationPlanner, build_plan

#: Export name -> defining submodule, resolved on first attribute access.
_EXPORTS = {
    "Action": "actions",
    "ActionKind": "actions",
    "Migrate": "actions",
    "Resume": "actions",
    "Run": "actions",
    "Stop": "actions",
    "Suspend": "actions",
    "required_resources": "actions",
    "ClusterContextSwitch": "context_switch",
    "ContextSwitchReport": "context_switch",
    "ActionCost": "cost",
    "PlanCost": "cost",
    "minimum_possible_cost": "cost",
    "plan_cost": "cost",
    "total_cost": "cost",
    "Edge": "graph",
    "ReconfigurationGraph": "graph",
    "ContextSwitchOptimizer": "optimizer",
    "OptimizationResult": "optimizer",
    "Among": "placement",
    "Ban": "placement",
    "Fence": "placement",
    "Gather": "placement",
    "Lonely": "placement",
    "MaxOnline": "placement",
    "PlacementConstraint": "placement",
    "Root": "placement",
    "RunningCapacity": "placement",
    "Spread": "placement",
    "check_constraints": "placement",
    "Pool": "plan",
    "ReconfigurationPlan": "plan",
    "merge_pools": "plan",
    "plan_from_pools": "plan",
    "PlannerOptions": "planner",
    "ReconfigurationPlanner": "planner",
    "build_plan": "planner",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(importlib.import_module(f".{module_name}", __name__), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
