"""The paper's primary contribution: the cluster-wide context switch.

Actions and their cost model (Table 1), reconfiguration graphs and plans,
the pool-based planner that resolves sequential and inter-dependent
constraints (Section 4.1), the plan cost model (Section 4.2) and the
constraint-programming optimizer (Section 4.3).
"""

from .actions import (
    Action,
    ActionKind,
    Migrate,
    Resume,
    Run,
    Stop,
    Suspend,
    required_resources,
)
from .context_switch import ClusterContextSwitch, ContextSwitchReport
from .cost import ActionCost, PlanCost, minimum_possible_cost, plan_cost, total_cost
from .graph import Edge, ReconfigurationGraph
from .optimizer import ContextSwitchOptimizer, OptimizationResult
from .placement import (
    Among,
    Ban,
    Fence,
    Gather,
    Lonely,
    MaxOnline,
    PlacementConstraint,
    Root,
    RunningCapacity,
    Spread,
    check_constraints,
)
from .plan import Pool, ReconfigurationPlan, merge_pools, plan_from_pools
from .planner import PlannerOptions, ReconfigurationPlanner, build_plan

__all__ = [
    "Action",
    "ActionKind",
    "Migrate",
    "Resume",
    "Run",
    "Stop",
    "Suspend",
    "required_resources",
    "ClusterContextSwitch",
    "ContextSwitchReport",
    "ActionCost",
    "PlanCost",
    "minimum_possible_cost",
    "plan_cost",
    "total_cost",
    "Edge",
    "ReconfigurationGraph",
    "ContextSwitchOptimizer",
    "OptimizationResult",
    "Among",
    "Ban",
    "Fence",
    "Gather",
    "Lonely",
    "MaxOnline",
    "PlacementConstraint",
    "Root",
    "RunningCapacity",
    "Spread",
    "check_constraints",
    "Pool",
    "ReconfigurationPlan",
    "merge_pools",
    "plan_from_pools",
    "PlannerOptions",
    "ReconfigurationPlanner",
    "build_plan",
]
