"""Construction of feasible reconfiguration plans (Section 4.1).

The planner turns a (current configuration, target configuration) pair into a
:class:`~repro.core.plan.ReconfigurationPlan` whose pools satisfy both kinds of
plannification issues identified by the paper:

* **sequential constraints** — an action that requires resources only enters a
  pool once the actions that liberate those resources have been placed in an
  earlier pool;
* **inter-dependent constraints** — when a set of non-feasible migrations forms
  a cycle, the cycle is broken with a *bypass migration* that parks one VM on a
  pivot node outside the cycle.

A final pass restores the consistency of vjobs: all the resume actions of the
VMs of a vjob are regrouped into the pool that initially contained the last of
them, so the VMs of a distributed application are suspended and resumed
together within a short period (the executor then pipelines them one second
apart, sorted by hostname).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..constraints.base import PlacementConstraint
from ..constraints.checker import check_plan
from ..model.configuration import Configuration
from ..model.errors import NoPivotAvailableError, PlanningError
from ..model.resources import ResourceVector
from .actions import Action, ActionKind, Migrate, Resume
from .graph import ReconfigurationGraph
from .plan import Pool, ReconfigurationPlan, apply_pool_effects


@dataclass
class PlannerOptions:
    """Tunables of the plan construction."""

    #: Regroup the suspend/resume actions of a vjob in a single pool.
    enforce_vjob_consistency: bool = True
    #: Prefer parking the smallest VM of a cycle on a pivot node.
    bypass_smallest_vm: bool = True
    #: Hard bound on the number of pools, as a safety net against bugs in the
    #: target configuration (a correct construction needs at most one pool per
    #: action plus one bypass per cycle).
    max_pools: Optional[int] = None
    #: When placement constraints are supplied to :meth:`~ReconfigurationPlanner
    #: .build`, raise :class:`~repro.model.errors.PlanningError` on a
    #: transiently-violating plan instead of recording the violations on
    #: ``plan.constraint_violations`` (the default keeps the control loop
    #: running and lets the run report the violation timeline).
    strict_constraints: bool = False


class ReconfigurationPlanner:
    """Builds feasible plans between two configurations."""

    def __init__(self, options: Optional[PlannerOptions] = None) -> None:
        self.options = options or PlannerOptions()

    # ------------------------------------------------------------------ #
    # public API                                                          #
    # ------------------------------------------------------------------ #

    def build(
        self,
        current: Configuration,
        target: Configuration,
        vjob_of_vm: Optional[Mapping[str, str]] = None,
        constraints: Sequence[PlacementConstraint] = (),
    ) -> ReconfigurationPlan:
        """Build a feasible plan from ``current`` to ``target``.

        ``vjob_of_vm`` maps VM names to vjob names and is only used by the
        consistency pass; omit it to plan VMs independently.

        ``constraints`` turns on continuous-satisfaction bookkeeping: every
        intermediate state of the finished plan (pool boundaries, plus
        stateful transition relations like ``Root``) is validated with the
        independent checker, and any violation lands on
        ``plan.constraint_violations`` — or raises
        :class:`~repro.model.errors.PlanningError` under
        ``PlannerOptions.strict_constraints``.
        """
        plan = ReconfigurationPlan(source=current.copy())
        working = current.copy()
        max_pools = (
            self.options.max_pools
            if self.options.max_pools is not None
            else 2 * len(current.vm_names) + 8
        )

        while True:
            graph = ReconfigurationGraph(working.copy(), target)
            if graph.is_empty():
                break
            if len(plan.pools) >= max_pools:
                raise PlanningError(
                    f"plan construction exceeded {max_pools} pools; the target "
                    "configuration is probably unreachable"
                )
            pool = self._select_pool(working, graph)
            if not pool:
                bypass = self._bypass_action(working, graph)
                pool = Pool([bypass])
            plan.append_pool(pool)
            working = self._apply_pool(working, pool)

        if self.options.enforce_vjob_consistency and vjob_of_vm:
            self._regroup_vjob_resumes(plan, vjob_of_vm)
        if constraints:
            plan.constraint_violations = check_plan(plan, constraints)
            if plan.constraint_violations and self.options.strict_constraints:
                details = "; ".join(str(v) for v in plan.constraint_violations)
                raise PlanningError(
                    f"the plan transiently violates placement constraints: "
                    f"{details}"
                )
        return plan

    # ------------------------------------------------------------------ #
    # pool selection                                                      #
    # ------------------------------------------------------------------ #

    def _select_pool(self, working: Configuration, graph: ReconfigurationGraph) -> Pool:
        """Select every action directly feasible against ``working``.

        Liberating actions (suspend, stop) are always feasible.  Consuming
        actions (run, resume, migrate) are admitted conservatively: each must
        fit on its destination given the consumers already admitted in the same
        pool, without counting the resources that same-pool liberating actions
        will free (those only become available in the next pool).
        """
        pool = Pool()
        liberators = [a for a in graph.actions if not a.consumes_resources()]
        consumers = [a for a in graph.actions if a.consumes_resources()]

        for action in liberators:
            if action.is_feasible(working):
                pool.add(action)

        # Admit consumers in decreasing demand order so large VMs get the first
        # pick of the free space (mirrors the FFD flavour of the heuristics).
        # A consumer is admitted only if it fits on its destination given the
        # consumers already admitted in this pool — the resources liberated by
        # same-pool actions are deliberately not counted, they only become
        # available to the next pool.
        consumers.sort(
            key=lambda a: working.vm(a.vm).demand.as_tuple(), reverse=True
        )
        reserved: dict[str, ResourceVector] = {}
        for action in consumers:
            if not action.is_feasible(working):
                continue
            destination = action.destination()
            demand = working.vm(action.vm).demand
            already = reserved.get(destination, ResourceVector(0, 0))
            if (already + demand).fits_in(working.free_capacity(destination)):
                reserved[destination] = already + demand
                pool.add(action)
        return pool

    @staticmethod
    def _apply_pool(working: Configuration, pool: Pool) -> Configuration:
        """Temporary configuration once every action of the pool completed."""
        result = working.copy()
        apply_pool_effects(result, pool)
        return result

    # ------------------------------------------------------------------ #
    # inter-dependent cycles and bypass migrations                        #
    # ------------------------------------------------------------------ #

    def _bypass_action(
        self, working: Configuration, graph: ReconfigurationGraph
    ) -> Migrate:
        """Break a cycle of non-feasible migrations with a bypass migration.

        A pivot node outside the cycle temporarily hosts one of the cycle's
        VMs; once that VM has left, at least one other migration of the cycle
        becomes feasible.  The next planning rounds will bring the parked VM to
        its final destination (the reconfiguration graph regenerates the
        pending migration from the pivot).
        """
        migrations = [
            a for a in graph.actions if isinstance(a, Migrate)
        ]
        if not migrations:
            raise PlanningError(
                "no feasible action and no pending migration: the target "
                "configuration is not reachable (is it viable?)"
            )
        cycle = self._find_cycle(migrations)
        if not cycle:
            raise PlanningError(
                "no feasible action but the pending migrations do not form a "
                "cycle: the target configuration is not reachable"
            )

        cycle_nodes = {m.source_node for m in cycle} | {
            m.destination_node for m in cycle
        }
        candidates = sorted(
            cycle,
            key=lambda m: working.vm(m.vm).memory,
        )
        if not self.options.bypass_smallest_vm:
            candidates = list(cycle)

        for migration in candidates:
            vm = working.vm(migration.vm)
            for node in working.node_names:
                if node in cycle_nodes:
                    continue
                if working.can_host(node, vm):
                    return Migrate(
                        vm=migration.vm,
                        source_node=migration.source_node,
                        destination_node=node,
                    )
        # Fall back to any node (even inside the cycle) that can host a VM of
        # the cycle: this still unlocks the cycle although the paper prefers an
        # outside pivot.
        for migration in candidates:
            vm = working.vm(migration.vm)
            for node in working.node_names:
                if node == migration.source_node:
                    continue
                if working.can_host(node, vm):
                    return Migrate(
                        vm=migration.vm,
                        source_node=migration.source_node,
                        destination_node=node,
                    )
        raise NoPivotAvailableError(
            "no node can temporarily host any VM of the migration cycle"
        )

    @staticmethod
    def _find_cycle(migrations: Sequence[Migrate]) -> list[Migrate]:
        """Find a cycle in the directed node graph induced by the migrations.

        Returns the migrations forming the cycle, or an empty list when the
        graph is acyclic.  A depth-first search over the node graph is used,
        keeping the migration taken to reach each node on the current stack so
        the cycle's edges can be reported.
        """
        outgoing: dict[str, list[Migrate]] = {}
        for migration in migrations:
            outgoing.setdefault(migration.source_node, []).append(migration)

        visited: set[str] = set()

        def dfs(node: str, stack: list[str], path: list[Migrate]) -> list[Migrate]:
            if node in stack:
                # Back edge: the cycle is the suffix of ``path`` starting where
                # ``node`` was first pushed on the stack.
                return path[stack.index(node):]
            if node in visited:
                return []
            visited.add(node)
            stack.append(node)
            for migration in outgoing.get(node, ()):  # explore every edge
                found = dfs(migration.destination_node, stack, path + [migration])
                if found:
                    return found
            stack.pop()
            return []

        for start in list(outgoing):
            cycle = dfs(start, [], [])
            if cycle:
                return cycle
        return []

    # ------------------------------------------------------------------ #
    # vjob consistency                                                    #
    # ------------------------------------------------------------------ #

    @staticmethod
    def _regroup_vjob_resumes(
        plan: ReconfigurationPlan, vjob_of_vm: Mapping[str, str]
    ) -> None:
        """Move every resume action of a vjob into the pool that initially
        contains the last of them (Section 4.1).

        Delaying a resume never invalidates the plan: the destination space was
        reserved for the VM from the original pool onwards, so it is still free
        when the regrouped pool starts.  Suspend actions need no treatment:
        being always feasible, the construction already groups them in the
        first pool.
        """
        # vjob name -> list of (pool index, action)
        resumes: dict[str, list[tuple[int, Resume]]] = {}
        for index, pool in enumerate(plan.pools):
            for action in pool:
                if action.kind is ActionKind.RESUME:
                    vjob = vjob_of_vm.get(action.vm)
                    if vjob is not None:
                        resumes.setdefault(vjob, []).append((index, action))

        for vjob, entries in resumes.items():
            if len(entries) <= 1:
                continue
            last_pool = max(index for index, _ in entries)
            for index, action in entries:
                if index == last_pool:
                    continue
                plan.pools[index].actions.remove(action)
                plan.pools[last_pool].actions.append(action)

        # Remove pools emptied by the regrouping and sort each pool by
        # destination hostname then VM name so the executor can pipeline the
        # actions deterministically.
        plan.pools = [pool for pool in plan.pools if pool]
        for pool in plan.pools:
            pool.actions.sort(
                key=lambda a: (a.kind.value, a.destination() or a.source() or "", a.vm)
            )


def build_plan(
    current: Configuration,
    target: Configuration,
    vjob_of_vm: Optional[Mapping[str, str]] = None,
    options: Optional[PlannerOptions] = None,
    constraints: Sequence[PlacementConstraint] = (),
) -> ReconfigurationPlan:
    """Module-level convenience wrapper around :class:`ReconfigurationPlanner`."""
    return ReconfigurationPlanner(options).build(
        current, target, vjob_of_vm, constraints=constraints
    )
