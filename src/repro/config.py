"""Calibration constants for the simulated substrate.

All durations come from the measurements reported in Section 2.3 / Figure 3 of
the paper, obtained on an 11-node cluster of 2.1 GHz Core 2 Duo machines (Xen
3.2, Gigabit Ethernet, NFS-served virtual disks):

* booting a VM takes about 6 seconds regardless of its memory size;
* a clean shutdown takes about 25 seconds (service timeouts);
* live migration, suspend and resume durations grow linearly with the memory
  allocated to the manipulated VM;
* a remote suspend/resume (state file pushed with scp or rsync) takes roughly
  twice the duration of a local one;
* while an action is in flight, a busy VM co-located on the involved node is
  slowed down by a factor of roughly 1.3 (local) to 1.5 (remote), i.e. at most
  ~50 % during the transition.

The figures of the paper give the following anchor points (memory in MB,
durations in seconds): migrating a 2 GB VM takes up to ~26 s, resuming a 2 GB
VM on a distant node takes up to ~3 minutes, suspending a 2 GB VM locally takes
on the order of 100 s.  The linear models below are fitted on those anchors.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# --------------------------------------------------------------------------- #
# Hypervisor action duration model (seconds)                                   #
# --------------------------------------------------------------------------- #

#: Duration of the ``run`` (boot) action, independent of the VM memory size.
BOOT_DURATION_S: float = 6.0

#: Duration of a clean ``stop`` (shutdown) action.
CLEAN_SHUTDOWN_DURATION_S: float = 25.0

#: Duration of a hard ``stop`` action (destroy), used when a clean shutdown is
#: not required.
HARD_SHUTDOWN_DURATION_S: float = 2.0

#: Live migration: fixed overhead + per-MB transfer time.  A 2048 MB VM
#: migrates in ~26 s, a 512 MB VM in ~10 s.
MIGRATE_BASE_S: float = 4.0
MIGRATE_PER_MB_S: float = (26.0 - MIGRATE_BASE_S) / 2048.0  # ~0.0107 s/MB

#: Local suspend: write the memory image to the local disk.
SUSPEND_LOCAL_BASE_S: float = 8.0
SUSPEND_LOCAL_PER_MB_S: float = 0.045

#: Remote suspend: local suspend followed by an scp/rsync push of the image.
#: Roughly twice the local duration (Figure 3b).
SUSPEND_REMOTE_FACTOR_SCP: float = 2.0
SUSPEND_REMOTE_FACTOR_RSYNC: float = 1.9

#: Local resume: read the memory image from the local disk.
RESUME_LOCAL_BASE_S: float = 8.0
RESUME_LOCAL_PER_MB_S: float = 0.045

#: Remote resume: fetch the image then resume; roughly twice the local
#: duration (Figure 3c).  A 2 GB remote resume peaks around 3 minutes.
RESUME_REMOTE_FACTOR_SCP: float = 2.0
RESUME_REMOTE_FACTOR_RSYNC: float = 1.9

#: Slow-down factor suffered by a busy VM co-located with a local operation.
INTERFERENCE_FACTOR_LOCAL: float = 1.3

#: Slow-down factor suffered by a busy VM co-located with a remote operation.
INTERFERENCE_FACTOR_REMOTE: float = 1.5

#: Delay between two pipelined suspend/resume actions of the same vjob
#: (Section 4.1: "each action is started one second after the previous one").
VJOB_PIPELINE_DELAY_S: float = 1.0


# --------------------------------------------------------------------------- #
# Entropy control loop defaults                                                #
# --------------------------------------------------------------------------- #

#: Period of the decision module in the sample consolidation policy (seconds).
DECISION_PERIOD_S: float = 30.0

#: Time needed by the monitoring service to accumulate fresh information after
#: a reconfiguration (Section 3.1).
MONITORING_DELAY_S: float = 10.0

#: Default time budget granted to the CP optimizer (Section 5.1 uses 40 s).
OPTIMIZER_TIMEOUT_S: float = 40.0


# --------------------------------------------------------------------------- #
# Reference cluster descriptions                                               #
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class NodeSpec:
    """Hardware description of a working node."""

    cpu_capacity: int = 2          #: number of processing units
    memory_capacity: int = 4096    #: memory in MB
    dom0_memory: int = 512         #: memory reserved for the hypervisor / Domain-0

    @property
    def usable_memory(self) -> int:
        """Memory left for guest VMs once Domain-0 is accounted for."""
        return self.memory_capacity - self.dom0_memory


@dataclass(frozen=True)
class ClusterSpec:
    """Description of a homogeneous cluster."""

    node_count: int
    node_spec: NodeSpec = field(default_factory=NodeSpec)

    @property
    def total_cpu(self) -> int:
        return self.node_count * self.node_spec.cpu_capacity

    @property
    def total_memory(self) -> int:
        return self.node_count * self.node_spec.usable_memory


#: The 11-node experimental cluster of Sections 2.3 and 5.2.
PAPER_CLUSTER = ClusterSpec(node_count=11)

#: The 200-node configuration of the workload-trace experiments (Section 5.1):
#: 2 CPUs and 4 GB of memory per node.
TRACE_CLUSTER = ClusterSpec(
    node_count=200,
    node_spec=NodeSpec(cpu_capacity=2, memory_capacity=4096, dom0_memory=0),
)

#: Memory sizes (MB) used throughout the evaluation.
VM_MEMORY_SIZES_MB = (256, 512, 1024, 2048)
