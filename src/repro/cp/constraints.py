"""Constraints understood by the solver.

Only the constraints the paper's model needs are provided, plus a couple of
generic ones that keep the solver usable on its own:

* :class:`LinearLessEqual` — a weighted sum bounded by a constant (the
  knapsack inequalities of Definition 4.1);
* :class:`ElementSum` — a total variable equal to the sum of per-variable
  lookup tables (the reconfiguration cost estimate of Section 4.3);
* :class:`VectorPacking` — the 2-dimensional bin-packing constraint relating
  VM assignment variables to node capacities (Section 3.2);
* :class:`AllDifferent` — a value-based all-different, handy for tests and
  for pivot selection experiments.

The placement-constraint catalog (:mod:`repro.constraints`) compiles its
declarative relations into a second family of propagators:

* :class:`NotEqual` — a cheap pairwise disequality (two-VM ``Spread``);
* :class:`AllDifferentExcept` — all-different where a set of excepted values
  may repeat (``Spread`` with collocation-tolerant nodes);
* :class:`AllEqual` — every variable takes one common value (``Gather``);
* :class:`Among` — all variables land inside a single one of several value
  groups (``Among`` over node groups / fault domains);
* :class:`UsedValuesAtMost` — at most ``k`` distinct values of a watched set
  may be used (``MaxOnline``);
* :class:`CountInValuesAtMost` — at most ``k`` variables may take a value
  from a watched set (``RunningCapacity``);
* :class:`DisjointValues` — two variable groups never share a value
  (``Lonely``).

Propagation is *event-driven*: each constraint declares a scheduling
``priority`` (cheap propagators drain first) and whether it is ``idempotent``
(its own prunings cannot enable further prunings by itself, so the store need
not requeue it for self-inflicted events).  A constraint implements:

* ``propagate(store)`` — stateless propagation from scratch.  Used by the
  naive-fixpoint reference engine and by unit tests; always correct.
* ``register(store)`` / ``propagate_events(store, dirty)`` — the incremental
  protocol of the event engine.  ``register`` (re)builds internal counters at
  the start of a search; ``propagate_events`` receives the model indices of
  the watched variables whose domain changed since the last call and updates
  the counters by deltas, undoing them on backtrack through
  ``store.record_undo``.  The default implementation falls back to the
  stateless ``propagate``.

``store`` exposes the domain mutations that are recorded on the solver trail.
Propagation raises :class:`~repro.model.errors.InconsistencyError` when a
domain would become empty or a constraint is certainly violated.
"""

from __future__ import annotations

from typing import Collection, Mapping, Sequence

from ..model.errors import InconsistencyError
from .variables import IntVar


class Constraint:
    """Base class of all constraints."""

    #: Propagation-queue priority: 0 (cheapest, drained first) to 3.
    priority: int = 1
    #: True when the constraint's own prunings never require re-running it.
    idempotent: bool = False

    def variables(self) -> Sequence[IntVar]:
        raise NotImplementedError

    def propagate(self, store) -> None:
        """Filter the domains of the constraint's variables from scratch."""
        raise NotImplementedError

    def register(self, store) -> None:
        """(Re)build incremental state at the start of an event-driven search."""

    def propagate_events(self, store, dirty: Collection[int]) -> None:
        """Incremental filtering given the model indices of changed variables.

        The default falls back to full propagation, which is always sound.
        """
        self.propagate(store)

    def is_satisfied(self) -> bool:
        """Check the constraint on fully instantiated variables."""
        raise NotImplementedError


class LinearLessEqual(Constraint):
    """``sum(coefficients[i] * vars[i]) <= bound`` with non-negative
    coefficients.

    Event mode maintains the committed lower bound ``sum(c_i * min(x_i))``
    incrementally: a domain event only costs the delta of the touched
    variable, and the O(n) pruning pass runs only when the lower bound grew.
    """

    priority = 0
    # remove_above never changes a variable's min, so self-prunings cannot
    # re-trigger this propagator.
    idempotent = True

    def __init__(self, variables: Sequence[IntVar], coefficients: Sequence[int], bound: int):
        if len(variables) != len(coefficients):
            raise ValueError("variables and coefficients must have the same length")
        if any(c < 0 for c in coefficients):
            raise ValueError("LinearLessEqual only supports non-negative coefficients")
        self._vars = list(variables)
        self._coefficients = list(coefficients)
        self._bound = bound
        self._index_of: dict[int, int] = {}
        self._mins: list[int] = []
        self._total_min = 0
        self._primed = False

    def variables(self) -> Sequence[IntVar]:
        return self._vars

    def propagate(self, store) -> None:
        mins = [c * v.min for c, v in zip(self._coefficients, self._vars)]
        total_min = sum(mins)
        if total_min > self._bound:
            raise InconsistencyError(
                f"linear sum lower bound {total_min} exceeds {self._bound}"
            )
        for i, (coefficient, var) in enumerate(zip(self._coefficients, self._vars)):
            if coefficient == 0:
                continue
            slack = self._bound - (total_min - mins[i])
            # coefficient * value must stay <= slack
            limit = slack // coefficient
            if var.max > limit:
                store.remove_above(var, limit)

    # -- event-driven protocol -------------------------------------------------

    def register(self, store) -> None:
        self._index_of = {var.index: i for i, var in enumerate(self._vars)}
        self._mins = [c * v.min for c, v in zip(self._coefficients, self._vars)]
        self._total_min = sum(self._mins)
        # The first propagation must run the pruning pass even though the
        # counters were just seeded (the bound may already cut the domains).
        self._primed = False

    def _restore_min(self, i: int, old: int, delta: int):
        def undo() -> None:
            self._mins[i] = old
            self._total_min -= delta
        return undo

    def propagate_events(self, store, dirty: Collection[int]) -> None:
        grew = not self._primed
        self._primed = True
        for model_index in dirty:
            i = self._index_of.get(model_index)
            if i is None:
                continue
            new = self._coefficients[i] * self._vars[i].min
            old = self._mins[i]
            if new != old:
                delta = new - old
                self._mins[i] = new
                self._total_min += delta
                store.record_undo(self._restore_min(i, old, delta))
                if delta > 0:
                    grew = True
        if self._total_min > self._bound:
            raise InconsistencyError(
                f"linear sum lower bound {self._total_min} exceeds {self._bound}"
            )
        if not grew:
            return
        total_min = self._total_min
        mins = self._mins
        for i, (coefficient, var) in enumerate(zip(self._coefficients, self._vars)):
            if coefficient == 0:
                continue
            limit = (self._bound - (total_min - mins[i])) // coefficient
            if var.max > limit:
                store.remove_above(var, limit)

    def is_satisfied(self) -> bool:
        return (
            sum(c * v.value for c, v in zip(self._coefficients, self._vars))
            <= self._bound
        )


class ElementSum(Constraint):
    """``total = sum_i tables[i][vars[i]]``.

    ``tables[i]`` maps every value of ``vars[i]``'s initial domain to a
    non-negative cost.  Bound-consistent propagation in both directions:
    the total is squeezed between the sum of per-variable minima and maxima,
    and values whose cost would push the sum above ``total.max`` are pruned.

    Event mode keeps the per-variable cost bounds and their sums as trailed
    counters: a domain event re-derives the bounds of the touched variable
    only, and the value pruning walks each variable's costs in decreasing
    order behind a trailed pointer, so every candidate value is examined at
    most once per search branch however often the budget tightens.
    """

    priority = 1
    # Our own remove_above on the total changes total.max, which tightens the
    # pruning budget — the store must requeue us for self-inflicted events.
    idempotent = False

    def __init__(
        self,
        variables: Sequence[IntVar],
        tables: Sequence[Mapping[int, int]],
        total: IntVar,
    ):
        if len(variables) != len(tables):
            raise ValueError("one table per variable is required")
        self._vars = list(variables)
        self._tables = [dict(t) for t in tables]
        self._total = total
        #: Constraint compilation may emit degenerate models (e.g. no VM to
        #: place): with no variables the sum is 0, so the only propagation is
        #: pinning the total to 0.
        self._empty = not self._vars
        self._index_of: dict[int, int] = {}
        self._lo: list[int] = []
        self._hi: list[int] = []
        self._lower = 0
        self._upper = 0
        #: Per-variable (cost, value) pairs sorted by decreasing cost, plus a
        #: trailed pruning pointer into each list.
        self._desc: list[list[tuple[int, int]]] = [
            sorted(((c, v) for v, c in table.items()), reverse=True)
            for table in self._tables
        ]
        self._ptr: list[int] = []

    def variables(self) -> Sequence[IntVar]:
        return [*self._vars, self._total]

    def _cost_bounds(self, index: int) -> tuple[int, int]:
        table = self._tables[index]
        costs = [table[v] for v in self._vars[index].raw_values()]
        return min(costs), max(costs)

    def propagate(self, store) -> None:
        if self._empty:
            if 0 not in self._total:
                raise InconsistencyError(
                    "ElementSum: empty variable list forces total = 0"
                )
            store.remove_below(self._total, 0)
            store.remove_above(self._total, 0)
            return
        bounds = [self._cost_bounds(i) for i in range(len(self._vars))]
        lower = sum(b[0] for b in bounds)
        upper = sum(b[1] for b in bounds)
        if lower > self._total.max or upper < self._total.min:
            raise InconsistencyError("ElementSum: cost bounds incompatible with total")
        store.remove_below(self._total, lower)
        store.remove_above(self._total, upper)

        # Prune assignment values that would exceed the total upper bound.
        total_max = self._total.max
        for i, var in enumerate(self._vars):
            others_min = lower - bounds[i][0]
            budget = total_max - others_min
            table = self._tables[i]
            too_expensive = [v for v in var.raw_values() if table[v] > budget]
            if too_expensive:
                store.remove_many(var, too_expensive)

    # -- event-driven protocol -------------------------------------------------

    def register(self, store) -> None:
        self._index_of = {var.index: i for i, var in enumerate(self._vars)}
        bounds = [self._cost_bounds(i) for i in range(len(self._vars))]
        self._lo = [b[0] for b in bounds]
        self._hi = [b[1] for b in bounds]
        self._lower = sum(self._lo)
        self._upper = sum(self._hi)
        self._ptr = [0] * len(self._vars)

    def _restore_bounds(self, i: int, lo: int, hi: int, d_lo: int, d_hi: int):
        def undo() -> None:
            self._lo[i] = lo
            self._hi[i] = hi
            self._lower -= d_lo
            self._upper -= d_hi
        return undo

    def _restore_ptr(self, i: int, old: int):
        def undo() -> None:
            self._ptr[i] = old
        return undo

    def propagate_events(self, store, dirty: Collection[int]) -> None:
        if self._empty:
            self.propagate(store)
            return
        for model_index in dirty:
            i = self._index_of.get(model_index)
            if i is None:
                continue  # the total variable; its bounds are read below
            lo, hi = self._cost_bounds(i)
            old_lo, old_hi = self._lo[i], self._hi[i]
            if lo != old_lo or hi != old_hi:
                d_lo, d_hi = lo - old_lo, hi - old_hi
                self._lo[i] = lo
                self._hi[i] = hi
                self._lower += d_lo
                self._upper += d_hi
                store.record_undo(self._restore_bounds(i, old_lo, old_hi, d_lo, d_hi))
        total = self._total
        if self._lower > total.max or self._upper < total.min:
            raise InconsistencyError("ElementSum: cost bounds incompatible with total")
        store.remove_below(total, self._lower)
        store.remove_above(total, self._upper)

        budget_base = total.max - self._lower
        lo = self._lo
        desc = self._desc
        ptr = self._ptr
        for i, var in enumerate(self._vars):
            budget = budget_base + lo[i]
            costs = desc[i]
            at = ptr[i]
            if at >= len(costs) or costs[at][0] <= budget:
                continue
            old = at
            too_expensive = []
            while at < len(costs) and costs[at][0] > budget:
                too_expensive.append(costs[at][1])
                at += 1
            ptr[i] = at
            store.record_undo(self._restore_ptr(i, old))
            # One batched event per variable: the minimum-cost value always
            # survives (lower <= total.max implies lo[i] <= budget), so the
            # batch can never empty the domain.
            store.remove_many(var, too_expensive)

    def is_satisfied(self) -> bool:
        return (
            sum(self._tables[i][v.value] for i, v in enumerate(self._vars))
            == self._total.value
        )


class VectorPacking(Constraint):
    """Two-dimensional bin-packing of VMs onto nodes (Section 3.2).

    ``assignments[i]`` is the node index hosting item ``i``; ``demands[i]`` is
    the (cpu, memory) demand of item ``i``; ``capacities[j]`` the (cpu, memory)
    capacity of node ``j``.  Propagation removes node ``j`` from an item's
    domain as soon as the load already committed to ``j`` leaves too little
    room, and fails when committed load exceeds a capacity — the behaviour the
    paper obtains from Choco's packing / multi-knapsack constraints.

    Event mode maintains the free capacity of every node and the set of
    not-yet-committed items incrementally: committing an item on assignment
    is an O(1) load delta (undone on backtrack), and only the nodes whose
    free capacity shrank re-check the pending items.
    """

    priority = 2
    # propagate_events runs its own internal worklist to fixpoint (a pruning
    # that instantiates an item is committed in the same call).
    idempotent = True

    def __init__(
        self,
        assignments: Sequence[IntVar],
        demands: Sequence[tuple[int, int]],
        capacities: Sequence[tuple[int, int]],
    ):
        if len(assignments) != len(demands):
            raise ValueError("one demand per assignment variable is required")
        self._vars = list(assignments)
        self._demands = [tuple(d) for d in demands]
        self._capacities = [tuple(c) for c in capacities]
        self._index_of: dict[int, int] = {}
        self._free: list[list[int]] = []
        self._pending: set[int] = set()
        self._primed = False

    def variables(self) -> Sequence[IntVar]:
        return self._vars

    def propagate(self, store) -> None:
        if not self._vars:
            # Degenerate compilation output (no item to pack): trivially
            # satisfied, nothing to filter.
            return
        node_count = len(self._capacities)
        committed_cpu = [0] * node_count
        committed_mem = [0] * node_count
        pending: list[int] = []

        for index, var in enumerate(self._vars):
            if var.is_instantiated:
                node = var.value
                if not 0 <= node < node_count:
                    raise InconsistencyError(
                        f"assignment {var.name} targets unknown node {node}"
                    )
                committed_cpu[node] += self._demands[index][0]
                committed_mem[node] += self._demands[index][1]
            else:
                pending.append(index)

        free_cpu = [0] * node_count
        free_mem = [0] * node_count
        for node in range(node_count):
            cpu_cap, mem_cap = self._capacities[node]
            if committed_cpu[node] > cpu_cap or committed_mem[node] > mem_cap:
                raise InconsistencyError(
                    f"node {node} overloaded: committed "
                    f"({committed_cpu[node]}, {committed_mem[node]}) > "
                    f"capacity {(cpu_cap, mem_cap)}"
                )
            free_cpu[node] = cpu_cap - committed_cpu[node]
            free_mem[node] = mem_cap - committed_mem[node]

        for index in pending:
            cpu, mem = self._demands[index]
            var = self._vars[index]
            to_remove = [
                node
                for node in var.raw_values()
                if cpu > free_cpu[node] or mem > free_mem[node]
            ]
            if to_remove:
                store.remove_many(var, to_remove)

    # -- event-driven protocol -------------------------------------------------

    def register(self, store) -> None:
        self._index_of = {var.index: i for i, var in enumerate(self._vars)}
        self._free = [list(capacity) for capacity in self._capacities]
        self._pending = set(range(len(self._vars)))
        # The first propagation re-checks every node so that items that do
        # not fit an *empty* node are pruned like the reference engine does.
        self._primed = False

    def _release(self, i: int, node: int, cpu: int, mem: int):
        def undo() -> None:
            free = self._free[node]
            free[0] += cpu
            free[1] += mem
            self._pending.add(i)
        return undo

    def _commit(self, store, i: int, changed_nodes: set[int]) -> None:
        node = self._vars[i].value
        if not 0 <= node < len(self._capacities):
            raise InconsistencyError(
                f"assignment {self._vars[i].name} targets unknown node {node}"
            )
        cpu, mem = self._demands[i]
        free = self._free[node]
        free[0] -= cpu
        free[1] -= mem
        self._pending.discard(i)
        store.record_undo(self._release(i, node, cpu, mem))
        if free[0] < 0 or free[1] < 0:
            raise InconsistencyError(
                f"node {node} overloaded by {self._vars[i].name}"
            )
        changed_nodes.add(node)

    def propagate_events(self, store, dirty: Collection[int]) -> None:
        if not self._vars:
            self._primed = True
            return
        worklist = [
            i
            for model_index in dirty
            if (i := self._index_of.get(model_index)) is not None
        ]
        first = not self._primed
        self._primed = True
        while worklist or first:
            changed_nodes: set[int] = (
                set(range(len(self._capacities))) if first else set()
            )
            first = False
            for i in worklist:
                if i in self._pending and self._vars[i].is_instantiated:
                    self._commit(store, i, changed_nodes)
            worklist = []
            for node in changed_nodes:
                free_cpu, free_mem = self._free[node]
                for i in list(self._pending):
                    cpu, mem = self._demands[i]
                    if cpu <= free_cpu and mem <= free_mem:
                        continue
                    var = self._vars[i]
                    if node in var:
                        store.remove(var, node)
                        if var.is_instantiated:
                            worklist.append(i)

    def is_satisfied(self) -> bool:
        node_count = len(self._capacities)
        loads = [[0, 0] for _ in range(node_count)]
        for index, var in enumerate(self._vars):
            node = var.value
            loads[node][0] += self._demands[index][0]
            loads[node][1] += self._demands[index][1]
        return all(
            loads[j][0] <= self._capacities[j][0]
            and loads[j][1] <= self._capacities[j][1]
            for j in range(node_count)
        )


class AllEqual(Constraint):
    """Every variable takes the same value (used by the Gather placement
    constraint: all the VMs of a group share one node)."""

    def __init__(self, variables: Sequence[IntVar]):
        self._vars = list(variables)

    def variables(self) -> Sequence[IntVar]:
        return self._vars

    def propagate(self, store) -> None:
        if not self._vars:
            return
        common = set(self._vars[0].raw_values())
        for var in self._vars[1:]:
            common &= set(var.raw_values())
        if not common:
            raise InconsistencyError("AllEqual: no common value left")
        for var in self._vars:
            extra = [v for v in var.raw_values() if v not in common]
            if extra:
                store.remove_many(var, extra)

    def is_satisfied(self) -> bool:
        return len({v.value for v in self._vars}) <= 1


class NotEqual(Constraint):
    """``a != b`` — the cheapest disequality, used for two-VM ``Spread``.

    Propagation runs to its own local fixpoint (pruning ``b`` may instantiate
    it, which in turn prunes ``a``), so the constraint is genuinely idempotent
    and never needs requeueing for self-inflicted events.
    """

    priority = 0
    idempotent = True

    def __init__(self, a: IntVar, b: IntVar):
        self._a = a
        self._b = b

    def variables(self) -> Sequence[IntVar]:
        return [self._a, self._b]

    def propagate(self, store) -> None:
        a, b = self._a, self._b
        while True:
            if a.is_instantiated and b.is_instantiated:
                if a.value == b.value:
                    raise InconsistencyError(
                        f"NotEqual: {a.name} and {b.name} both take {a.value}"
                    )
                return
            if a.is_instantiated and a.value in b:
                store.remove(b, a.value)
            elif b.is_instantiated and b.value in a:
                store.remove(a, b.value)
            else:
                return

    def is_satisfied(self) -> bool:
        return self._a.value != self._b.value


class AllDifferentExcept(Constraint):
    """Pairwise-different values, except that values in ``exceptions`` may be
    shared freely (``Spread`` tolerating collocation on designated nodes)."""

    def __init__(self, variables: Sequence[IntVar], exceptions: Collection[int]):
        self._vars = list(variables)
        self._exceptions = frozenset(exceptions)

    def variables(self) -> Sequence[IntVar]:
        return self._vars

    def propagate(self, store) -> None:
        assigned: dict[int, IntVar] = {}
        for var in self._vars:
            if var.is_instantiated:
                value = var.value
                if value in self._exceptions:
                    continue
                if value in assigned:
                    raise InconsistencyError(
                        f"AllDifferentExcept: {var.name} and "
                        f"{assigned[value].name} both take {value}"
                    )
                assigned[value] = var
        for var in self._vars:
            if var.is_instantiated:
                continue
            clash = [v for v in assigned if v in var]
            if clash:
                store.remove_many(var, clash)

    def is_satisfied(self) -> bool:
        seen: set[int] = set()
        for var in self._vars:
            value = var.value
            if value in self._exceptions:
                continue
            if value in seen:
                return False
            seen.add(value)
        return True


class Among(Constraint):
    """Every variable takes its value inside a *single* one of the given
    value groups (the VMs of a group stay within one node group).

    Propagation keeps only the groups in which every variable still has at
    least one candidate value, and restricts each variable's domain to the
    union of the surviving groups.
    """

    def __init__(self, variables: Sequence[IntVar], groups: Sequence[Collection[int]]):
        normalized = [frozenset(group) for group in groups]
        if not normalized:
            raise ValueError("Among requires at least one value group")
        if any(not group for group in normalized):
            raise ValueError("Among groups must be non-empty")
        self._vars = list(variables)
        self._groups = normalized

    def variables(self) -> Sequence[IntVar]:
        return self._vars

    def propagate(self, store) -> None:
        if not self._vars:
            return
        feasible = [
            group
            for group in self._groups
            if all(self._overlaps(var, group) for var in self._vars)
        ]
        if not feasible:
            raise InconsistencyError("Among: no group can host every variable")
        union = frozenset().union(*feasible)
        for var in self._vars:
            extra = [value for value in var.raw_values() if value not in union]
            if extra:
                store.remove_many(var, extra)

    @staticmethod
    def _overlaps(var: IntVar, group: frozenset) -> bool:
        """Does the variable's domain intersect the group?  Iterates the
        smaller side (groups are usually tiny next to fleet-wide domains)."""
        if len(group) < var.size:
            return any(value in var for value in group)
        return any(value in group for value in var.raw_values())

    def is_satisfied(self) -> bool:
        values = {var.value for var in self._vars}
        return any(values <= group for group in self._groups)


class _EntailmentTrail:
    """Shared trailed-entailment machinery of the counting propagators.

    Once a counting constraint has saturated its cap and pruned every value
    that could still grow the count, it can never fail again in the current
    subtree: ``_mark_entailed`` records that fact with an undo entry so
    backtracking past the saturation point re-arms the propagator.
    """

    _entailed = False

    def register(self, store) -> None:
        self._entailed = False

    def _mark_entailed(self, store) -> None:
        self._entailed = True

        def undo() -> None:
            self._entailed = False

        store.record_undo(undo)


class UsedValuesAtMost(_EntailmentTrail, Constraint):
    """At most ``maximum`` *distinct* values of ``watched`` may be used across
    the variables (the ``MaxOnline`` compiler: cap the nodes of a set that may
    host anything at all)."""

    def __init__(
        self, variables: Sequence[IntVar], watched: Collection[int], maximum: int
    ):
        if maximum < 0:
            raise ValueError("UsedValuesAtMost needs a non-negative maximum")
        self._vars = list(variables)
        self._watched = frozenset(watched)
        self._max = maximum
        self._entailed = False

    def variables(self) -> Sequence[IntVar]:
        return self._vars

    def propagate(self, store) -> None:
        if self._entailed:
            return
        used = {
            var.value
            for var in self._vars
            if var.is_instantiated and var.value in self._watched
        }
        if len(used) > self._max:
            raise InconsistencyError(
                f"UsedValuesAtMost: {len(used)} watched values used, "
                f"maximum is {self._max}"
            )
        if len(used) == self._max:
            forbidden = self._watched - used
            for var in self._vars:
                if var.is_instantiated:
                    continue
                clash = [v for v in var.raw_values() if v in forbidden]
                if clash:
                    store.remove_many(var, clash)
            # Every remaining variable now only holds already-used (or
            # unwatched) values: the distinct count cannot grow.
            self._mark_entailed(store)

    def is_satisfied(self) -> bool:
        used = {var.value for var in self._vars if var.value in self._watched}
        return len(used) <= self._max


class CountInValuesAtMost(_EntailmentTrail, Constraint):
    """At most ``maximum`` variables may take a value inside ``watched`` (the
    ``RunningCapacity`` compiler: cap how many VMs run on a node set).

    A variable counts as *committed* once its whole domain lies inside the
    watched set; when the committed count reaches the cap, the watched values
    are pruned from every other variable (each of which still has at least one
    outside value, so the pruning can never empty a domain).
    """

    def __init__(
        self, variables: Sequence[IntVar], watched: Collection[int], maximum: int
    ):
        if maximum < 0:
            raise ValueError("CountInValuesAtMost needs a non-negative maximum")
        self._vars = list(variables)
        self._watched = frozenset(watched)
        self._max = maximum
        self._entailed = False

    def variables(self) -> Sequence[IntVar]:
        return self._vars

    def propagate(self, store) -> None:
        if self._entailed:
            return
        watched = self._watched
        watched_size = len(watched)
        # Pigeonhole fast path: a domain larger than the watched set always
        # holds an outside value, so only small domains need the full scan —
        # without this the O(vars x domain) sweep dominates large models.
        committed = [
            var
            for var in self._vars
            if var.size <= watched_size
            and all(value in watched for value in var.raw_values())
        ]
        if len(committed) > self._max:
            raise InconsistencyError(
                f"CountInValuesAtMost: {len(committed)} variables committed "
                f"to the watched set, maximum is {self._max}"
            )
        if len(committed) == self._max:
            committed_ids = {id(var) for var in committed}
            for var in self._vars:
                if id(var) in committed_ids:
                    continue
                clash = [v for v in var.raw_values() if v in watched]
                if clash:
                    store.remove_many(var, clash)
            # The other variables lost every watched value: the committed
            # count cannot grow in this subtree.
            self._mark_entailed(store)

    def is_satisfied(self) -> bool:
        return (
            sum(1 for var in self._vars if var.value in self._watched) <= self._max
        )


class DisjointValues(Constraint):
    """No value may be taken both by a ``left`` and a ``right`` variable (the
    ``Lonely`` compiler: the group's nodes host nothing else)."""

    def __init__(self, left: Sequence[IntVar], right: Sequence[IntVar]):
        self._left = list(left)
        self._right = list(right)

    def variables(self) -> Sequence[IntVar]:
        return [*self._left, *self._right]

    def propagate(self, store) -> None:
        left_used = {var.value for var in self._left if var.is_instantiated}
        right_used = {var.value for var in self._right if var.is_instantiated}
        clash = left_used & right_used
        if clash:
            raise InconsistencyError(
                f"DisjointValues: values {sorted(clash)} used on both sides"
            )
        for used, others in ((left_used, self._right), (right_used, self._left)):
            if not used:
                continue
            for var in others:
                if var.is_instantiated:
                    continue
                removable = [v for v in var.raw_values() if v in used]
                if removable:
                    store.remove_many(var, removable)

    def is_satisfied(self) -> bool:
        left = {var.value for var in self._left}
        right = {var.value for var in self._right}
        return not (left & right)


class AllDifferent(Constraint):
    """Pairwise-different values (value-based propagation)."""

    def __init__(self, variables: Sequence[IntVar]):
        self._vars = list(variables)

    def variables(self) -> Sequence[IntVar]:
        return self._vars

    def propagate(self, store) -> None:
        assigned: dict[int, IntVar] = {}
        for var in self._vars:
            if var.is_instantiated:
                value = var.value
                if value in assigned:
                    raise InconsistencyError(
                        f"AllDifferent: {var.name} and {assigned[value].name} "
                        f"both take {value}"
                    )
                assigned[value] = var
        for var in self._vars:
            if var.is_instantiated:
                continue
            clash = [v for v in assigned if v in var]
            if clash:
                store.remove_many(var, clash)

    def is_satisfied(self) -> bool:
        values = [v.value for v in self._vars]
        return len(values) == len(set(values))
