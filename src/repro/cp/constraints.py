"""Constraints understood by the solver.

Only the constraints the paper's model needs are provided, plus a couple of
generic ones that keep the solver usable on its own:

* :class:`LinearLessEqual` — a weighted sum bounded by a constant (the
  knapsack inequalities of Definition 4.1);
* :class:`ElementSum` — a total variable equal to the sum of per-variable
  lookup tables (the reconfiguration cost estimate of Section 4.3);
* :class:`VectorPacking` — the 2-dimensional bin-packing constraint relating
  VM assignment variables to node capacities (Section 3.2);
* :class:`AllDifferent` — a value-based all-different, handy for tests and
  for pivot selection experiments.

Each constraint implements ``propagate(store)``; ``store`` exposes the domain
mutations that are recorded on the solver trail.  Propagation raises
:class:`~repro.model.errors.InconsistencyError` when a domain would become
empty or a constraint is certainly violated.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..model.errors import InconsistencyError
from .variables import IntVar


class Constraint:
    """Base class of all constraints."""

    def variables(self) -> Sequence[IntVar]:
        raise NotImplementedError

    def propagate(self, store) -> None:
        """Filter the domains of the constraint's variables."""
        raise NotImplementedError

    def is_satisfied(self) -> bool:
        """Check the constraint on fully instantiated variables."""
        raise NotImplementedError


class LinearLessEqual(Constraint):
    """``sum(coefficients[i] * vars[i]) <= bound`` with non-negative
    coefficients."""

    def __init__(self, variables: Sequence[IntVar], coefficients: Sequence[int], bound: int):
        if len(variables) != len(coefficients):
            raise ValueError("variables and coefficients must have the same length")
        if any(c < 0 for c in coefficients):
            raise ValueError("LinearLessEqual only supports non-negative coefficients")
        self._vars = list(variables)
        self._coefficients = list(coefficients)
        self._bound = bound

    def variables(self) -> Sequence[IntVar]:
        return self._vars

    def propagate(self, store) -> None:
        mins = [c * v.min for c, v in zip(self._coefficients, self._vars)]
        total_min = sum(mins)
        if total_min > self._bound:
            raise InconsistencyError(
                f"linear sum lower bound {total_min} exceeds {self._bound}"
            )
        for i, (coefficient, var) in enumerate(zip(self._coefficients, self._vars)):
            if coefficient == 0:
                continue
            slack = self._bound - (total_min - mins[i])
            # coefficient * value must stay <= slack
            limit = slack // coefficient
            if var.max > limit:
                store.remove_above(var, limit)

    def is_satisfied(self) -> bool:
        return (
            sum(c * v.value for c, v in zip(self._coefficients, self._vars))
            <= self._bound
        )


class ElementSum(Constraint):
    """``total = sum_i tables[i][vars[i]]``.

    ``tables[i]`` maps every value of ``vars[i]``'s initial domain to a
    non-negative cost.  Bound-consistent propagation in both directions:
    the total is squeezed between the sum of per-variable minima and maxima,
    and values whose cost would push the sum above ``total.max`` are pruned.
    """

    def __init__(
        self,
        variables: Sequence[IntVar],
        tables: Sequence[Mapping[int, int]],
        total: IntVar,
    ):
        if len(variables) != len(tables):
            raise ValueError("one table per variable is required")
        self._vars = list(variables)
        self._tables = [dict(t) for t in tables]
        self._total = total

    def variables(self) -> Sequence[IntVar]:
        return [*self._vars, self._total]

    def _cost_bounds(self, index: int) -> tuple[int, int]:
        table = self._tables[index]
        var = self._vars[index]
        costs = [table[v] for v in var.raw_values()]
        return min(costs), max(costs)

    def propagate(self, store) -> None:
        bounds = [self._cost_bounds(i) for i in range(len(self._vars))]
        lower = sum(b[0] for b in bounds)
        upper = sum(b[1] for b in bounds)
        if lower > self._total.max or upper < self._total.min:
            raise InconsistencyError("ElementSum: cost bounds incompatible with total")
        store.remove_below(self._total, lower)
        store.remove_above(self._total, upper)

        # Prune assignment values that would exceed the total upper bound.
        total_max = self._total.max
        for i, var in enumerate(self._vars):
            others_min = lower - bounds[i][0]
            budget = total_max - others_min
            table = self._tables[i]
            too_expensive = [v for v in var.raw_values() if table[v] > budget]
            if too_expensive:
                store.remove_many(var, too_expensive)

    def is_satisfied(self) -> bool:
        return (
            sum(self._tables[i][v.value] for i, v in enumerate(self._vars))
            == self._total.value
        )


class VectorPacking(Constraint):
    """Two-dimensional bin-packing of VMs onto nodes (Section 3.2).

    ``assignments[i]`` is the node index hosting item ``i``; ``demands[i]`` is
    the (cpu, memory) demand of item ``i``; ``capacities[j]`` the (cpu, memory)
    capacity of node ``j``.  Propagation removes node ``j`` from an item's
    domain as soon as the load already committed to ``j`` leaves too little
    room, and fails when committed load exceeds a capacity — the behaviour the
    paper obtains from Choco's packing / multi-knapsack constraints.
    """

    def __init__(
        self,
        assignments: Sequence[IntVar],
        demands: Sequence[tuple[int, int]],
        capacities: Sequence[tuple[int, int]],
    ):
        if len(assignments) != len(demands):
            raise ValueError("one demand per assignment variable is required")
        self._vars = list(assignments)
        self._demands = [tuple(d) for d in demands]
        self._capacities = [tuple(c) for c in capacities]

    def variables(self) -> Sequence[IntVar]:
        return self._vars

    def propagate(self, store) -> None:
        node_count = len(self._capacities)
        committed_cpu = [0] * node_count
        committed_mem = [0] * node_count
        pending: list[int] = []

        for index, var in enumerate(self._vars):
            if var.is_instantiated:
                node = var.value
                if not 0 <= node < node_count:
                    raise InconsistencyError(
                        f"assignment {var.name} targets unknown node {node}"
                    )
                committed_cpu[node] += self._demands[index][0]
                committed_mem[node] += self._demands[index][1]
            else:
                pending.append(index)

        free_cpu = [0] * node_count
        free_mem = [0] * node_count
        for node in range(node_count):
            cpu_cap, mem_cap = self._capacities[node]
            if committed_cpu[node] > cpu_cap or committed_mem[node] > mem_cap:
                raise InconsistencyError(
                    f"node {node} overloaded: committed "
                    f"({committed_cpu[node]}, {committed_mem[node]}) > "
                    f"capacity {(cpu_cap, mem_cap)}"
                )
            free_cpu[node] = cpu_cap - committed_cpu[node]
            free_mem[node] = mem_cap - committed_mem[node]

        for index in pending:
            cpu, mem = self._demands[index]
            var = self._vars[index]
            to_remove = [
                node
                for node in var.raw_values()
                if cpu > free_cpu[node] or mem > free_mem[node]
            ]
            if to_remove:
                store.remove_many(var, to_remove)

    def is_satisfied(self) -> bool:
        node_count = len(self._capacities)
        loads = [[0, 0] for _ in range(node_count)]
        for index, var in enumerate(self._vars):
            node = var.value
            loads[node][0] += self._demands[index][0]
            loads[node][1] += self._demands[index][1]
        return all(
            loads[j][0] <= self._capacities[j][0]
            and loads[j][1] <= self._capacities[j][1]
            for j in range(node_count)
        )


class AllEqual(Constraint):
    """Every variable takes the same value (used by the Gather placement
    constraint: all the VMs of a group share one node)."""

    def __init__(self, variables: Sequence[IntVar]):
        self._vars = list(variables)

    def variables(self) -> Sequence[IntVar]:
        return self._vars

    def propagate(self, store) -> None:
        if not self._vars:
            return
        common = set(self._vars[0].raw_values())
        for var in self._vars[1:]:
            common &= var.raw_values()
        if not common:
            raise InconsistencyError("AllEqual: no common value left")
        for var in self._vars:
            extra = [v for v in var.raw_values() if v not in common]
            if extra:
                store.remove_many(var, extra)

    def is_satisfied(self) -> bool:
        return len({v.value for v in self._vars}) <= 1


class AllDifferent(Constraint):
    """Pairwise-different values (value-based propagation)."""

    def __init__(self, variables: Sequence[IntVar]):
        self._vars = list(variables)

    def variables(self) -> Sequence[IntVar]:
        return self._vars

    def propagate(self, store) -> None:
        assigned: dict[int, IntVar] = {}
        for var in self._vars:
            if var.is_instantiated:
                value = var.value
                if value in assigned:
                    raise InconsistencyError(
                        f"AllDifferent: {var.name} and {assigned[value].name} "
                        f"both take {value}"
                    )
                assigned[value] = var
        for var in self._vars:
            if var.is_instantiated:
                continue
            clash = [v for v in assigned if v in var]
            if clash:
                store.remove_many(var, clash)

    def is_satisfied(self) -> bool:
        values = [v.value for v in self._vars]
        return len(values) == len(set(values))
