"""Finite integer domains for the constraint solver.

The solver reproduces the small subset of Choco 1.2 the paper relies on:
finite-domain integer variables, propagation to a fixpoint, a depth-first
search with a first-fail flavoured heuristic, and branch-and-bound
minimization of a single cost variable (Section 4.3).

Domains are plain sorted containers of ints.  Removals are recorded by the
solver's trail so the search can backtrack without copying whole domains.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..model.errors import InconsistencyError


class Domain:
    """A mutable finite set of integers."""

    __slots__ = ("_values",)

    def __init__(self, values: Iterable[int]):
        self._values = set(int(v) for v in values)
        if not self._values:
            raise ValueError("a domain cannot be created empty")

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: int) -> bool:
        return value in self._values

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._values))

    @property
    def min(self) -> int:
        return min(self._values)

    @property
    def max(self) -> int:
        return max(self._values)

    @property
    def is_singleton(self) -> bool:
        return len(self._values) == 1

    @property
    def value(self) -> int:
        """The single value of an instantiated domain."""
        if not self.is_singleton:
            raise ValueError("domain is not a singleton")
        return next(iter(self._values))

    def values(self) -> tuple[int, ...]:
        return tuple(sorted(self._values))

    def raw_values(self) -> frozenset[int]:
        """Unordered view of the domain (cheaper than :meth:`values` for the
        propagators' inner loops)."""
        return frozenset(self._values)

    def copy(self) -> "Domain":
        clone = Domain.__new__(Domain)
        clone._values = set(self._values)
        return clone

    # -- mutations (return the set of removed values) -------------------------

    def remove(self, value: int) -> frozenset[int]:
        if value not in self._values:
            return frozenset()
        if len(self._values) == 1:
            raise InconsistencyError(f"removing {value} empties the domain")
        self._values.discard(value)
        return frozenset((value,))

    def remove_many(self, values: Iterable[int]) -> frozenset[int]:
        removed = self._values & set(values)
        if not removed:
            return frozenset()
        if len(removed) == len(self._values):
            raise InconsistencyError("removal empties the domain")
        self._values -= removed
        return frozenset(removed)

    def assign(self, value: int) -> frozenset[int]:
        """Restrict the domain to a single value."""
        if value not in self._values:
            raise InconsistencyError(f"value {value} not in domain")
        removed = frozenset(v for v in self._values if v != value)
        self._values = {value}
        return removed

    def remove_above(self, bound: int) -> frozenset[int]:
        return self.remove_many([v for v in self._values if v > bound])

    def remove_below(self, bound: int) -> frozenset[int]:
        return self.remove_many([v for v in self._values if v < bound])

    def restore(self, values: frozenset[int]) -> None:
        """Put back values removed earlier (used by the trail)."""
        self._values |= values

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        if len(self._values) <= 8:
            return f"Domain({sorted(self._values)})"
        return f"Domain([{self.min}..{self.max}], size={len(self._values)})"
