"""Finite integer domains for the constraint solver.

The solver reproduces the small subset of Choco 1.2 the paper relies on:
finite-domain integer variables, event-driven propagation, a depth-first
search with a first-fail flavoured heuristic, and branch-and-bound
minimization of a single cost variable (Section 4.3).

Two representations are provided:

* :class:`Domain` — a *sparse set* over an arbitrary finite set of integers.
  Removing a value swaps it past the end of the active prefix and shrinks a
  size counter, so every removal is O(1) and backtracking is a single integer
  write (:meth:`Domain.restore_to`): the removed values are still sitting in
  the array, in removal order, beyond the active prefix.  This replaces the
  copy-on-restore sets of the first solver generation.
* :class:`IntervalDomain` — a pair of bounds for variables that are only ever
  tightened from the outside in (the branch-and-bound objective).  All bound
  operations are O(1) regardless of the width of the interval, which matters
  because the objective domain can span five to six figures.

Both expose the same mutation API (mutations return the number of removed
values) plus ``mark()``/``restore_to(token)`` used by the solver trail.
Propagation raises :class:`~repro.model.errors.InconsistencyError` when a
mutation would empty the domain.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..model.errors import InconsistencyError


class Domain:
    """A mutable finite set of integers backed by a sparse set."""

    __slots__ = ("_values", "_pos", "_size", "_rev", "_minmax", "_minmax_rev", "trail_stamp")

    def __init__(self, values: Iterable[int]):
        ordered = sorted({int(v) for v in values})
        if not ordered:
            raise ValueError("a domain cannot be created empty")
        self._values = ordered
        self._pos = {v: i for i, v in enumerate(ordered)}
        self._size = len(ordered)
        self._rev = 0
        self._minmax = (ordered[0], ordered[-1])
        self._minmax_rev = 0
        #: Trail era of the last save; managed by the solver store.
        self.trail_stamp = -1

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, value: int) -> bool:
        pos = self._pos.get(value)
        return pos is not None and pos < self._size

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._values[: self._size]))

    def _bounds(self) -> tuple[int, int]:
        if self._minmax_rev != self._rev:
            active = self._values
            lo = hi = active[0]
            for i in range(1, self._size):
                v = active[i]
                if v < lo:
                    lo = v
                elif v > hi:
                    hi = v
            self._minmax = (lo, hi)
            self._minmax_rev = self._rev
        return self._minmax

    @property
    def min(self) -> int:
        return self._bounds()[0]

    @property
    def max(self) -> int:
        return self._bounds()[1]

    @property
    def is_singleton(self) -> bool:
        return self._size == 1

    @property
    def value(self) -> int:
        """The single value of an instantiated domain."""
        if self._size != 1:
            raise ValueError("domain is not a singleton")
        return self._values[0]

    def values(self) -> tuple[int, ...]:
        return tuple(sorted(self._values[: self._size]))

    def raw_values(self) -> tuple[int, ...]:
        """Unordered view of the domain (cheaper than :meth:`values` for the
        propagators' inner loops)."""
        return tuple(self._values[: self._size])

    def copy(self) -> "Domain":
        return Domain(self._values[: self._size])

    # -- trail support --------------------------------------------------------

    def mark(self) -> int:
        """Opaque token describing the current state, for :meth:`restore_to`."""
        return self._size

    def restore_to(self, token: int) -> None:
        """O(1) backtracking: values removed since ``mark()`` returned
        ``token`` are still parked right after the active prefix, so restoring
        the size brings exactly those values back."""
        self._size = token
        self._rev += 1

    # -- mutations (return the number of removed values) -----------------------

    def _discard(self, value: int) -> None:
        """Swap ``value`` just past the active prefix and shrink it."""
        values, pos = self._values, self._pos
        last = self._size - 1
        at = pos[value]
        other = values[last]
        values[at] = other
        pos[other] = at
        values[last] = value
        pos[value] = last
        self._size = last

    def remove(self, value: int) -> int:
        pos = self._pos.get(value)
        if pos is None or pos >= self._size:
            return 0
        if self._size == 1:
            raise InconsistencyError(f"removing {value} empties the domain")
        self._discard(value)
        self._rev += 1
        return 1

    def remove_many(self, values: Iterable[int]) -> int:
        # dict.fromkeys dedups at C speed; the inline position check avoids
        # __contains__ dispatch on this very hot path.
        pos = self._pos
        size = self._size
        targets = [
            v
            for v in dict.fromkeys(values)
            if (p := pos.get(v)) is not None and p < size
        ]
        if not targets:
            return 0
        if len(targets) == size:
            raise InconsistencyError("removal empties the domain")
        for v in targets:
            self._discard(v)
        self._rev += 1
        return len(targets)

    def assign(self, value: int) -> int:
        """Restrict the domain to a single value."""
        pos = self._pos.get(value)
        if pos is None or pos >= self._size:
            raise InconsistencyError(f"value {value} not in domain")
        removed = self._size - 1
        if removed:
            # A swap within the active prefix keeps the sparse-set invariant:
            # restoring the size restores the same *set* of values.
            values, positions = self._values, self._pos
            other = values[0]
            values[0] = value
            positions[value] = 0
            values[pos] = other
            positions[other] = pos
            self._size = 1
            self._rev += 1
        return removed

    def remove_above(self, bound: int) -> int:
        return self.remove_many([v for v in self._values[: self._size] if v > bound])

    def remove_below(self, bound: int) -> int:
        return self.remove_many([v for v in self._values[: self._size] if v < bound])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        if self._size <= 8:
            return f"Domain({sorted(self._values[: self._size])})"
        return f"Domain([{self.min}..{self.max}], size={self._size})"


class IntervalDomain:
    """A contiguous domain ``[lo, hi]`` with O(1) bound tightening.

    Used for the branch-and-bound objective variable, whose domain can span
    :math:`10^5` values: the sparse set would pay O(width) on every bound
    update, the interval pays O(1).  Only operations expressible on bounds are
    supported — removing an interior value raises ``ValueError`` because the
    representation cannot encode a hole.
    """

    __slots__ = ("_lo", "_hi", "_rev", "trail_stamp")

    def __init__(self, lower: int, upper: int):
        if upper < lower:
            raise ValueError(f"empty interval [{lower}, {upper}]")
        self._lo = int(lower)
        self._hi = int(upper)
        self._rev = 0
        self.trail_stamp = -1

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return self._hi - self._lo + 1

    def __contains__(self, value: int) -> bool:
        return self._lo <= value <= self._hi

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._lo, self._hi + 1))

    @property
    def min(self) -> int:
        return self._lo

    @property
    def max(self) -> int:
        return self._hi

    @property
    def is_singleton(self) -> bool:
        return self._lo == self._hi

    @property
    def value(self) -> int:
        if self._lo != self._hi:
            raise ValueError("domain is not a singleton")
        return self._lo

    def values(self) -> tuple[int, ...]:
        return tuple(range(self._lo, self._hi + 1))

    def raw_values(self) -> tuple[int, ...]:
        return self.values()

    def copy(self) -> "IntervalDomain":
        return IntervalDomain(self._lo, self._hi)

    # -- trail support --------------------------------------------------------

    def mark(self) -> tuple[int, int]:
        return (self._lo, self._hi)

    def restore_to(self, token: tuple[int, int]) -> None:
        self._lo, self._hi = token
        self._rev += 1

    # -- mutations -------------------------------------------------------------

    def remove(self, value: int) -> int:
        if value < self._lo or value > self._hi:
            return 0
        if self._lo == self._hi:
            raise InconsistencyError(f"removing {value} empties the domain")
        if value == self._lo:
            self._lo += 1
        elif value == self._hi:
            self._hi -= 1
        else:
            raise ValueError(
                "IntervalDomain cannot remove an interior value; use a Domain"
            )
        self._rev += 1
        return 1

    def remove_many(self, values: Iterable[int]) -> int:
        """Peel values off the edges.  Atomic: the domain is only mutated
        once the whole batch is known to be expressible on bounds (interior
        holes raise ``ValueError`` *before* any change)."""
        pending = sorted({v for v in values if self._lo <= v <= self._hi})
        if not pending:
            return 0
        new_lo = self._lo
        i = 0
        while i < len(pending) and pending[i] == new_lo:
            new_lo += 1
            i += 1
        new_hi = self._hi
        j = len(pending) - 1
        while j >= i and pending[j] == new_hi:
            new_hi -= 1
            j -= 1
        if j >= i:
            raise ValueError(
                "IntervalDomain cannot remove interior values; use a Domain"
            )
        if new_lo > new_hi:
            raise InconsistencyError("removal empties the domain")
        removed = (new_lo - self._lo) + (self._hi - new_hi)
        self._lo, self._hi = new_lo, new_hi
        self._rev += 1
        return removed

    def assign(self, value: int) -> int:
        if value < self._lo or value > self._hi:
            raise InconsistencyError(f"value {value} not in domain")
        removed = (self._hi - self._lo + 1) - 1
        if removed:
            self._lo = self._hi = value
            self._rev += 1
        return removed

    def remove_above(self, bound: int) -> int:
        if bound >= self._hi:
            return 0
        if bound < self._lo:
            raise InconsistencyError(
                f"removing values above {bound} empties [{self._lo}, {self._hi}]"
            )
        removed = self._hi - bound
        self._hi = bound
        self._rev += 1
        return removed

    def remove_below(self, bound: int) -> int:
        if bound <= self._lo:
            return 0
        if bound > self._hi:
            raise InconsistencyError(
                f"removing values below {bound} empties [{self._lo}, {self._hi}]"
            )
        removed = bound - self._lo
        self._lo = bound
        self._rev += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"IntervalDomain([{self._lo}..{self._hi}])"
