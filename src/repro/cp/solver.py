"""Depth-first search with propagation and branch-and-bound minimization.

This is the Choco replacement used by :mod:`repro.core.optimizer`.  The search
follows the strategy described in Section 4.3 of the paper:

* constraint propagation to a fixpoint after every decision, so non-viable
  partial configurations are discarded as early as possible;
* a *first-fail* flavoured variable ordering — variables with the largest
  requirements (or smallest domains) are instantiated first;
* value ordering that favours a variable's preferred value (its current host)
  to reduce the number of VM movements;
* branch-and-bound on a single objective variable: every time a solution is
  found, the search continues looking for strictly cheaper ones until the
  optimum is proved or a timeout expires.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from ..model.errors import InconsistencyError, SolverError
from .constraints import Constraint
from .variables import IntVar

VariableSelector = Callable[[Sequence[IntVar]], Optional[IntVar]]
ValueSelector = Callable[[IntVar], Sequence[int]]


# --------------------------------------------------------------------------- #
# Heuristics                                                                   #
# --------------------------------------------------------------------------- #

def first_fail(variables: Sequence[IntVar]) -> Optional[IntVar]:
    """Pick the uninstantiated variable with the smallest domain."""
    candidates = [v for v in variables if not v.is_instantiated]
    if not candidates:
        return None
    return min(candidates, key=lambda v: v.size)


def static_order(order: Sequence[IntVar]) -> VariableSelector:
    """Instantiate variables following a fixed order (e.g. biggest VMs
    first, the first-fail approach of [23] used by the paper)."""
    fixed = list(order)

    def select(variables: Sequence[IntVar]) -> Optional[IntVar]:
        for var in fixed:
            if not var.is_instantiated:
                return var
        for var in variables:
            if not var.is_instantiated:
                return var
        return None

    return select


def ascending_values(var: IntVar) -> Sequence[int]:
    return var.values()


def prefer_value(preferences: dict[str, int]) -> ValueSelector:
    """Try a variable's preferred value first (its current host node)."""

    def select(var: IntVar) -> Sequence[int]:
        values = list(var.values())
        preferred = preferences.get(var.name)
        if preferred is not None and preferred in var:
            values.remove(preferred)
            values.insert(0, preferred)
        return values

    return select


# --------------------------------------------------------------------------- #
# Model                                                                        #
# --------------------------------------------------------------------------- #

class Model:
    """A bag of variables and constraints."""

    def __init__(self) -> None:
        self._variables: list[IntVar] = []
        self._constraints: list[Constraint] = []
        self._names: set[str] = set()

    def add_variable(self, var: IntVar) -> IntVar:
        if var.name in self._names:
            raise SolverError(f"variable {var.name!r} already declared")
        var.index = len(self._variables)
        self._variables.append(var)
        self._names.add(var.name)
        return var

    def int_var(self, name: str, values: Iterable[int]) -> IntVar:
        return self.add_variable(IntVar(name, values))

    def add_constraint(self, constraint: Constraint) -> Constraint:
        self._constraints.append(constraint)
        return constraint

    @property
    def variables(self) -> Sequence[IntVar]:
        return tuple(self._variables)

    @property
    def constraints(self) -> Sequence[Constraint]:
        return tuple(self._constraints)


# --------------------------------------------------------------------------- #
# Solutions & statistics                                                       #
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class Solution:
    """A snapshot of instantiated variables."""

    values: dict[str, int]
    objective: Optional[int] = None

    def __getitem__(self, name: str) -> int:
        return self.values[name]


@dataclass
class SearchStatistics:
    """Search effort counters, reported by :meth:`Solver.solve`."""

    nodes: int = 0
    backtracks: int = 0
    solutions: int = 0
    proven_optimal: bool = False
    timed_out: bool = False
    elapsed: float = 0.0


@dataclass
class SearchResult:
    """Outcome of a search."""

    best: Optional[Solution]
    all_solutions: list[Solution] = field(default_factory=list)
    statistics: SearchStatistics = field(default_factory=SearchStatistics)

    @property
    def has_solution(self) -> bool:
        return self.best is not None


# --------------------------------------------------------------------------- #
# Store: trail-recorded domain mutations                                        #
# --------------------------------------------------------------------------- #

class _Store:
    """Applies domain reductions, records them on a trail, and schedules the
    constraints watching the touched variables."""

    def __init__(self, watchers: dict[int, list[Constraint]]):
        self._trail: list[tuple[IntVar, frozenset[int]]] = []
        self._levels: list[int] = []
        self._watchers = watchers
        self._queue: list[Constraint] = []
        self._queued: set[int] = set()

    # -- trail management ----------------------------------------------------

    def push_level(self) -> None:
        self._levels.append(len(self._trail))

    def pop_level(self) -> None:
        mark = self._levels.pop()
        while len(self._trail) > mark:
            var, removed = self._trail.pop()
            var.domain.restore(removed)

    # -- propagation queue ---------------------------------------------------

    def schedule(self, constraint: Constraint) -> None:
        if id(constraint) not in self._queued:
            self._queue.append(constraint)
            self._queued.add(id(constraint))

    def schedule_watchers(self, var: IntVar) -> None:
        for constraint in self._watchers.get(var.index, ()):
            self.schedule(constraint)

    def pop_constraint(self) -> Optional[Constraint]:
        if not self._queue:
            return None
        constraint = self._queue.pop(0)
        self._queued.discard(id(constraint))
        return constraint

    def clear_queue(self) -> None:
        self._queue.clear()
        self._queued.clear()

    # -- mutations -----------------------------------------------------------

    def _record(self, var: IntVar, removed: frozenset[int]) -> None:
        if removed:
            self._trail.append((var, removed))
            self.schedule_watchers(var)

    def remove(self, var: IntVar, value: int) -> None:
        self._record(var, var.domain.remove(value))

    def remove_many(self, var: IntVar, values: Iterable[int]) -> None:
        self._record(var, var.domain.remove_many(values))

    def remove_above(self, var: IntVar, bound: int) -> None:
        self._record(var, var.domain.remove_above(bound))

    def remove_below(self, var: IntVar, bound: int) -> None:
        self._record(var, var.domain.remove_below(bound))

    def assign(self, var: IntVar, value: int) -> None:
        self._record(var, var.domain.assign(value))


# --------------------------------------------------------------------------- #
# Solver                                                                       #
# --------------------------------------------------------------------------- #

class Solver:
    """Backtracking search over a :class:`Model`."""

    def __init__(
        self,
        model: Model,
        variable_selector: VariableSelector = first_fail,
        value_selector: ValueSelector = ascending_values,
    ) -> None:
        self._model = model
        self._variable_selector = variable_selector
        self._value_selector = value_selector
        watchers: dict[int, list[Constraint]] = {}
        for constraint in model.constraints:
            for var in constraint.variables():
                watchers.setdefault(var.index, []).append(constraint)
        self._watchers = watchers

    # -- public API ----------------------------------------------------------

    def solve(
        self,
        minimize: Optional[IntVar] = None,
        timeout: Optional[float] = None,
        solution_limit: Optional[int] = None,
        collect_all: bool = False,
        first_solution_only: bool = False,
        initial_bound: Optional[int] = None,
    ) -> SearchResult:
        """Run the search.

        Parameters
        ----------
        minimize:
            Objective variable to minimize with branch-and-bound.  ``None``
            turns the search into plain satisfaction.
        timeout:
            Wall-clock budget in seconds; the best solution found so far is
            returned when it expires (the paper uses 40 s in Section 5.1).
        solution_limit:
            Stop after this many solutions (satisfaction mode only).
        collect_all:
            Keep every improving/accepted solution in ``all_solutions``.
        first_solution_only:
            Stop at the first solution even when minimizing — this reproduces
            the behaviour of the FFD baseline ("stops after the first completed
            viable configuration").
        initial_bound:
            Objective value of a solution already known outside the search
            (e.g. a greedy repair of the current placement); only strictly
            better solutions are accepted, so an empty result means the
            incumbent was not improved within the budget.
        """
        store = _Store(self._watchers)
        stats = SearchStatistics()
        result = SearchResult(best=None, statistics=stats)
        deadline = None if timeout is None else time.monotonic() + timeout
        start = time.monotonic()
        best_cost: Optional[int] = initial_bound if minimize is not None else None

        def out_of_time() -> bool:
            return deadline is not None and time.monotonic() > deadline

        def snapshot() -> Solution:
            values = {
                var.name: var.value
                for var in self._model.variables
                if var.is_instantiated
            }
            objective = minimize.value if minimize is not None else None
            return Solution(values=values, objective=objective)

        def propagate() -> bool:
            """Propagate to fixpoint; False on inconsistency."""
            try:
                if minimize is not None and best_cost is not None:
                    store.remove_above(minimize, best_cost - 1)
                for constraint in self._model.constraints:
                    store.schedule(constraint)
                while True:
                    constraint = store.pop_constraint()
                    if constraint is None:
                        return True
                    constraint.propagate(store)
            except InconsistencyError:
                store.clear_queue()
                return False

        def all_instantiated() -> bool:
            return all(var.is_instantiated for var in self._model.variables)

        def search() -> bool:
            """Return True when the search must stop entirely."""
            nonlocal best_cost
            stats.nodes += 1
            if out_of_time():
                stats.timed_out = True
                return True

            if all_instantiated():
                stats.solutions += 1
                solution = snapshot()
                if collect_all:
                    result.all_solutions.append(solution)
                if minimize is not None:
                    if best_cost is None or solution.objective < best_cost:
                        best_cost = solution.objective
                        result.best = solution
                    if first_solution_only:
                        return True
                    # keep searching for a strictly better solution
                    return False
                result.best = result.best or solution
                if first_solution_only:
                    return True
                if solution_limit is not None and stats.solutions >= solution_limit:
                    return True
                return False

            var = self._variable_selector(self._model.variables)
            if var is None:
                # all decision variables instantiated but some auxiliary ones
                # are not: propagation should have fixed them, treat as failure
                return False

            for value in self._value_selector(var):
                if value not in var:
                    continue
                store.push_level()
                try:
                    store.assign(var, value)
                except InconsistencyError:
                    store.pop_level()
                    stats.backtracks += 1
                    continue
                if propagate():
                    if search():
                        store.pop_level()
                        return True
                stats.backtracks += 1
                store.pop_level()
                if out_of_time():
                    stats.timed_out = True
                    return True
            return False

        store.push_level()
        if propagate():
            stopped = search()
        else:
            stopped = False
        store.pop_level()

        del stopped
        stats.elapsed = time.monotonic() - start
        if minimize is not None and not first_solution_only:
            # In minimization mode the search only stops early on timeout, so
            # exhausting the tree without a timeout proves optimality (of the
            # best solution found, or of the external incumbent when an
            # initial bound was supplied and never improved).
            stats.proven_optimal = not stats.timed_out and (
                result.best is not None or initial_bound is not None
            )
        return result
