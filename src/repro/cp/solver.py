"""Depth-first search with event-driven propagation and branch-and-bound.

This is the Choco replacement used by :mod:`repro.core.optimizer`.  The search
follows the strategy described in Section 4.3 of the paper:

* event-driven constraint propagation: every constraint registers on the
  variables it watches, and a domain change pushes only the affected
  constraints onto a priority-bucketed propagation queue (idempotent
  constraints are not requeued for their own prunings).  Incremental
  propagators (packing loads, cost sums) update trailed counters by deltas
  instead of recomputing from scratch, so a failed assignment costs O(1)
  instead of a full sweep of the model;
* a *first-fail* flavoured variable ordering — variables with the largest
  requirements (or smallest domains) are instantiated first — optionally
  wrapped in :class:`ActivityLastConflict`, which branches on the variable of
  the most recent conflict first and falls back to activity-weighted
  first-fail;
* value ordering that favours a variable's preferred value (its current host)
  to reduce the number of VM movements;
* branch-and-bound on a single objective variable: every time a solution is
  found, the search continues looking for strictly cheaper ones until the
  optimum is proved or a timeout expires.

The previous solver generation re-propagated *every* constraint to a fixpoint
after *every* decision; that behaviour is retained as the ``"fixpoint"``
reference engine so equivalence can be property-tested and the speedup of the
event engine benchmarked (``benchmarks/bench_solver_scaling.py``).
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional, Sequence

from ..model.errors import InconsistencyError, SolverError
from ..obs import NULL_SPAN, Span
from ..obs import span as obs_span
from .constraints import Constraint
from .variables import IntVar, make_interval_var, make_pinned_var

VariableSelector = Callable[[Sequence[IntVar]], Optional[IntVar]]
ValueSelector = Callable[[IntVar], Sequence[int]]

#: Known propagation engines: ``"event"`` wakes only the constraints watching
#: a changed variable; ``"fixpoint"`` re-propagates every constraint after
#: every decision (the pre-event-engine reference behaviour).
ENGINES = ("event", "fixpoint")

#: Number of priority buckets in the propagation queue.
_PRIORITY_LEVELS = 4


# --------------------------------------------------------------------------- #
# Heuristics                                                                   #
# --------------------------------------------------------------------------- #

def first_fail(variables: Sequence[IntVar]) -> Optional[IntVar]:
    """Pick the uninstantiated variable with the smallest domain."""
    candidates = [v for v in variables if not v.is_instantiated]
    if not candidates:
        return None
    return min(candidates, key=lambda v: v.size)


def static_order(order: Sequence[IntVar]) -> VariableSelector:
    """Instantiate variables following a fixed order (e.g. biggest VMs
    first, the first-fail approach of [23] used by the paper)."""
    fixed = list(order)

    def select(variables: Sequence[IntVar]) -> Optional[IntVar]:
        for var in fixed:
            if not var.is_instantiated:
                return var
        for var in variables:
            if not var.is_instantiated:
                return var
        return None

    return select


class ActivityLastConflict:
    """Last-conflict-first variable selection with an activity fallback.

    Wraps a ``primary`` selector (typically the paper's static biggest-first
    order).  When the most recent conflict's variable is still free it is
    branched on first — chronological backtracking then stays close to the
    source of the failure instead of thrashing through unrelated variables.
    Without a primary selector, the fallback picks the free variable with the
    highest failure activity per remaining value (a weighted first-fail).

    The solver reports failures through :meth:`on_failure`; plain callables
    without that method keep working unchanged.
    """

    def __init__(self, primary: Optional[VariableSelector] = None):
        self._primary = primary
        self._last_conflict: Optional[IntVar] = None

    def __call__(self, variables: Sequence[IntVar]) -> Optional[IntVar]:
        last = self._last_conflict
        if last is not None and not last.is_instantiated:
            return last
        if self._primary is not None:
            return self._primary(variables)
        candidates = [v for v in variables if not v.is_instantiated]
        if not candidates:
            return None
        return max(candidates, key=lambda v: (v.activity / v.size, -v.size, -v.index))

    def on_failure(self, var: IntVar) -> None:
        self._last_conflict = var

    def reset(self) -> None:
        self._last_conflict = None


def ascending_values(var: IntVar) -> Sequence[int]:
    return var.values()


def prefer_value(preferences: dict[str, int]) -> ValueSelector:
    """Try a variable's preferred value first (its current host node)."""

    def select(var: IntVar) -> Sequence[int]:
        values = list(var.values())
        preferred = preferences.get(var.name)
        if preferred is not None and preferred in var:
            values.remove(preferred)
            values.insert(0, preferred)
        return values

    return select


# --------------------------------------------------------------------------- #
# Model                                                                        #
# --------------------------------------------------------------------------- #

class Model:
    """A bag of variables and constraints."""

    def __init__(self) -> None:
        self._variables: list[IntVar] = []
        self._constraints: list[Constraint] = []
        self._names: set[str] = set()

    def add_variable(self, var: IntVar) -> IntVar:
        if var.name in self._names:
            raise SolverError(f"variable {var.name!r} already declared")
        var.index = len(self._variables)
        self._variables.append(var)
        self._names.add(var.name)
        return var

    def int_var(self, name: str, values: Iterable[int]) -> IntVar:
        return self.add_variable(IntVar(name, values))

    def interval_var(self, name: str, lower: int, upper: int) -> IntVar:
        """A variable over a contiguous ``[lower, upper]`` domain with O(1)
        bound tightening — use for wide objective domains."""
        return self.add_variable(make_interval_var(name, lower, upper))

    def pinned_var(self, name: str, value: int) -> IntVar:
        """A frozen variable instantiated at ``value`` (unary domain).

        The repair engine declares one per clean VM: global constraints see
        the full placement while the search only branches over the dirty
        region."""
        return self.add_variable(make_pinned_var(name, value))

    def add_constraint(self, constraint: Constraint) -> Constraint:
        self._constraints.append(constraint)
        return constraint

    @property
    def variables(self) -> Sequence[IntVar]:
        return tuple(self._variables)

    @property
    def constraints(self) -> Sequence[Constraint]:
        return tuple(self._constraints)


# --------------------------------------------------------------------------- #
# Solutions & statistics                                                       #
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class Solution:
    """A snapshot of instantiated variables."""

    values: dict[str, int]
    objective: Optional[int] = None

    def __getitem__(self, name: str) -> int:
        return self.values[name]


@dataclass
class SearchStatistics:
    """Search effort counters, reported by :meth:`Solver.solve`."""

    nodes: int = 0
    backtracks: int = 0
    solutions: int = 0
    propagations: int = 0
    events: int = 0
    proven_optimal: bool = False
    timed_out: bool = False
    limit_reached: bool = False
    elapsed: float = 0.0


@dataclass
class SearchResult:
    """Outcome of a search."""

    best: Optional[Solution]
    all_solutions: list[Solution] = field(default_factory=list)
    statistics: SearchStatistics = field(default_factory=SearchStatistics)

    @property
    def has_solution(self) -> bool:
        return self.best is not None


# --------------------------------------------------------------------------- #
# Store: trail-recorded domain mutations + propagation queue                   #
# --------------------------------------------------------------------------- #

class _Store:
    """Applies domain reductions, records them on a trail, and schedules the
    constraints watching the touched variables.

    The trail holds two kinds of entries: ``(domain, mark_token)`` pairs — at
    most one per domain per level, thanks to era stamps — undone by the O(1)
    :meth:`~repro.cp.domain.Domain.restore_to`, and ``(callable, None)`` undo
    closures registered by incremental propagators to roll their counters
    back.  The propagation queue is bucketed by constraint priority; a
    constraint currently propagating is not requeued for its own events when
    it declares itself idempotent.
    """

    #: Global era counter: eras never repeat across stores, so stale stamps on
    #: domains reused by a later search can never collide.
    _ERAS = itertools.count(1)

    __slots__ = (
        "_trail", "_levels", "_watchers", "_era", "_event_mode",
        "_buckets", "_queued", "_dirty", "_active", "events",
    )

    def __init__(self, watchers: dict[int, list[Constraint]], event_mode: bool = True):
        self._trail: list[tuple] = []
        self._levels: list[int] = []
        self._watchers = watchers
        self._era = next(_Store._ERAS)
        #: False for the fixpoint reference engine: watchers are still woken
        #: (the pre-event-engine behaviour) but no dirty-set bookkeeping is
        #: done, so the reference timings carry no event-engine overhead.
        self._event_mode = event_mode
        self._buckets = tuple(deque() for _ in range(_PRIORITY_LEVELS))
        self._queued: set[int] = set()
        self._dirty: dict[int, set[int]] = {}
        self._active: Optional[Constraint] = None
        self.events = 0

    # -- trail management ----------------------------------------------------

    def push_level(self) -> None:
        self._levels.append(len(self._trail))
        self._era = next(_Store._ERAS)

    def pop_level(self) -> None:
        mark = self._levels.pop()
        trail = self._trail
        while len(trail) > mark:
            target, token = trail.pop()
            if token is None:
                target()
            else:
                target.restore_to(token)
        self._era = next(_Store._ERAS)

    def record_undo(self, undo: Callable[[], None]) -> None:
        """Register a closure run when the current level is popped."""
        self._trail.append((undo, None))

    def _save(self, domain) -> None:
        if domain.trail_stamp != self._era:
            self._trail.append((domain, domain.mark()))
            domain.trail_stamp = self._era

    # -- propagation queue ---------------------------------------------------

    def schedule(self, constraint: Constraint) -> None:
        key = id(constraint)
        if key not in self._queued:
            self._queued.add(key)
            self._buckets[constraint.priority].append(constraint)

    def mark_dirty(self, constraint: Constraint, indices: Iterable[int]) -> None:
        dirty = self._dirty.setdefault(id(constraint), set())
        dirty.update(indices)

    def _changed(self, var: IntVar) -> None:
        self.events += 1
        index = var.index
        if not self._event_mode:
            for constraint in self._watchers.get(index, ()):
                self.schedule(constraint)
            return
        active = self._active
        for constraint in self._watchers.get(index, ()):
            if constraint is active and constraint.idempotent:
                continue
            key = id(constraint)
            dirty = self._dirty.get(key)
            if dirty is None:
                dirty = self._dirty[key] = set()
            dirty.add(index)
            if key not in self._queued:
                self._queued.add(key)
                self._buckets[constraint.priority].append(constraint)

    def pop_constraint(self) -> Optional[Constraint]:
        for bucket in self._buckets:
            if bucket:
                constraint = bucket.popleft()
                self._queued.discard(id(constraint))
                return constraint
        return None

    def take_dirty(self, constraint: Constraint) -> frozenset[int]:
        return self._dirty.pop(id(constraint), frozenset())

    def clear_queue(self) -> None:
        for bucket in self._buckets:
            bucket.clear()
        self._queued.clear()
        self._dirty.clear()
        self._active = None

    # -- mutations -----------------------------------------------------------

    def remove(self, var: IntVar, value: int) -> None:
        domain = var.domain
        self._save(domain)
        if domain.remove(value):
            self._changed(var)

    def remove_many(self, var: IntVar, values: Iterable[int]) -> None:
        domain = var.domain
        self._save(domain)
        if domain.remove_many(values):
            self._changed(var)

    def remove_above(self, var: IntVar, bound: int) -> None:
        domain = var.domain
        self._save(domain)
        if domain.remove_above(bound):
            self._changed(var)

    def remove_below(self, var: IntVar, bound: int) -> None:
        domain = var.domain
        self._save(domain)
        if domain.remove_below(bound):
            self._changed(var)

    def assign(self, var: IntVar, value: int) -> None:
        domain = var.domain
        self._save(domain)
        if domain.assign(value):
            self._changed(var)


# --------------------------------------------------------------------------- #
# Solver                                                                       #
# --------------------------------------------------------------------------- #

class Solver:
    """Backtracking search over a :class:`Model`.

    Parameters
    ----------
    model:
        The variables and constraints to search over.
    variable_selector / value_selector:
        Branching heuristics; the defaults are first-fail over ascending
        values, the optimizer wraps them in the paper's biggest-first order
        plus :class:`ActivityLastConflict`.
    engine:
        Propagation engine — ``"event"`` (default) wakes only the
        constraints watching a changed variable through the
        priority-bucketed queue; ``"fixpoint"`` re-propagates every
        constraint after every decision (the first-generation reference
        behaviour, retained so equivalence can be property-tested and the
        speedup benchmarked).  Both engines walk identical search trees.

    Effort is bounded per :meth:`solve` call via ``timeout`` (wall-clock)
    and ``node_limit`` (deterministic search-tree cap) — see
    :meth:`solve` for every knob.
    """

    def __init__(
        self,
        model: Model,
        variable_selector: VariableSelector = first_fail,
        value_selector: ValueSelector = ascending_values,
        engine: str = "event",
    ) -> None:
        if engine not in ENGINES:
            raise SolverError(
                f"unknown propagation engine {engine!r}; expected one of {ENGINES}"
            )
        self._model = model
        self._variable_selector = variable_selector
        self._value_selector = value_selector
        self._engine = engine
        watchers: dict[int, list[Constraint]] = {}
        for constraint in model.constraints:
            for var in constraint.variables():
                watchers.setdefault(var.index, []).append(constraint)
        self._watchers = watchers

    @property
    def engine(self) -> str:
        return self._engine

    # -- public API ----------------------------------------------------------

    def solve(
        self,
        minimize: Optional[IntVar] = None,
        timeout: Optional[float] = None,
        solution_limit: Optional[int] = None,
        collect_all: bool = False,
        first_solution_only: bool = False,
        initial_bound: Optional[int] = None,
        node_limit: Optional[int] = None,
        assumptions: Optional[Mapping[IntVar, int]] = None,
    ) -> SearchResult:
        """Run the search.

        Parameters
        ----------
        minimize:
            Objective variable to minimize with branch-and-bound.  ``None``
            turns the search into plain satisfaction.
        timeout:
            Wall-clock budget in seconds; the best solution found so far is
            returned when it expires (the paper uses 40 s in Section 5.1).
        solution_limit:
            Stop after this many solutions (satisfaction mode only).
        collect_all:
            Keep every improving/accepted solution in ``all_solutions``.
        first_solution_only:
            Stop at the first solution even when minimizing — this reproduces
            the behaviour of the FFD baseline ("stops after the first completed
            viable configuration").
        initial_bound:
            Objective value of a solution already known outside the search
            (e.g. a greedy repair of the current placement); only strictly
            better solutions are accepted, so an empty result means the
            incumbent was not improved within the budget.
        node_limit:
            Maximum number of search-tree nodes to expand; like the timeout,
            reaching it returns the best solution so far without an optimality
            proof.  Handy for deterministic effort caps in benchmarks.
        assumptions:
            Root-level forced assignments (warm-start pins): each
            ``var -> value`` is applied once before the initial propagation,
            in iteration order.  An assumption whose value is no longer in
            the variable's domain — or whose application propagates to a
            contradiction — makes the whole search infeasible and an empty
            result is returned immediately (no exception); the repair layer
            reacts by widening its neighbourhood or falling back to the
            monolithic solve.  Note that with assumptions an exhausted
            search only proves optimality *of the assumed subproblem*;
            callers must not surface ``proven_optimal`` as a claim about
            the unpinned problem.
        """
        # The span wraps the whole search so a trace shows the true solve
        # duration; the search counters land on it as span counters and the
        # improving-objective timeline as timestamped span events.  With no
        # active tracer the span is the shared no-op and costs one
        # contextvar read.
        with obs_span("cp.solve", engine=self._engine) as trace_span:
            result = self._solve_impl(
                minimize=minimize,
                timeout=timeout,
                solution_limit=solution_limit,
                collect_all=collect_all,
                first_solution_only=first_solution_only,
                initial_bound=initial_bound,
                node_limit=node_limit,
                assumptions=assumptions,
                trace_span=trace_span,
            )
            stats = result.statistics
            trace_span.inc("nodes", stats.nodes)
            trace_span.inc("backtracks", stats.backtracks)
            trace_span.inc("propagations", stats.propagations)
            trace_span.inc("solutions", stats.solutions)
            trace_span.set(
                proven_optimal=stats.proven_optimal,
                timed_out=stats.timed_out,
            )
        return result

    def _solve_impl(
        self,
        minimize: Optional[IntVar] = None,
        timeout: Optional[float] = None,
        solution_limit: Optional[int] = None,
        collect_all: bool = False,
        first_solution_only: bool = False,
        initial_bound: Optional[int] = None,
        node_limit: Optional[int] = None,
        assumptions: Optional[Mapping[IntVar, int]] = None,
        trace_span: Span = NULL_SPAN,
    ) -> SearchResult:
        event = self._engine == "event"
        store = _Store(self._watchers, event_mode=event)
        stats = SearchStatistics()
        result = SearchResult(best=None, statistics=stats)
        deadline = None if timeout is None else time.monotonic() + timeout
        start = time.monotonic()
        best_cost: Optional[int] = initial_bound if minimize is not None else None
        selector = self._variable_selector
        notify_failure = getattr(selector, "on_failure", None)
        reset_selector = getattr(selector, "reset", None)
        if reset_selector is not None:
            reset_selector()

        def out_of_time() -> bool:
            return deadline is not None and time.monotonic() > deadline

        def snapshot() -> Solution:
            values = {
                var.name: var.value
                for var in self._model.variables
                if var.is_instantiated
            }
            objective = minimize.value if minimize is not None else None
            return Solution(values=values, objective=objective)

        def propagate() -> bool:
            """Drain the propagation queue; False on inconsistency.

            In event mode only the constraints woken by domain events run, and
            they receive the indices of their changed variables; in fixpoint
            mode every constraint is rescheduled and re-propagated from
            scratch (the pre-event-engine reference behaviour).
            """
            try:
                if minimize is not None and best_cost is not None:
                    store.remove_above(minimize, best_cost - 1)
                if not event:
                    for constraint in self._model.constraints:
                        store.schedule(constraint)
                while True:
                    constraint = store.pop_constraint()
                    if constraint is None:
                        return True
                    stats.propagations += 1
                    dirty = store.take_dirty(constraint)
                    if event:
                        store._active = constraint
                        try:
                            constraint.propagate_events(store, dirty)
                        finally:
                            store._active = None
                    else:
                        constraint.propagate(store)
            except InconsistencyError:
                store.clear_queue()
                return False

        def all_instantiated() -> bool:
            return all(var.is_instantiated for var in self._model.variables)

        def record_failure(var: IntVar) -> None:
            stats.backtracks += 1
            var.activity += 1.0
            if notify_failure is not None:
                notify_failure(var)

        def search() -> bool:
            """Return True when the search must stop entirely."""
            nonlocal best_cost
            if node_limit is not None and stats.nodes >= node_limit:
                stats.limit_reached = True
                return True
            stats.nodes += 1
            if out_of_time():
                stats.timed_out = True
                return True

            if all_instantiated():
                stats.solutions += 1
                solution = snapshot()
                if collect_all:
                    result.all_solutions.append(solution)
                if minimize is not None:
                    if best_cost is None or solution.objective < best_cost:
                        best_cost = solution.objective
                        result.best = solution
                        trace_span.event(
                            "improving_solution",
                            objective=solution.objective,
                        )
                    if first_solution_only:
                        return True
                    # keep searching for a strictly better solution
                    return False
                result.best = result.best or solution
                if first_solution_only:
                    return True
                if solution_limit is not None and stats.solutions >= solution_limit:
                    return True
                return False

            var = selector(self._model.variables)
            if var is None:
                # all decision variables instantiated but some auxiliary ones
                # are not: propagation should have fixed them, treat as failure
                return False

            for value in self._value_selector(var):
                if value not in var:
                    continue
                store.push_level()
                try:
                    store.assign(var, value)
                except InconsistencyError:
                    store.clear_queue()
                    store.pop_level()
                    record_failure(var)
                    continue
                if propagate():
                    if search():
                        store.pop_level()
                        return True
                    stats.backtracks += 1
                else:
                    record_failure(var)
                store.pop_level()
                if out_of_time():
                    stats.timed_out = True
                    return True
            return False

        store.push_level()
        try:
            if event:
                for constraint in self._model.constraints:
                    constraint.register(store)
                    store.mark_dirty(
                        constraint, (var.index for var in constraint.variables())
                    )
                    store.schedule(constraint)
            feasible = True
            if assumptions:
                try:
                    for pinned_var, pinned_value in assumptions.items():
                        if pinned_value not in pinned_var:
                            raise InconsistencyError(
                                f"assumption {pinned_var.name}={pinned_value} "
                                "is outside the variable's domain"
                            )
                        store.assign(pinned_var, pinned_value)
                except InconsistencyError:
                    store.clear_queue()
                    feasible = False
            if feasible and propagate():
                search()
        finally:
            # Unwind every level so the model's domains are restored even when
            # a propagator raises something other than InconsistencyError
            # (e.g. an unsupported interior removal on an IntervalDomain).
            while store._levels:
                store.pop_level()

        stats.events = store.events
        stats.elapsed = time.monotonic() - start
        if minimize is not None and not first_solution_only:
            # In minimization mode the search only stops early on timeout or
            # node limit, so exhausting the tree without either proves
            # optimality (of the best solution found, or of the external
            # incumbent when an initial bound was supplied and never improved).
            stats.proven_optimal = (
                not stats.timed_out
                and not stats.limit_reached
                and (result.best is not None or initial_bound is not None)
            )
        return result
