"""A small finite-domain constraint solver (Choco 1.2 replacement).

Provides integer variables, propagation-based constraints (linear sums,
2-dimensional bin packing, table-based cost sums, all-different), depth-first
search with pluggable variable/value ordering heuristics, and branch-and-bound
minimization with a wall-clock timeout — the exact feature set the paper's
optimization of the cluster-wide context switch relies on (Section 4.3).
"""

from .constraints import (
    AllDifferent,
    AllDifferentExcept,
    AllEqual,
    Among,
    Constraint,
    CountInValuesAtMost,
    DisjointValues,
    ElementSum,
    LinearLessEqual,
    NotEqual,
    UsedValuesAtMost,
    VectorPacking,
)
from .domain import Domain, IntervalDomain
from .solver import (
    ENGINES,
    ActivityLastConflict,
    Model,
    SearchResult,
    SearchStatistics,
    Solution,
    Solver,
    ascending_values,
    first_fail,
    prefer_value,
    static_order,
)
from .variables import (
    IntVar,
    make_int_var,
    make_interval_var,
    make_pinned_var,
    value_of,
)

__all__ = [
    "AllDifferent",
    "AllDifferentExcept",
    "AllEqual",
    "Among",
    "Constraint",
    "CountInValuesAtMost",
    "DisjointValues",
    "ElementSum",
    "LinearLessEqual",
    "NotEqual",
    "UsedValuesAtMost",
    "VectorPacking",
    "Domain",
    "IntervalDomain",
    "ENGINES",
    "ActivityLastConflict",
    "Model",
    "SearchResult",
    "SearchStatistics",
    "Solution",
    "Solver",
    "ascending_values",
    "first_fail",
    "prefer_value",
    "static_order",
    "IntVar",
    "make_int_var",
    "make_interval_var",
    "make_pinned_var",
    "value_of",
]
