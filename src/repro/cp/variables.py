"""Integer decision variables."""

from __future__ import annotations

from typing import Iterable, Optional, Union

from .domain import Domain, IntervalDomain


class IntVar:
    """A finite-domain integer variable.

    Every mutation goes through the owning :class:`~repro.cp.solver.Solver`'s
    trail so the search can undo it on backtracking.  The variable itself only
    exposes read access; ``activity`` is a failure counter maintained by the
    search for the activity-based fallback heuristic.
    """

    __slots__ = ("name", "domain", "index", "activity")

    def __init__(
        self,
        name: str,
        values: Union[Iterable[int], Domain, IntervalDomain],
    ):
        self.name = name
        if isinstance(values, (Domain, IntervalDomain)):
            self.domain = values
        else:
            self.domain = Domain(values)
        self.index: int = -1
        #: Number of search failures this variable was involved in.
        self.activity: float = 0.0

    # -- read access ---------------------------------------------------------

    @property
    def is_instantiated(self) -> bool:
        return self.domain.is_singleton

    @property
    def value(self) -> int:
        return self.domain.value

    @property
    def min(self) -> int:
        return self.domain.min

    @property
    def max(self) -> int:
        return self.domain.max

    @property
    def size(self) -> int:
        return len(self.domain)

    def values(self) -> tuple[int, ...]:
        return self.domain.values()

    def raw_values(self) -> tuple[int, ...]:
        return self.domain.raw_values()

    def __contains__(self, value: int) -> bool:
        return value in self.domain

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"IntVar({self.name}, {self.domain!r})"


def make_int_var(name: str, lower: int, upper: int) -> IntVar:
    """Create a variable with the contiguous domain ``[lower, upper]``."""
    if upper < lower:
        raise ValueError(f"{name}: empty interval [{lower}, {upper}]")
    return IntVar(name, range(lower, upper + 1))


def make_interval_var(name: str, lower: int, upper: int) -> IntVar:
    """Create a variable over an :class:`IntervalDomain` — O(1) bound
    tightening for wide contiguous domains such as the objective."""
    if upper < lower:
        raise ValueError(f"{name}: empty interval [{lower}, {upper}]")
    return IntVar(name, IntervalDomain(lower, upper))


def make_pinned_var(name: str, value: int) -> IntVar:
    """Create a frozen (unary-domain) variable instantiated at ``value``.

    The repair engine uses pinned variables for VMs outside the perturbed
    region: they participate in packing/cost propagation like any other
    variable but offer no branching choice, so the search space collapses to
    the dirty region while global constraints still see the full placement.
    """
    return IntVar(name, (value,))


def value_of(var: IntVar, default: Optional[int] = None) -> Optional[int]:
    """Value of an instantiated variable, or ``default``."""
    return var.value if var.is_instantiated else default
