"""Reference (pre-PR-10) partitioner, retained as the differential oracle.

:func:`partition_reference` is the eager implementation of
:func:`repro.scale.partition.partition` exactly as it stood before the lazy
interference-graph rewrite: per-VM domains intersect *every* constraint in
the catalog, domains are welded with O(fleet) ordering comprehensions, and
:func:`_materialize_reference` scopes the catalog with per-zone set
intersections.  It is kept verbatim so the property suite
(``tests/properties/test_partition_equivalence.py``) can pin the lazy
partitioner's output — zone node sets, VM assignment, exactness flag, scoped
constraints — byte-identical to the historical answer on seeded constrained
fleets.

Nothing in the production stack should call this module; it exists for tests
and for the scale benchmark's naive timing lane.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set

from ..constraints.base import PlacementConstraint
from ..model.configuration import Configuration
from ..model.vm import VMState
from .partition import (
    TIGHT_DOMAIN_FRACTION,
    PartitionResult,
    Zone,
    _anchor_node,
    _UnionFind,
    placed_vms,
)


def vm_domains_reference(
    current: Configuration,
    vms: Sequence[str],
    constraints: Sequence[PlacementConstraint],
) -> Dict[str, Optional[Set[str]]]:
    """Eager per-VM domains: every VM asks every constraint (O(VMs x
    constraints) — the pre-index behavior)."""
    node_names = current.node_names
    domains: Dict[str, Optional[Set[str]]] = {}
    for vm_name in vms:
        allowed: Optional[Set[str]] = None
        for constraint in constraints:
            restriction = constraint.allowed_nodes(vm_name, node_names, current)
            if restriction is None:
                continue
            allowed = (
                set(restriction) if allowed is None else allowed & restriction
            )
        domains[vm_name] = allowed
    return domains


def partition_reference(
    current: Configuration,
    target_states: Mapping[str, VMState],
    constraints: Sequence[PlacementConstraint] = (),
    shards: Optional[int] = None,
    tight_fraction: float = TIGHT_DOMAIN_FRACTION,
) -> PartitionResult:
    """The historical eager partitioner (see module docstring)."""
    node_names = list(current.node_names)
    placed = placed_vms(target_states)
    if len(placed) < 2 or len(node_names) < 2:
        return PartitionResult(
            zones=[], method="monolithic", reason="nothing to decompose"
        )

    domains = vm_domains_reference(current, placed, constraints)
    tight_cap = max(1, int(len(node_names) * tight_fraction))
    uf = _UnionFind(node_names)
    touched: Set[str] = set()

    tight: Dict[str, Set[str]] = {}
    welded: Set[frozenset] = set()
    for vm_name in placed:
        domain = domains[vm_name]
        if domain is not None and not domain:
            return PartitionResult(
                zones=[],
                method="monolithic",
                reason=f"VM {vm_name!r} has an empty placement domain",
            )
        if domain is not None and len(domain) <= tight_cap:
            tight[vm_name] = domain
            key = frozenset(domain)
            if key not in welded:
                welded.add(key)
                ordered = [n for n in node_names if n in domain]
                uf.union_all(ordered)
                touched.update(ordered)

    coupled = False
    for constraint in constraints:
        if not constraint.relational:
            continue
        group: Set[str] = {
            node for node in getattr(constraint, "nodes", ()) if node in uf._parent
        }
        members = [vm for vm in constraint.vms if vm in domains]
        if constraint.vms and len(members) < constraint.relational_min_members:
            members = []
        for vm_name in members:
            if vm_name not in tight:
                return PartitionResult(
                    zones=[],
                    method="monolithic",
                    reason=(
                        f"{constraint.label} couples VM {vm_name!r}, whose "
                        "placement domain is unrestricted"
                    ),
                )
            group |= tight[vm_name]
        if len(group) >= 2:
            ordered = [n for n in node_names if n in group]
            uf.union_all(ordered)
            touched.update(ordered)
            coupled = True
        elif group:
            touched.update(group)
            coupled = True

    constrained = bool(touched) or coupled
    if not constrained:
        return _shard_reference(
            current, placed, node_names, shards, domains, constraints
        )

    components: Dict[str, List[str]] = {}
    for node in node_names:
        if node not in touched:
            continue
        components.setdefault(uf.find(node), []).append(node)
    residual = [n for n in node_names if n not in touched]

    skeletons: List[List[str]] = sorted(
        components.values(), key=lambda nodes: node_names.index(nodes[0])
    )
    residual_index: Optional[int] = None
    if residual:
        skeletons.append(residual)
        residual_index = len(skeletons) - 1

    zone_of_node = {
        node: index for index, nodes in enumerate(skeletons) for node in nodes
    }
    zone_vms: List[List[str]] = [[] for _ in skeletons]
    headroom = [
        sum(current.node(n).capacity.memory for n in nodes)
        for nodes in skeletons
    ]

    for vm_name in placed:
        if vm_name in tight:
            index = zone_of_node[next(iter(tight[vm_name]))]
        else:
            domain = domains[vm_name]
            index = None
            anchor = _anchor_node(current, vm_name)
            if anchor is not None and (domain is None or anchor in domain):
                index = zone_of_node[anchor]
            if index is None and residual_index is not None:
                nodes = set(skeletons[residual_index])
                if domain is None or domain & nodes:
                    index = residual_index
            if index is None:
                candidates = [
                    i
                    for i, nodes in enumerate(skeletons)
                    if domain is None or domain & set(nodes)
                ]
                if not candidates:
                    return PartitionResult(
                        zones=[],
                        method="monolithic",
                        reason=(
                            f"VM {vm_name!r} fits no single zone "
                            "(loose domain straddles components)"
                        ),
                    )
                index = max(candidates, key=lambda i: (headroom[i], -i))
        zone_vms[index].append(vm_name)
        headroom[index] -= current.vm(vm_name).memory

    zones = _materialize_reference(skeletons, zone_vms, constraints)
    if len(zones) < 2:
        return PartitionResult(
            zones=zones,
            method="monolithic",
            reason="the interference graph is a single component",
        )
    exact = all(vm_name in tight for vm_name in placed)
    return PartitionResult(zones=zones, method="interference", exact=exact)


def _shard_reference(
    current: Configuration,
    placed: Sequence[str],
    node_names: Sequence[str],
    shards: Optional[int],
    domains: Mapping[str, Optional[Set[str]]],
    constraints: Sequence[PlacementConstraint],
) -> PartitionResult:
    if shards is None or shards < 2:
        return PartitionResult(
            zones=[],
            method="monolithic",
            reason=(
                "no constraint tightly structures the fleet and sharding "
                "is off"
            ),
        )
    count = min(shards, len(node_names))
    base, extra = divmod(len(node_names), count)
    skeletons: List[List[str]] = []
    start = 0
    for index in range(count):
        width = base + (1 if index < extra else 0)
        skeletons.append(list(node_names[start : start + width]))
        start += width

    zone_of_node = {
        node: index for index, nodes in enumerate(skeletons) for node in nodes
    }
    zone_vms: List[List[str]] = [[] for _ in skeletons]
    headroom = [
        sum(current.node(n).capacity.memory for n in nodes)
        for nodes in skeletons
    ]
    shard_sets = [set(nodes) for nodes in skeletons]
    for vm_name in placed:
        domain = domains.get(vm_name)
        anchor = _anchor_node(current, vm_name)
        if anchor is not None and (domain is None or anchor in domain):
            index = zone_of_node[anchor]
        else:
            candidates = [
                i
                for i in range(count)
                if domain is None or domain & shard_sets[i]
            ]
            index = max(candidates, key=lambda i: (headroom[i], -i))
        zone_vms[index].append(vm_name)
        headroom[index] -= current.vm(vm_name).memory

    zones = _materialize_reference(skeletons, zone_vms, constraints)
    if len(zones) < 2:
        return PartitionResult(
            zones=zones,
            method="monolithic",
            reason="sharding left all the VMs in one shard",
        )
    return PartitionResult(zones=zones, method="sharded")


def _materialize_reference(
    skeletons: Sequence[Sequence[str]],
    zone_vms: Sequence[Sequence[str]],
    constraints: Sequence[PlacementConstraint],
) -> List[Zone]:
    zones: List[Zone] = []
    for nodes, vms in zip(skeletons, zone_vms):
        if not vms:
            continue
        vm_set, node_set = set(vms), set(nodes)
        scoped = tuple(
            c
            for c in constraints
            if (set(c.vms) & vm_set)
            or (set(getattr(c, "nodes", ())) & node_set)
        )
        zones.append(
            Zone(
                index=len(zones),
                nodes=tuple(nodes),
                vms=tuple(vms),
                constraints=scoped,
            )
        )
    return zones
