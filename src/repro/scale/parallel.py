"""Solving placement zones concurrently and merging the sub-plans.

:class:`ParallelOptimizer` is a drop-in replacement for
:class:`~repro.core.optimizer.ContextSwitchOptimizer`: it partitions the
instance with :func:`repro.scale.partition.partition`, ships every zone to a
worker (a :class:`concurrent.futures.ProcessPoolExecutor` by default — the CP
search is pure Python, so threads would serialize on the GIL), and merges the
per-zone assignments deterministically into one global target configuration,
planned and priced by the *single* global planner pass.  The merged plan is
therefore exactly as checker-validated as a monolithic one: the planner
re-applies the whole constraint catalog to every intermediate state.

Why this is sound: the partitioner guarantees that zone node sets are
disjoint and that every zone VM's candidate nodes lie inside its zone, so

* per-zone bin packing equals global bin packing (no placement can cross a
  zone boundary), and
* every relational constraint is confined to one zone, whose sub-model
  compiles and enforces it.

Budgets are carved from the global budget: each zone receives a share of the
``node_limit`` search budget proportional to its VM count, and the
wall-clock ``timeout`` bounds the whole solve — zones that genuinely overlap
each get the full timeout, while zones the executor runs sequentially (the
serial executor, or more zones than workers queuing in waves on the pool)
share it, so a partitioned round stays within the per-round time budget the
monolithic engine honours.  When the
partitioner finds no decomposition — or any zone turns out infeasible under
its carved budget — the optimizer transparently falls back to the monolithic
:class:`~repro.core.optimizer.ContextSwitchOptimizer`, so
``engine="partitioned"`` is always safe to request; a post-zone fallback
only gets the wall-clock the zones left over (floored at a small fraction of
the global timeout), so even the worst case stays near the budget instead of
doubling it.

Sub-problem extraction: a zone's sub-configuration contains only the zone's
nodes and VMs.  A zone VM whose current host (or suspend image) lies outside
the zone is represented as *waiting* in the sub-configuration — its true
movement cost is then a constant (the same for every zone node), so the
arg-min placement is unaffected and the exact cost is restored by the global
planning pass.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, fields
from typing import List, Mapping, Optional, Sequence, Tuple, Union

from ..constraints.base import PlacementConstraint
from ..core.cost import plan_cost
from ..core.optimizer import ContextSwitchOptimizer, OptimizationResult
from ..cp import SearchStatistics
from ..model.configuration import Configuration
from ..model.errors import SolverError
from ..model.vm import VMState
from ..obs import Span, Tracer, current_span, current_tracer, span
from .partition import PartitionResult, Zone, partition

#: Executor kinds accepted by :class:`ParallelOptimizer`. ``"serial"`` runs
#: the zones in-process (deterministic, no pickling) — the right choice for
#: tests, doctests and single-core machines where fork and IPC overhead is
#: pure loss.  ``"auto"`` (the default) resolves to ``"process"`` on
#: multi-core hosts and ``"serial"`` on single-core ones, so the partitioned
#: engine never pays for parallelism the hardware cannot deliver.
ZONE_EXECUTORS = ("auto", "process", "serial")

#: Smallest wall-clock budget a sequentially-executed zone can be carved
#: down to, seconds: enough to attempt a first solution, small enough that
#: an exhausted budget fails fast into the monolithic fallback.
_MIN_ZONE_TIMEOUT_S = 0.05

#: Floor of the monolithic fallback's carved budget, as a fraction of the
#: global timeout: when failing zones already burned the whole round, the
#: fallback still needs room to find *a* solution, so the worst-case round
#: is bounded at (1 + this) times the budget rather than doubling it.
_FALLBACK_TIMEOUT_FRACTION = 0.1


def resolve_zone_executor(zone_executor: str) -> str:
    """Resolve ``"auto"`` against the host's CPU count."""
    if zone_executor != "auto":
        return zone_executor
    import os

    return "process" if (os.cpu_count() or 1) > 1 else "serial"


@dataclass
class ZoneTask:
    """Everything a worker needs to solve one zone (picklable).

    ``configuration`` is the zone's extracted *sub*-configuration
    (:func:`build_zone_configuration`), not the full cluster — workers only
    ever see their own zone.
    """

    zone: Zone
    configuration: Configuration
    engine: str = "event"
    timeout: float = 40.0
    node_limit: Optional[int] = None
    use_greedy_bound: bool = True
    first_solution_only: bool = False
    #: VM -> node-name placements frozen by the repair engine (only pins
    #: whose VM *and* node lie inside the zone are carried; a zone whose VMs
    #: are all pinned never reaches a worker — see ``_solve_zones``).
    pinned: Optional[dict[str, str]] = None
    #: True when the parent solve is being traced: the worker records a
    #: local :class:`repro.obs.Tracer` and ships the span tree back in
    #: :attr:`ZoneOutcome.trace` for re-parenting.
    trace: bool = False


@dataclass
class ZoneOutcome:
    """One zone's solve result, shipped back from the worker."""

    index: int
    assignment: Optional[dict[str, str]]
    statistics: SearchStatistics
    elapsed: float
    #: True when the zone was untouched by the repair round: its previous
    #: sub-assignment was reused verbatim without entering a solver.
    reused: bool = False
    #: Serialized worker-side span tree (``Tracer.to_dict()``), present only
    #: when :attr:`ZoneTask.trace` was set and the zone solved in a worker
    #: process; the parent re-parents it into its own timeline.
    trace: Optional[dict] = None


@dataclass
class ZoneReport:
    """Per-zone summary attached to a :class:`PartitionedResult`."""

    index: int
    node_count: int
    vm_count: int
    elapsed: float
    statistics: SearchStatistics
    reused: bool = False


@dataclass
class PartitionedResult(OptimizationResult):
    """An :class:`~repro.core.optimizer.OptimizationResult` plus the
    partition trace: how the instance was decomposed (``partition_method``
    is ``"interference"``, ``"sharded"`` or ``"monolithic"``) and one
    :class:`ZoneReport` per solved zone (empty on a monolithic fallback)."""

    partition_method: str = "monolithic"
    partition_reason: str = ""
    zone_reports: List[ZoneReport] = field(default_factory=list)

    @property
    def zone_count(self) -> int:
        return len(self.zone_reports)


def build_zone_configuration(
    current: Configuration, zone: Zone
) -> Configuration:
    """Extract a zone's sub-configuration: its nodes plus its VMs, keeping
    each VM's current state when the relevant node is inside the zone and
    degrading to *waiting* otherwise (a constant cost offset — see the
    module docstring)."""
    sub = Configuration(nodes=[current.node(name) for name in zone.nodes])
    inside = set(zone.nodes)
    for vm_name in zone.vms:
        sub.add_vm(current.vm(vm_name))
        state = current.state_of(vm_name)
        if state is VMState.RUNNING:
            host = current.location_of(vm_name)
            if host in inside:
                sub.set_running(vm_name, host)
        elif state is VMState.SLEEPING:
            image = current.image_location_of(vm_name)
            if image in inside:
                sub.set_sleeping(vm_name, image)
    return sub


def solve_zone(task: ZoneTask) -> ZoneOutcome:
    """Solve one zone; module-level so process pools can import it.

    Tracing composes with both executors: in-process (serial) zones open a
    ``zone`` span under whatever is already active, while worker processes
    record a local tracer when :attr:`ZoneTask.trace` is set and ship its
    tree back in :attr:`ZoneOutcome.trace` for the parent to re-parent.
    The flag — not the ambient contextvar — decides, because forked
    workers *inherit* the parent's active span and any span recorded on
    that copied tracer would be lost with the worker.
    """
    if task.trace:
        tracer = Tracer(name="zone")
        with tracer.activate() as root:
            # ``remote`` makes the Chrome exporter give this subtree its
            # own track, so concurrent zones render side by side.
            root.set(zone=task.zone.index, remote=True)
            outcome = _solve_zone_traced(task, root)
        outcome.trace = tracer.to_dict()
        return outcome
    with span("zone", zone=task.zone.index) as zone_span:
        return _solve_zone_traced(task, zone_span)


def _solve_zone_traced(task: ZoneTask, zone_span: Span) -> ZoneOutcome:
    zone_span.set(
        vms=len(task.zone.vms),
        nodes=len(task.zone.nodes),
        pinned=len(task.pinned or {}),
    )
    optimizer = ContextSwitchOptimizer(
        timeout=task.timeout,
        engine=task.engine,
        use_greedy_bound=task.use_greedy_bound,
        node_limit=task.node_limit,
        first_solution_only=task.first_solution_only,
    )
    states = {vm: VMState.RUNNING for vm in task.zone.vms}
    started = time.monotonic()
    assignment, statistics, _ = optimizer.search_assignment(
        task.configuration,
        states,
        constraints=task.zone.constraints,
        pinned=task.pinned,
    )
    return ZoneOutcome(
        index=task.zone.index,
        assignment=assignment,
        statistics=statistics,
        elapsed=time.monotonic() - started,
    )


def merge_statistics(
    outcomes: Sequence[ZoneOutcome],
    exact: bool = False,
) -> SearchStatistics:
    """Aggregate per-zone search statistics: effort counters add up, the
    elapsed time is the slowest zone (they run concurrently), and quality
    flags compose conservatively (optimal only if *every* zone proved it
    AND the partition restricted nothing).

    ``exact`` says whether the decomposition restricted nothing
    (:attr:`~repro.scale.partition.PartitionResult.exact`).  Sharded and
    heuristically-anchored partitions are domain restrictions, so even when
    every zone proved its *local* optimum the merged solution is not
    provably the global one — ``proven_optimal`` is cleared.  The default
    fails safe: a merge never claims optimality unless the caller vouches
    for the partition's exactness."""
    merged = SearchStatistics()
    for outcome in outcomes:
        stats = outcome.statistics
        merged.nodes += stats.nodes
        merged.backtracks += stats.backtracks
        merged.solutions += stats.solutions
        merged.propagations += stats.propagations
        merged.events += stats.events
        merged.timed_out = merged.timed_out or stats.timed_out
        merged.limit_reached = merged.limit_reached or stats.limit_reached
    merged.proven_optimal = (
        exact
        and bool(outcomes)
        and all(o.statistics.proven_optimal for o in outcomes)
    )
    merged.elapsed = max((o.statistics.elapsed for o in outcomes), default=0.0)
    return merged


class ParallelOptimizer:
    """Partition the instance into zones and solve them concurrently.

    The constructor mirrors :class:`ContextSwitchOptimizer` and adds the
    scale-out knobs: ``max_workers`` (worker processes, also the default
    shard count of the k-way fallback), ``zone_executor`` (``"auto"`` —
    process pool on multi-core hosts, in-process on single-core ones — or
    an explicit ``"process"`` / ``"serial"``) and ``shards`` (override the
    fallback shard count; ``None`` disables sharding so only
    constraint-induced partitions are used).
    """

    def __init__(
        self,
        timeout: float = 40.0,
        planner_options=None,
        first_solution_only: bool = False,
        engine: str = "event",
        use_greedy_bound: bool = True,
        node_limit: Optional[int] = None,
        max_workers: Optional[int] = None,
        zone_executor: str = "auto",
        shards: int | str | None = "auto",
    ) -> None:
        #: Set first: ``__del__`` runs even when the constructor raises.
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_size = 0
        if zone_executor not in ZONE_EXECUTORS:
            raise SolverError(
                f"unknown zone executor {zone_executor!r}; expected one of "
                f"{ZONE_EXECUTORS}"
            )
        self.timeout = timeout
        self.engine = engine
        self.use_greedy_bound = use_greedy_bound
        self.node_limit = node_limit
        self.first_solution_only = first_solution_only
        self.max_workers = max_workers
        self.zone_executor = zone_executor
        #: Fallback shard count: ``"auto"`` follows ``max_workers`` (4 when
        #: unset), ``None`` disables the k-way sharding fallback entirely,
        #: an int fixes the count.  The persistent worker pool (``_pool``)
        #: is forked lazily on the first partitioned solve and reused across
        #: rounds — see :meth:`close`.
        self.shards = (max_workers or 4) if shards == "auto" else shards
        #: The monolithic optimizer used to plan merged targets and as the
        #: transparent fallback when no partition exists (or a zone fails).
        self.monolithic = ContextSwitchOptimizer(
            timeout=timeout,
            planner_options=planner_options,
            first_solution_only=first_solution_only,
            engine=engine,
            use_greedy_bound=use_greedy_bound,
            node_limit=node_limit,
        )

    # ------------------------------------------------------------------ #

    def optimize(
        self,
        current: Configuration,
        target_states: Mapping[str, VMState],
        vjob_of_vm: Optional[Mapping[str, str]] = None,
        fallback_target: Optional[Configuration] = None,
        constraints: Sequence[PlacementConstraint] = (),
        pinned: Optional[Mapping[str, str]] = None,
    ) -> PartitionedResult:
        """Same contract as
        :meth:`ContextSwitchOptimizer.optimize`, returning a
        :class:`PartitionedResult` with the partition trace attached.

        ``pinned`` composes the repair engine with partitioning: a zone
        whose VMs are all pinned short-circuits to its previous
        sub-assignment verbatim (no solver, no worker), a partially-dirty
        zone solves with its clean VMs pinned, and only pins whose node
        lies inside the zone are honoured (the partitioner anchors VMs to
        their current host's zone, so that is the common case)."""
        started = time.monotonic()
        states = ContextSwitchOptimizer._complete_states(current, target_states)
        with span("partition") as partition_span:
            decomposition = partition(
                current, states, constraints, shards=self.shards
            )
            partition_span.set(
                method=decomposition.method,
                zones=len(decomposition.zones),
                exact=decomposition.exact,
            )
        if not decomposition.is_win:
            return self._monolithic_result(
                current,
                target_states,
                vjob_of_vm,
                fallback_target,
                constraints,
                method="monolithic",
                reason=decomposition.reason,
                pinned=pinned,
            )

        outcomes = self._solve_zones(current, decomposition, pinned=pinned)
        if any(outcome.assignment is None for outcome in outcomes):
            failed = [o.index for o in outcomes if o.assignment is None]
            # The zones already consumed part of the round's budget: the
            # transparent fallback only gets what they left (floored at a
            # fraction of the global timeout so it can still find *a*
            # solution), keeping the whole round near the per-round budget
            # instead of doubling it.
            remaining = max(
                self.timeout * _FALLBACK_TIMEOUT_FRACTION,
                self.timeout - (time.monotonic() - started),
            )
            return self._monolithic_result(
                current,
                target_states,
                vjob_of_vm,
                fallback_target,
                constraints,
                method="monolithic",
                reason=f"zones {failed} found no viable assignment",
                timeout_override=remaining,
                pinned=pinned,
            )

        # Deterministic merge: zones are index-ordered, assignments are
        # disjoint by construction.
        merged: dict[str, str] = {}
        for outcome in sorted(outcomes, key=lambda o: o.index):
            merged.update(outcome.assignment)

        target = ContextSwitchOptimizer._build_target(current, states, merged)
        plan = self.monolithic.planner.build(
            current, target, vjob_of_vm, constraints=constraints
        )
        cost = plan_cost(plan).total
        movement = sum(
            ContextSwitchOptimizer.movement_cost(current, vm, merged[vm])
            for vm in merged
        )
        return PartitionedResult(
            target=target,
            plan=plan,
            cost=cost,
            movement_cost=movement,
            fixed_cost=ContextSwitchOptimizer._fixed_cost(current, states),
            statistics=merge_statistics(outcomes, exact=decomposition.exact),
            partition_method=decomposition.method,
            zone_reports=[
                ZoneReport(
                    index=o.index,
                    node_count=len(decomposition.zones[o.index].nodes),
                    vm_count=len(decomposition.zones[o.index].vms),
                    elapsed=o.elapsed,
                    statistics=o.statistics,
                    reused=o.reused,
                )
                for o in sorted(outcomes, key=lambda o: o.index)
            ],
        )

    # ------------------------------------------------------------------ #

    @staticmethod
    def _zone_pins(
        zone: Zone, pinned: Optional[Mapping[str, str]]
    ) -> dict[str, str]:
        """The pins relevant to one zone: its VMs pinned to its own nodes.
        A pin targeting a node outside the zone is dropped — the VM is then
        solved freely inside the zone, which is always sound (just less
        incremental)."""
        if not pinned:
            return {}
        inside = set(zone.nodes)
        return {
            vm: pinned[vm]
            for vm in zone.vms
            if vm in pinned and pinned[vm] in inside
        }

    def _zone_tasks(
        self,
        current: Configuration,
        zones: Union[PartitionResult, Sequence[Zone]],
        waves: int = 1,
        pins_by_zone: Optional[Mapping[int, dict[str, str]]] = None,
    ) -> List[ZoneTask]:
        """One task per zone, with the global budgets carved: each zone gets
        the ``node_limit`` search budget proportionally to its share of the
        placed VMs, and — when the executor cannot overlap every zone —
        ``1/waves`` of the wall-clock ``timeout`` (``waves`` is how many
        batches the zones queue in), so a partitioned solve never exceeds
        the control loop's per-round time budget.  ``zones`` is a full
        decomposition or the subset of its zones still pending after the
        repair composition reused the fully-pinned ones."""
        zones = getattr(zones, "zones", zones)
        total_vms = sum(zone.size for zone in zones) or 1
        tasks = []
        for zone in zones:
            budget = None
            if self.node_limit is not None:
                budget = max(1, round(self.node_limit * zone.size / total_vms))
            pins = (pins_by_zone or {}).get(zone.index) or None
            tasks.append(
                ZoneTask(
                    zone=zone,
                    configuration=build_zone_configuration(current, zone),
                    engine=self.engine,
                    timeout=max(
                        _MIN_ZONE_TIMEOUT_S, self.timeout / max(1, waves)
                    ),
                    node_limit=budget,
                    use_greedy_bound=self.use_greedy_bound,
                    first_solution_only=self.first_solution_only,
                    pinned=pins,
                )
            )
        return tasks

    def _solve_zones(
        self,
        current: Configuration,
        decomposition: PartitionResult,
        pinned: Optional[Mapping[str, str]] = None,
    ) -> List[ZoneOutcome]:
        # Repair composition: a zone whose VMs are all pinned is untouched
        # by this round — reuse its previous sub-assignment verbatim and
        # never ship it to a worker.  Only the dirty zones are solved, and
        # they keep their clean VMs pinned.
        reused: List[ZoneOutcome] = []
        pending: List[Zone] = []
        pins_by_zone: dict[int, dict[str, str]] = {}
        for zone in decomposition.zones:
            pins = self._zone_pins(zone, pinned)
            if zone.vms and len(pins) == len(zone.vms):
                reused.append(
                    ZoneOutcome(
                        index=zone.index,
                        assignment=dict(pins),
                        statistics=SearchStatistics(),
                        elapsed=0.0,
                        reused=True,
                    )
                )
            else:
                pending.append(zone)
                pins_by_zone[zone.index] = pins
        if not pending:
            return reused

        executor = resolve_zone_executor(self.zone_executor)
        if executor == "serial" or len(pending) == 1:
            # Zones run one after another, so they share the single global
            # wall-clock budget: each gets what the earlier ones left over
            # (a small floor keeps every zone able to at least attempt a
            # first solution; an out-of-budget zone fails fast and triggers
            # the monolithic fallback).
            tasks = self._zone_tasks(current, pending, pins_by_zone=pins_by_zone)
            deadline = time.monotonic() + self.timeout
            outcomes = list(reused)
            for task in tasks:
                task.timeout = max(
                    _MIN_ZONE_TIMEOUT_S, deadline - time.monotonic()
                )
                outcomes.append(solve_zone(task))
            return outcomes
        wanted = self.max_workers or len(pending)
        # More zones than workers queue in ceil(zones/workers) waves on the
        # pool; carve the budget per wave so wall-clock stays <= timeout.
        waves = -(-len(pending) // wanted)
        tasks = self._zone_tasks(
            current, pending, waves=waves, pins_by_zone=pins_by_zone
        )
        if self._pool is not None and self._pool_size < wanted:
            # A later round partitioned into more zones than the cached pool
            # can overlap: respawn rather than silently serializing on an
            # undersized pool for the rest of the loop's lifetime.
            self.close()
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=wanted)
            self._pool_size = wanted
        tracer = current_tracer()
        parent_span = current_span()
        if tracer is not None:
            for task in tasks:
                task.trace = True
        submitted_at = tracer.now() if tracer is not None else 0.0
        outcomes = list(self._pool.map(solve_zone, tasks))
        if tracer is not None and parent_span is not None:
            # Worker clocks are independent; aligning each zone tree to the
            # submit time is approximate (documented by the ``adopted``
            # attribute the graft sets) but keeps concurrent zones visible
            # inside the parent solve span.
            for outcome in sorted(outcomes, key=lambda o: o.index):
                if outcome.trace is not None:
                    tracer.adopt(
                        parent_span, outcome.trace, offset=submitted_at
                    )
        return reused + outcomes

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent; the optimizer
        remains usable — the next partitioned solve respawns it)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelOptimizer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        self.close()

    def _monolithic_result(
        self,
        current: Configuration,
        target_states: Mapping[str, VMState],
        vjob_of_vm: Optional[Mapping[str, str]],
        fallback_target: Optional[Configuration],
        constraints: Sequence[PlacementConstraint],
        method: str,
        reason: str,
        timeout_override: Optional[float] = None,
        pinned: Optional[Mapping[str, str]] = None,
    ) -> PartitionedResult:
        previous = self.monolithic.timeout
        if timeout_override is not None:
            self.monolithic.timeout = timeout_override
        try:
            inner = self.monolithic.optimize(
                current,
                target_states,
                vjob_of_vm=vjob_of_vm,
                fallback_target=fallback_target,
                constraints=constraints,
                pinned=pinned,
            )
        finally:
            self.monolithic.timeout = previous
        values = {
            f.name: getattr(inner, f.name) for f in fields(OptimizationResult)
        }
        return PartitionedResult(
            partition_method=method, partition_reason=reason, **values
        )
