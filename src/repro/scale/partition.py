"""Decomposing a cluster-wide context switch into independent placement zones.

The paper solves one *global* CP model per reconfiguration, which caps the
cluster size the control loop can handle inside its time budget.  This module
splits a :class:`~repro.model.configuration.Configuration` plus a
placement-constraint catalog into **zones** — disjoint node sets, each with
the VMs that must be placed on them — such that per-zone solutions compose
into a valid global placement *by construction*:

* every placed VM's candidate nodes lie inside exactly one zone, and
* the node sets of the zones are pairwise disjoint,

so per-zone bin packing equals global bin packing (no VM can cross a zone
boundary) and every relational constraint is confined to a single zone, where
the zone's own sub-model compiles and enforces it.

Two decomposition strategies are tried in order:

1. **Interference components** — connected components over the "interference
   graph": the *tight* placement domains induced by unary relations
   (``Fence``, ``Among``'s group union, ``Root`` pins) anchor their nodes
   together, and every relational constraint (``Spread``, ``Gather``,
   ``Among``, ``Lonely``, ``MaxOnline``, ``RunningCapacity`` — the catalog's
   :attr:`~repro.constraints.base.PlacementConstraint.relational` face)
   welds the domains of all its placed members (or its watched node set)
   into one component.  Nodes not touched by any constraint form a single
   *residual* zone.  VMs with loose domains (``Ban`` complements, fully free
   VMs) are assigned heuristically — preferring the zone of their current
   host so the zero-cost "stay" option survives, then the residual pool,
   then the zone with the most free capacity.
2. **k-way node sharding** — when no *tight* domain and no relational
   coupling structures the fleet, the node list is split into ``shards``
   contiguous slices and VMs anchor to the shard of their current host /
   suspend image (skipping shards their placement domain does not
   intersect).  Loose unary constraints (``Ban`` complements, wide
   ``Fence``\\ s) still restrict placement, so the catalog is scoped into
   every shard and each zone's sub-model keeps enforcing it.  Sharding is
   a heuristic restriction (cross-shard migrations are forbidden), traded
   for solving ``k`` small models instead of one large one.

When neither strategy yields at least two non-empty zones the result's
``method`` is ``"monolithic"`` and the caller should fall back to the global
:class:`~repro.core.optimizer.ContextSwitchOptimizer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain
from typing import (
    AbstractSet,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..constraints.base import PlacementConstraint
from ..model.configuration import Configuration
from ..model.vm import VMState

#: A unary domain is *tight* (and therefore anchors its nodes into one zone)
#: when it covers at most this fraction of the fleet.  ``Ban`` complements
#: and other near-full domains stay *loose*: forcing their whole domain into
#: one zone would weld almost every node together and kill the partition.
TIGHT_DOMAIN_FRACTION = 0.5


@dataclass(frozen=True)
class Zone:
    """One independent subproblem: a node set, the VMs to place on it, and
    the constraints confined to it.

    Zones produced by :func:`partition` have pairwise disjoint node sets and
    partition the placed VMs; ``constraints`` is the subset of the catalog
    that mentions at least one of the zone's VMs or nodes (relations never
    straddle zones — that is the partitioner's invariant).
    """

    index: int
    nodes: Tuple[str, ...]
    vms: Tuple[str, ...]
    constraints: Tuple[PlacementConstraint, ...] = ()

    @property
    def size(self) -> int:
        return len(self.vms)

    def __repr__(self) -> str:
        return (
            f"Zone({self.index}: {len(self.nodes)} nodes, "
            f"{len(self.vms)} vms, {len(self.constraints)} constraints)"
        )


@dataclass
class PartitionResult:
    """Outcome of :func:`partition`.

    ``method`` is ``"interference"`` (constraint-induced components),
    ``"sharded"`` (the k-way fallback) or ``"monolithic"`` (no decomposition
    found — solve globally); ``reason`` explains a monolithic outcome.

    ``exact`` is True only when the decomposition restricts *nothing*: every
    placed VM's full placement domain lies inside its zone, so per-zone
    optima compose into the global optimum.  Sharded partitions (and
    interference partitions where a loose-domain VM was heuristically
    anchored to a zone) are domain restrictions — their merged solution is
    valid but not provably optimal.
    """

    zones: List[Zone]
    method: str
    reason: str = ""
    exact: bool = False

    @property
    def is_win(self) -> bool:
        """True when solving per zone beats the monolithic solve: at least
        two non-empty zones, so every sub-model is strictly smaller."""
        return len(self.zones) >= 2


class _UnionFind:
    """Union-find over node names (path compression, union by size)."""

    def __init__(self, items: Sequence[str]) -> None:
        self._parent: Dict[str, str] = {item: item for item in items}
        self._size: Dict[str, int] = {item: 1 for item in items}

    def find(self, item: str) -> str:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, left: str, right: str) -> None:
        left, right = self.find(left), self.find(right)
        if left == right:
            return
        if self._size[left] < self._size[right]:
            left, right = right, left
        self._parent[right] = left
        self._size[left] += self._size[right]

    def union_all(self, items: Sequence[str]) -> None:
        first = items[0]
        for item in items[1:]:
            self.union(first, item)


def placed_vms(target_states: Mapping[str, VMState]) -> List[str]:
    """The VMs the optimizer must place: those whose target state is
    RUNNING (declaration order preserved for determinism)."""
    return [
        name
        for name, state in target_states.items()
        if state is VMState.RUNNING
    ]


def _membership_index(
    constraints: Sequence[PlacementConstraint],
) -> Tuple[Dict[str, List[PlacementConstraint]], List[PlacementConstraint]]:
    """Index the catalog by declared VM membership.

    Returns ``(by_vm, universal)``: ``by_vm`` maps each VM name to the
    constraints that declare it a member (in catalog order), ``universal``
    holds the constraints with no declared members (``MaxOnline``,
    ``RunningCapacity``…), which every VM must still ask.

    This relies on the catalog contract that a constraint with declared
    ``vms`` returns ``None`` from ``allowed_nodes`` for non-members (every
    :class:`~repro.constraints.base.VMGroupConstraint` gates on ``vm_set``),
    so non-members never need to ask it — the lazy domains below are exact,
    which the differential suite pins against
    :func:`repro.scale.reference.vm_domains_reference`.
    """
    by_vm: Dict[str, List[PlacementConstraint]] = {}
    universal: List[PlacementConstraint] = []
    for constraint in constraints:
        if constraint.vms:
            members: Iterable[str] = getattr(
                constraint, "vm_set", None
            ) or set(constraint.vms)
            for vm_name in members:
                by_vm.setdefault(vm_name, []).append(constraint)
        else:
            universal.append(constraint)
    return by_vm, universal


_NO_CONSTRAINTS: Tuple[PlacementConstraint, ...] = ()


#: Per-call memo sentinel for "not computed yet" (``None`` is a valid value:
#: it means "no restriction").
_UNSET = object()


def vm_domains(
    current: Configuration,
    vms: Sequence[str],
    constraints: Sequence[PlacementConstraint],
) -> Dict[str, Optional[AbstractSet[str]]]:
    """The unary placement domain of every VM in ``vms``: the intersection
    of each constraint's ``allowed_nodes``, or ``None`` when unrestricted.

    Lazy on two axes: each VM only asks the constraints it is a member of
    (plus the member-less universal ones) via :func:`_membership_index` —
    O(total memberships), not O(VMs x constraints) — and constraints whose
    restriction is VM-independent
    (:attr:`~repro.constraints.base.PlacementConstraint.uniform_restriction`)
    compute it *once* per call; their members then share one frozen domain
    object instead of each rebuilding an O(fleet) set.  Callers must treat
    the returned domains as read-only (the partitioner only ever reads
    them)."""
    node_names = current.node_names
    by_vm, universal = _membership_index(constraints)
    domains: Dict[str, Optional[AbstractSet[str]]] = {}
    memo: Dict[int, Optional[AbstractSet[str]]] = {}
    for vm_name in vms:
        allowed: Optional[AbstractSet[str]] = None
        for constraint in chain(
            by_vm.get(vm_name, _NO_CONSTRAINTS), universal
        ):
            restriction: Optional[AbstractSet[str]]
            if constraint.uniform_restriction:
                cached = memo.get(id(constraint), _UNSET)
                if cached is _UNSET:
                    computed = constraint.allowed_nodes(
                        vm_name, node_names, current
                    )
                    restriction = (
                        None if computed is None else frozenset(computed)
                    )
                    memo[id(constraint)] = restriction
                else:
                    restriction = cached  # type: ignore[assignment]
            else:
                restriction = constraint.allowed_nodes(
                    vm_name, node_names, current
                )
            if restriction is None:
                continue
            allowed = (
                restriction if allowed is None else allowed & restriction
            )
        domains[vm_name] = allowed
    return domains


def _anchor_node(current: Configuration, vm_name: str) -> Optional[str]:
    """The node whose zone keeps the VM's cheapest placement available: its
    current host (running) or its suspend image's host (sleeping)."""
    state = current.state_of(vm_name)
    if state is VMState.RUNNING:
        return current.location_of(vm_name)
    if state is VMState.SLEEPING:
        return current.image_location_of(vm_name)
    return None


def partition(
    current: Configuration,
    target_states: Mapping[str, VMState],
    constraints: Sequence[PlacementConstraint] = (),
    shards: Optional[int] = None,
    tight_fraction: float = TIGHT_DOMAIN_FRACTION,
) -> PartitionResult:
    """Split a context-switch instance into independent placement zones.

    ``target_states`` must be *complete* (one entry per VM — the caller
    normally derives it with the optimizer's ``keepVMState`` completion);
    ``shards`` enables the k-way fallback when no constraint structures the
    fleet.  See the module docstring for the decomposition rules.
    """
    node_names = list(current.node_names)
    placed = placed_vms(target_states)
    if len(placed) < 2 or len(node_names) < 2:
        return PartitionResult(
            zones=[], method="monolithic", reason="nothing to decompose"
        )

    domains = vm_domains(current, placed, constraints)
    tight_cap = max(1, int(len(node_names) * tight_fraction))
    uf = _UnionFind(node_names)
    touched: Set[str] = set()
    # Registration position of every node, so domains weld in O(d log d)
    # instead of an O(fleet) ordering scan per domain.
    node_pos = {name: index for index, name in enumerate(node_names)}

    # Tight unary domains anchor their nodes together: the VM may need any
    # of them, so they must end up in a single zone.  Whole groups share one
    # domain object-for-object (a Fence restricts every member identically),
    # so identical domains are only welded once.
    tight: Dict[str, AbstractSet[str]] = {}
    welded: Set[frozenset] = set()
    for vm_name in placed:
        domain = domains[vm_name]
        if domain is not None and not domain:
            return PartitionResult(
                zones=[],
                method="monolithic",
                reason=f"VM {vm_name!r} has an empty placement domain",
            )
        if domain is not None and len(domain) <= tight_cap:
            tight[vm_name] = domain
            key = frozenset(domain)
            if key not in welded:
                welded.add(key)
                ordered = sorted(domain, key=node_pos.__getitem__)
                uf.union_all(ordered)
                touched.update(ordered)

    # Relational constraints weld the domains of all their placed members
    # (or their watched node set) into one component.
    coupled = False
    for constraint in constraints:
        if not constraint.relational:
            continue
        group: Set[str] = {
            node for node in getattr(constraint, "nodes", ()) if node in uf._parent
        }
        members = [vm for vm in constraint.vms if vm in domains]
        if constraint.vms and len(members) < constraint.relational_min_members:
            members = []
        for vm_name in members:
            if vm_name not in tight:
                return PartitionResult(
                    zones=[],
                    method="monolithic",
                    reason=(
                        f"{constraint.label} couples VM {vm_name!r}, whose "
                        "placement domain is unrestricted"
                    ),
                )
            group |= tight[vm_name]
        if len(group) >= 2:
            ordered = sorted(group, key=node_pos.__getitem__)
            uf.union_all(ordered)
            touched.update(ordered)
            coupled = True
        elif group:
            touched.update(group)
            coupled = True

    constrained = bool(touched) or coupled
    if not constrained:
        return _shard(current, placed, node_names, shards, domains, constraints)

    # Components over the touched nodes; everything untouched pools into a
    # single residual zone.
    components: Dict[str, List[str]] = {}
    for node in sorted(touched, key=node_pos.__getitem__):
        components.setdefault(uf.find(node), []).append(node)
    residual = [n for n in node_names if n not in touched]

    # Zone skeletons in deterministic order (first node appearance).
    skeletons: List[List[str]] = sorted(
        components.values(), key=lambda nodes: node_pos[nodes[0]]
    )
    residual_index: Optional[int] = None
    if residual:
        skeletons.append(residual)
        residual_index = len(skeletons) - 1

    zone_of_node = {
        node: index for index, nodes in enumerate(skeletons) for node in nodes
    }
    zone_sets = [set(nodes) for nodes in skeletons]
    zone_vms: List[List[str]] = [[] for _ in skeletons]
    headroom = [
        sum(current.node(n).capacity.memory for n in nodes)
        for nodes in skeletons
    ]

    for vm_name in placed:
        if vm_name in tight:
            index = zone_of_node[next(iter(tight[vm_name]))]
        else:
            domain = domains[vm_name]  # None or a loose restriction
            index = None
            anchor = _anchor_node(current, vm_name)
            if anchor is not None and (domain is None or anchor in domain):
                index = zone_of_node[anchor]
            if index is None and residual_index is not None:
                if domain is None or domain & zone_sets[residual_index]:
                    index = residual_index
            if index is None:
                # Most-headroom zone whose nodes intersect the domain.
                candidates = [
                    i
                    for i in range(len(skeletons))
                    if domain is None or domain & zone_sets[i]
                ]
                if not candidates:
                    return PartitionResult(
                        zones=[],
                        method="monolithic",
                        reason=(
                            f"VM {vm_name!r} fits no single zone "
                            "(loose domain straddles components)"
                        ),
                    )
                index = max(candidates, key=lambda i: (headroom[i], -i))
        zone_vms[index].append(vm_name)
        headroom[index] -= current.vm(vm_name).memory

    zones = _materialize(skeletons, zone_vms, constraints)
    if len(zones) < 2:
        return PartitionResult(
            zones=zones,
            method="monolithic",
            reason="the interference graph is a single component",
        )
    # Exact only when nothing was restricted: every placed VM is tight, so
    # its whole domain lies inside its zone and per-zone optima compose into
    # the global optimum.  A heuristically anchored loose VM is a domain
    # restriction — the merged solution stays valid but loses optimality.
    exact = all(vm_name in tight for vm_name in placed)
    return PartitionResult(zones=zones, method="interference", exact=exact)


def _shard(
    current: Configuration,
    placed: Sequence[str],
    node_names: Sequence[str],
    shards: Optional[int],
    domains: Mapping[str, Optional[AbstractSet[str]]],
    constraints: Sequence[PlacementConstraint],
) -> PartitionResult:
    """k-way node-sharding fallback for fleets without tight structure.

    Loose unary constraints (``Ban`` complements, wide ``Fence``\\ s) still
    restrict placement even though they never weld zones: VMs only anchor to
    shards their domain intersects, and the catalog is scoped into every
    shard so each zone's sub-model keeps enforcing it.  Sharding is never
    *exact* — cross-shard migrations are forbidden by construction.
    """
    if shards is None or shards < 2:
        return PartitionResult(
            zones=[],
            method="monolithic",
            reason=(
                "no constraint tightly structures the fleet and sharding "
                "is off"
            ),
        )
    count = min(shards, len(node_names))
    base, extra = divmod(len(node_names), count)
    skeletons: List[List[str]] = []
    start = 0
    for index in range(count):
        width = base + (1 if index < extra else 0)
        skeletons.append(list(node_names[start : start + width]))
        start += width

    zone_of_node = {
        node: index for index, nodes in enumerate(skeletons) for node in nodes
    }
    zone_vms: List[List[str]] = [[] for _ in skeletons]
    headroom = [
        sum(current.node(n).capacity.memory for n in nodes)
        for nodes in skeletons
    ]
    shard_sets = [set(nodes) for nodes in skeletons]
    for vm_name in placed:
        domain = domains.get(vm_name)
        anchor = _anchor_node(current, vm_name)
        if anchor is not None and (domain is None or anchor in domain):
            index = zone_of_node[anchor]
        else:
            # Most-headroom shard whose nodes intersect the domain; a
            # non-empty domain always intersects some shard (the shards
            # cover the whole fleet).
            candidates = [
                i
                for i in range(count)
                if domain is None or domain & shard_sets[i]
            ]
            index = max(candidates, key=lambda i: (headroom[i], -i))
        zone_vms[index].append(vm_name)
        headroom[index] -= current.vm(vm_name).memory

    zones = _materialize(skeletons, zone_vms, constraints)
    if len(zones) < 2:
        return PartitionResult(
            zones=zones,
            method="monolithic",
            reason="sharding left all the VMs in one shard",
        )
    return PartitionResult(zones=zones, method="sharded")


def _materialize(
    skeletons: Sequence[Sequence[str]],
    zone_vms: Sequence[Sequence[str]],
    constraints: Sequence[PlacementConstraint],
) -> List[Zone]:
    """Build the final zones, dropping empty ones and scoping the catalog:
    a constraint lands in every zone containing one of its VMs or nodes.

    Scoping routes each constraint through per-VM / per-node zone maps —
    O(total memberships + zones) — instead of intersecting every constraint's
    member set against every zone.  Per-zone constraint order stays catalog
    order, so the scoped tuples are byte-identical to the eager reference."""
    kept = [
        (nodes, vms) for nodes, vms in zip(skeletons, zone_vms) if vms
    ]
    zone_of_vm = {
        vm: index for index, (_, vms) in enumerate(kept) for vm in vms
    }
    zone_of_node = {
        node: index for index, (nodes, _) in enumerate(kept) for node in nodes
    }
    scoped: List[List[PlacementConstraint]] = [[] for _ in kept]
    for constraint in constraints:
        hit = {
            zone_of_vm[vm] for vm in constraint.vms if vm in zone_of_vm
        }
        hit.update(
            zone_of_node[node]
            for node in getattr(constraint, "nodes", ())
            if node in zone_of_node
        )
        for index in sorted(hit):
            scoped[index].append(constraint)
    return [
        Zone(
            index=index,
            nodes=tuple(nodes),
            vms=tuple(vms),
            constraints=tuple(scoped[index]),
        )
        for index, (nodes, vms) in enumerate(kept)
    ]
