"""Scale-out: partitioned parallel solving and campaign orchestration.

The package has three layers (see ``docs/PERFORMANCE.md`` for the guide and
``docs/API_REFERENCE.md`` for the symbol index):

1. **Partitioner** (:mod:`repro.scale.partition`) — split a configuration
   plus its placement-constraint catalog into independent placement zones
   via connected components over the interference graph (tight ``Fence``/
   ``Among`` domains, relational ``Spread``/``Gather``/``Lonely``/
   ``MaxOnline``/``RunningCapacity`` couplings), with a k-way node-sharding
   fallback for unconstrained fleets.  Independence holds by construction:
   zone node sets are disjoint and every zone VM's candidates stay inside
   its zone, so per-zone solutions compose into a valid global placement.
2. **Parallel optimizer** (:mod:`repro.scale.parallel`) — solve the zones
   concurrently on a process pool with budgets carved from the global
   budget, merge the assignments deterministically, and run one global
   planner pass; falls back to the monolithic optimizer whenever
   partitioning yields no win.  Reachable from the facade as
   ``Scenario(engine="partitioned")``.
3. **Campaign runner** (:mod:`repro.scale.campaign`) — execute grids of
   scenarios (policies × fleet sizes × fault schedules × seeds) across
   worker processes with a resumable JSON-lines store and aggregation into
   the :mod:`repro.analysis.report` tables.

Quickstart::

    from repro import Scenario

    result = Scenario(
        nodes=nodes, workloads=workloads,
        policy="consolidation", engine="partitioned",
    ).run()
"""

from .campaign import (
    CampaignPoint,
    CampaignResult,
    CampaignSpec,
    CampaignStore,
    execute_point,
    run_campaign,
    summarize_run,
)
from .parallel import (
    ParallelOptimizer,
    PartitionedResult,
    ZoneOutcome,
    ZoneReport,
    ZoneTask,
    build_zone_configuration,
    merge_statistics,
    solve_zone,
)
from .partition import (
    PartitionResult,
    Zone,
    partition,
    placed_vms,
    vm_domains,
)

__all__ = [
    "Zone",
    "PartitionResult",
    "partition",
    "placed_vms",
    "vm_domains",
    "ParallelOptimizer",
    "PartitionedResult",
    "ZoneTask",
    "ZoneOutcome",
    "ZoneReport",
    "build_zone_configuration",
    "solve_zone",
    "merge_statistics",
    "CampaignPoint",
    "CampaignSpec",
    "CampaignStore",
    "CampaignResult",
    "run_campaign",
    "execute_point",
    "summarize_run",
]
