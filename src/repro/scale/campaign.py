"""Campaign orchestration: grids of scenarios across worker processes.

A *campaign* executes a grid of :class:`~repro.api.scenario.Scenario`\\ s —
policies × fleet sizes × fault schedules × seeds — and persists one summary
record per completed run into a JSON-lines store, so a crashed or interrupted
campaign resumes where it left off instead of re-running finished points.

The caller supplies a *scenario factory*: a callable turning one
:class:`CampaignPoint` into a freshly-built scenario (fresh workloads per
run — vjob state is mutated by a run, so scenarios can never be shared).
With the default ``executor="process"`` the factory must be picklable (a
module-level function, or :func:`functools.partial` over one); use
``executor="serial"`` for closures and debugging.

Example::

    def make_scenario(point):
        nodes = make_working_nodes(point.fleet, cpu_capacity=2,
                                   memory_capacity=3584)
        workloads = paper_experiment_vjobs(count=point.fleet // 2,
                                           vm_count=9, seed=point.seed)
        return Scenario(nodes=nodes, workloads=workloads,
                        policy=point.policy, optimizer_timeout=2.0)

    spec = CampaignSpec(
        scenario_factory=make_scenario,
        policies=("consolidation", "ffd"),
        fleet_sizes=(8, 16),
        seeds=(0, 1, 2),
    )
    campaign = run_campaign(spec, store_path="campaign.jsonl")
    print(campaign.table())          # aggregated analysis.report table

The aggregation feeds the existing :mod:`repro.analysis.report` machinery:
:meth:`CampaignResult.table` renders the grouped means with the same
plain-text tables the figure benchmarks use.
"""

from __future__ import annotations

import json
import statistics
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from ..analysis.report import campaign_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.results import RunResult
    from ..api.scenario import Scenario

#: Executor kinds accepted by :func:`run_campaign`.
CAMPAIGN_EXECUTORS = ("process", "serial")


@dataclass(frozen=True)
class CampaignPoint:
    """One cell of the campaign grid."""

    policy: str
    fleet: int
    faults: str = "none"
    seed: int = 0

    @property
    def key(self) -> str:
        """Stable store key of the point (what resume deduplicates on)."""
        return f"{self.policy}|{self.fleet}|{self.faults}|{self.seed}"


@dataclass
class CampaignSpec:
    """The declarative grid: a scenario factory plus its axes.

    ``fault_labels`` are opaque labels the factory interprets (e.g. keys
    into a dict of :class:`~repro.sim.faults.FaultSchedule`\\ s); the default
    single ``"none"`` label keeps fault-free campaigns unceremonious.
    """

    scenario_factory: Callable[[CampaignPoint], "Scenario"]
    policies: Sequence[str]
    fleet_sizes: Sequence[int]
    fault_labels: Sequence[str] = ("none",)
    seeds: Sequence[int] = (0,)

    def points(self) -> List[CampaignPoint]:
        """The full grid in deterministic nesting order (policy → fleet →
        faults → seed)."""
        return [
            CampaignPoint(policy=policy, fleet=fleet, faults=faults, seed=seed)
            for policy in self.policies
            for fleet in self.fleet_sizes
            for faults in self.fault_labels
            for seed in self.seeds
        ]


def summarize_run(
    point: CampaignPoint, result: "RunResult", seconds: float
) -> Dict[str, object]:
    """Flatten one run into the JSON-safe record the store persists: the
    grid coordinates, the canonical :meth:`RunResult.summary` headline
    metrics, and the wall-clock runtime."""
    record: Dict[str, object] = {
        "key": point.key,
        "policy": point.policy,
        "fleet": point.fleet,
        "faults": point.faults,
        "seed": point.seed,
    }
    record.update(result.summary())
    record["runtime_seconds"] = round(seconds, 3)
    return record


class CampaignStore:
    """Append-only JSON-lines store of completed campaign points.

    One JSON object per line; malformed trailing lines (a run killed
    mid-write) are skipped on load, so a resumed campaign simply re-runs
    the interrupted point.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def load(self) -> Dict[str, Dict[str, object]]:
        """Completed records keyed by :attr:`CampaignPoint.key`."""
        records: Dict[str, Dict[str, object]] = {}
        if not self.path.exists():
            return records
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            key = record.get("key")
            if isinstance(key, str):
                records[key] = record
        return records

    def append(self, record: Dict[str, object]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def execute_point(
    args: tuple[Callable[[CampaignPoint], "Scenario"], CampaignPoint],
) -> Dict[str, object]:
    """Build and run one grid point; module-level so process pools can
    import it."""
    factory, point = args
    started = time.monotonic()
    result = factory(point).run()
    return summarize_run(point, result, time.monotonic() - started)


@dataclass
class CampaignResult:
    """Every record of a campaign (resumed ones included), grid-ordered."""

    records: List[Dict[str, object]] = field(default_factory=list)
    resumed: int = 0

    def aggregate(self) -> List[Dict[str, object]]:
        """Group the records by (policy, fleet, faults) and average the
        numeric series over the seeds — the rows of :meth:`table`."""
        groups: Dict[tuple, List[Dict[str, object]]] = {}
        for record in self.records:
            key = (record["policy"], record["fleet"], record["faults"])
            groups.setdefault(key, []).append(record)
        rows = []
        for (policy, fleet, faults), members in groups.items():
            def mean(field_name: str) -> float:
                return statistics.fmean(
                    float(m[field_name]) for m in members  # type: ignore[arg-type]
                )

            rows.append(
                {
                    "policy": policy,
                    "fleet": fleet,
                    "faults": faults,
                    "runs": len(members),
                    "mean_makespan": round(mean("makespan"), 1),
                    "mean_switches": round(mean("switches"), 2),
                    "mean_switch_cost": round(mean("total_switch_cost"), 1),
                    "sla_violations": sum(
                        int(m["sla_violations"]) for m in members
                    ),
                    "lost_vjobs": sum(int(m["lost_vjobs"]) for m in members),
                    "mean_runtime_seconds": round(
                        mean("runtime_seconds"), 2
                    ),
                }
            )
        return rows

    def table(self) -> str:
        """Aggregated plain-text table via :mod:`repro.analysis.report`."""
        return campaign_table(self.aggregate())


def run_campaign(
    spec: CampaignSpec,
    store_path: Optional[str | Path] = None,
    max_workers: Optional[int] = None,
    executor: str = "process",
    resume: bool = True,
) -> CampaignResult:
    """Execute the grid, persisting each completed point to the store.

    Points already present in the store are skipped when ``resume`` is true
    (pass ``resume=False`` to re-run everything; the store is then
    truncated).  Without a ``store_path`` the campaign runs entirely in
    memory.
    """
    if executor not in CAMPAIGN_EXECUTORS:
        raise ValueError(
            f"unknown campaign executor {executor!r}; expected one of "
            f"{CAMPAIGN_EXECUTORS}"
        )
    store = CampaignStore(store_path) if store_path is not None else None
    done: Dict[str, Dict[str, object]] = {}
    if store is not None:
        if resume:
            done = store.load()
        elif store.path.exists():
            store.path.unlink()

    points = spec.points()
    pending = [p for p in points if p.key not in done]
    tasks = [(spec.scenario_factory, point) for point in pending]
    # Records are appended to the store as each point completes — that is
    # what makes an interrupted campaign resumable: everything finished
    # before a crash (or a failing point) survives on disk.
    fresh: List[Dict[str, object]] = []

    def _collect(record: Dict[str, object]) -> None:
        if store is not None:
            store.append(record)
        fresh.append(record)

    if executor == "serial" or len(tasks) <= 1:
        for task in tasks:
            _collect(execute_point(task))
    else:
        workers = min(max_workers or len(tasks), len(tasks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(execute_point, task) for task in tasks]
            failure: Optional[BaseException] = None
            for future in as_completed(futures):
                try:
                    record = future.result()
                except Exception as error:
                    # Keep draining: points finished by other workers must
                    # reach the store before the failure propagates, or a
                    # resume would re-run them.  Only the first failure is
                    # re-raised (later ones are usually its echoes, e.g. a
                    # broken pool failing every remaining future).
                    if failure is None:
                        failure = error
                    continue
                _collect(record)
            if failure is not None:
                raise failure

    by_key = dict(done)
    for record in fresh:
        by_key[str(record["key"])] = record
    ordered = [by_key[p.key] for p in points if p.key in by_key]
    return CampaignResult(records=ordered, resumed=len(done))
