"""Chrome trace-event export — view a trace in Perfetto.

:func:`to_chrome_trace` converts a tracer document
(:meth:`repro.obs.Tracer.to_dict`, a bare span dict, or a ``RunResult``
JSON document carrying a ``"trace"`` key) into the Chrome trace-event
JSON object format (``{"traceEvents": [...]}``): one complete event
(``"ph": "X"``) per span with microsecond ``ts``/``dur``, one instant
event (``"ph": "i"``) per span event.  The output loads directly in
https://ui.perfetto.dev or ``chrome://tracing``.

Subtrees recorded in worker processes (adopted spans, marked with a
``remote`` attribute by ``repro.scale``) get their own ``tid`` so
Perfetto renders concurrent zone solves as parallel tracks instead of
rejecting overlapping events on one track.

:func:`validate_chrome_trace` is the schema/nesting check used by the
test suite and ``tools/trace_smoke.py``: it verifies required keys,
phase codes, non-negative timings, and that per-track complete events
properly nest.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .tracer import Span

__all__ = ["to_chrome_trace", "validate_chrome_trace"]

#: Seconds -> microseconds (the trace-event unit).
_US = 1_000_000.0


def _extract_root(trace: Dict[str, Any]) -> Dict[str, Any]:
    """Accept a tracer document, a RunResult document, or a bare span."""
    if "trace" in trace and isinstance(trace["trace"], dict):
        trace = trace["trace"]
    if "root" in trace and isinstance(trace["root"], dict):
        return trace["root"]
    if "name" in trace and "start" in trace:
        return trace
    raise ValueError(
        "not a trace document: expected a Tracer.to_dict() payload, a "
        "bare span dict, or a RunResult dict with a 'trace' key"
    )


def to_chrome_trace(
    trace: Dict[str, Any],
    process_name: str = "repro",
    pid: int = 1,
) -> Dict[str, Any]:
    """Convert a trace document to Chrome trace-event JSON."""
    root = Span.from_dict(_extract_root(trace))
    # Open spans (live snapshots) clamp to the latest timestamp seen so
    # every exported event has a duration.
    horizon = 0.0
    for node in root.walk():
        horizon = max(horizon, node.start, node.end or 0.0)
        for event in node.events:
            horizon = max(horizon, event.get("at", 0.0))

    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    next_tid = [1]

    def emit(node: Span, tid: int) -> None:
        if node.attributes.get("remote"):
            tid = next_tid[0] = next_tid[0] + 1
        end = node.end if node.end is not None else horizon
        args: Dict[str, Any] = {}
        args.update(node.attributes)
        args.update(node.counters)
        events.append(
            {
                "ph": "X",
                "name": node.name,
                "pid": pid,
                "tid": tid,
                "ts": node.start * _US,
                "dur": max(0.0, end - node.start) * _US,
                "args": args,
            }
        )
        for event in node.events:
            events.append(
                {
                    "ph": "i",
                    "name": event["name"],
                    "pid": pid,
                    "tid": tid,
                    "ts": event.get("at", node.start) * _US,
                    "s": "t",
                    "args": dict(event.get("attributes", {})),
                }
            )
        for child in node.children:
            emit(child, tid)

    emit(root, 1)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(document: Dict[str, Any]) -> List[str]:
    """Return one error string per schema or nesting violation (empty
    when the document is a well-formed Chrome trace)."""
    errors: List[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    if not events:
        errors.append("traceEvents is empty")

    spans_by_track: Dict[Any, List[Dict[str, Any]]] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event {index}: not an object")
            continue
        phase = event.get("ph")
        if phase not in ("X", "i", "M"):
            errors.append(f"event {index}: unknown phase {phase!r}")
            continue
        for key in ("name", "pid", "tid"):
            if key not in event:
                errors.append(f"event {index}: missing {key!r}")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"event {index}: bad ts {ts!r}")
            continue
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"event {index}: bad dur {dur!r}")
                continue
            track = (event.get("pid"), event.get("tid"))
            spans_by_track.setdefault(track, []).append(event)

    # Complete events on one track must properly nest: sorted by start
    # (outermost first), each event lies within every enclosing one.
    for track, track_events in sorted(spans_by_track.items()):
        ordered = sorted(
            track_events, key=lambda e: (e["ts"], -(e["ts"] + e["dur"]))
        )
        stack: List[Dict[str, Any]] = []
        for event in ordered:
            start, end = event["ts"], event["ts"] + event["dur"]
            while stack and start >= stack[-1]["ts"] + stack[-1]["dur"]:
                stack.pop()
            if stack:
                parent_end = stack[-1]["ts"] + stack[-1]["dur"]
                # Tolerate float rounding at the microsecond scale.
                if end > parent_end + 1e-3:
                    errors.append(
                        f"track {track}: span {event['name']!r} "
                        f"[{start}, {end}] overflows enclosing "
                        f"{stack[-1]['name']!r} [{stack[-1]['ts']}, "
                        f"{parent_end}]"
                    )
            stack.append(event)
    return errors
