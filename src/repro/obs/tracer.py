"""Hierarchical span tracer — zero-dependency, contextvar-scoped.

The tracer answers "where did this reconfiguration round spend its
time?" without pulling in an OpenTelemetry stack: a :class:`Tracer`
owns a tree of :class:`Span` objects, the *active* ``(tracer, span)``
pair lives in a :mod:`contextvars` variable, and the module-level
:func:`span` context manager opens a child under whatever is active —
or returns a shared no-op span when tracing is off, so instrumented
code paths cost a single contextvar read when no tracer is installed.

Timestamps are seconds since the tracer started, taken from an
injectable monotonic clock (:func:`time.perf_counter` by default; tests
and doctests inject counters for determinism).  The wall-clock epoch of
the start is recorded once (``started_at``) so exported traces can be
aligned with log lines.  All tree mutation happens under an
:class:`threading.RLock` so the operator daemon's HTTP threads can
snapshot a live trace (:meth:`Tracer.to_dict`) while the control loop
is still writing to it.

``contextvars`` do **not** propagate into new threads or worker
processes: a thread that should trace must enter
:meth:`Tracer.activate` itself (the control loop does), and worker
processes build a local :class:`Tracer` whose serialized tree the
parent re-parents with :meth:`Tracer.adopt`.
"""

from __future__ import annotations

import threading
import time
from contextvars import ContextVar
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "Span",
    "Tracer",
    "span",
    "current_span",
    "current_tracer",
]

#: The active ``(tracer, span)`` pair for the current context, or ``None``
#: when tracing is off.  One variable (not two) so the pair is swapped
#: atomically.
_ACTIVE: ContextVar[Optional[Tuple["Tracer", "Span"]]] = ContextVar(
    "repro_obs_active", default=None
)


class Span:
    """One timed node of the trace tree.

    ``start``/``end`` are seconds relative to the owning tracer's origin
    (``end is None`` while the span is open).  ``attributes`` are
    structured facts set once (``set``), ``counters`` are additive
    integers (``inc``), and ``events`` are timestamped point-in-time
    markers (``event``) such as the solver's improving-objective
    timeline.
    """

    __slots__ = (
        "name",
        "start",
        "end",
        "attributes",
        "counters",
        "events",
        "children",
        "_tracer",
    )

    def __init__(self, name: str, start: float = 0.0) -> None:
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = {}
        self.counters: Dict[str, int] = {}
        self.events: List[Dict[str, Any]] = []
        self.children: List["Span"] = []
        self._tracer: Optional["Tracer"] = None

    # -- recording -------------------------------------------------------

    def set(self, **attributes: Any) -> "Span":
        """Attach structured attributes (last write wins)."""
        self.attributes.update(attributes)
        return self

    def inc(self, counter: str, amount: int = 1) -> None:
        """Add ``amount`` to an additive counter."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def event(self, name: str, **attributes: Any) -> None:
        """Record a timestamped point-in-time marker inside this span."""
        at = self._tracer.now() if self._tracer is not None else self.start
        entry: Dict[str, Any] = {"name": name, "at": at}
        if attributes:
            entry["attributes"] = attributes
        self.events.append(entry)

    # -- introspection ---------------------------------------------------

    @property
    def duration(self) -> Optional[float]:
        """Seconds between start and end, or ``None`` while open."""
        if self.end is None:
            return None
        return self.end - self.start

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form; empty collections are omitted to keep
        ``RunResult`` documents small."""
        data: Dict[str, Any] = {"name": self.name, "start": self.start}
        data["end"] = self.end
        if self.attributes:
            data["attributes"] = dict(self.attributes)
        if self.counters:
            data["counters"] = dict(self.counters)
        if self.events:
            data["events"] = [dict(event) for event in self.events]
        if self.children:
            data["children"] = [child.to_dict() for child in self.children]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        """Inverse of :meth:`to_dict` (the rebuilt tree has no tracer)."""
        node = cls(data["name"], start=data.get("start", 0.0))
        node.end = data.get("end")
        node.attributes = dict(data.get("attributes", {}))
        node.counters = dict(data.get("counters", {}))
        node.events = [dict(event) for event in data.get("events", [])]
        node.children = [
            cls.from_dict(child) for child in data.get("children", [])
        ]
        return node

    def shift(self, offset: float) -> None:
        """Translate this subtree's timestamps by ``offset`` seconds —
        used when adopting a worker-process trace into the parent's
        timeline."""
        self.start += offset
        if self.end is not None:
            self.end += offset
        for event in self.events:
            event["at"] = event.get("at", 0.0) + offset
        for child in self.children:
            child.shift(offset)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, start={self.start:.6f}, "
            f"end={self.end}, children={len(self.children)})"
        )


class _NullSpan(Span):
    """Shared do-nothing span handed out when no tracer is active, so
    instrumented code never branches on ``if tracing:``."""

    __slots__ = ()

    def set(self, **attributes: Any) -> "Span":
        return self

    def inc(self, counter: str, amount: int = 1) -> None:
        return None

    def event(self, name: str, **attributes: Any) -> None:
        return None


#: Module singleton; identity-comparable (``sp is NULL_SPAN``) in tests.
NULL_SPAN = _NullSpan("null")


class span:
    """Context manager opening a child span under the active one.

    When no tracer is active the manager yields :data:`NULL_SPAN` and
    records nothing.  A class (not a generator) because it sits on hot
    paths — every control-loop round, every CP solve.
    """

    __slots__ = ("_name", "_attributes", "_span", "_token", "_tracer")

    def __init__(self, name: str, **attributes: Any) -> None:
        self._name = name
        self._attributes = attributes
        self._span: Optional[Span] = None
        self._token = None
        self._tracer: Optional[Tracer] = None

    def __enter__(self) -> Span:
        active = _ACTIVE.get()
        if active is None:
            return NULL_SPAN
        tracer, parent = active
        child = tracer._start_span(self._name, parent, self._attributes)
        self._tracer = tracer
        self._span = child
        self._token = _ACTIVE.set((tracer, child))
        return child

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._span is not None:
            assert self._tracer is not None and self._token is not None
            _ACTIVE.reset(self._token)
            self._tracer._finish_span(self._span)
            self._span = None
        return False


def current_span() -> Optional[Span]:
    """The innermost active span, or ``None`` when tracing is off."""
    active = _ACTIVE.get()
    return active[1] if active is not None else None


def current_tracer() -> Optional["Tracer"]:
    """The active tracer, or ``None`` when tracing is off."""
    active = _ACTIVE.get()
    return active[0] if active is not None else None


class _Activation:
    """Context manager returned by :meth:`Tracer.activate`."""

    __slots__ = ("_tracer", "_token")

    def __init__(self, tracer: "Tracer") -> None:
        self._tracer = tracer
        self._token = None

    def __enter__(self) -> Span:
        self._tracer.start()
        self._token = _ACTIVE.set((self._tracer, self._tracer.root))
        return self._tracer.root

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._token is not None
        _ACTIVE.reset(self._token)
        self._tracer.finish()
        return False


class Tracer:
    """Owner of one span tree.

    ``clock`` is any zero-argument callable returning monotonically
    increasing seconds; the default is :func:`time.perf_counter`.
    Injecting a counter makes traces fully deterministic:

    >>> ticks = iter(i * 0.5 for i in range(100))
    >>> tracer = Tracer(name="run", clock=lambda: next(ticks))
    >>> with tracer.activate():
    ...     with span("round", index=0) as sp:
    ...         sp.inc("moves", 3)
    >>> tracer.root.children[0].name
    'round'
    >>> tracer.root.children[0].duration
    0.5
    """

    def __init__(
        self,
        name: str = "run",
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._clock = clock
        self._lock = threading.RLock()
        self._origin: Optional[float] = None
        #: Wall-clock epoch (``time.time()``) captured at :meth:`start`.
        self.started_at: Optional[float] = None
        self.root = Span(name)
        self.root._tracer = self

    # -- clock -----------------------------------------------------------

    def now(self) -> float:
        """Seconds since :meth:`start` (0.0 before the tracer starts)."""
        if self._origin is None:
            return 0.0
        return self._clock() - self._origin

    def start(self) -> None:
        """Fix the origin; idempotent so nested activations are safe."""
        with self._lock:
            if self._origin is None:
                self._origin = self._clock()
                self.started_at = time.time()
                self.root.start = 0.0

    def finish(self) -> None:
        """Close the root span; idempotent."""
        with self._lock:
            if self.root.end is None:
                self.root.end = self.now()

    def activate(self) -> _Activation:
        """Install this tracer in the current context and open the root
        span.  Must be entered *on the thread doing the work* —
        contextvars do not cross thread boundaries."""
        return _Activation(self)

    # -- span lifecycle (called by the ``span`` context manager) ---------

    def _start_span(
        self, name: str, parent: Span, attributes: Dict[str, Any]
    ) -> Span:
        with self._lock:
            child = Span(name, start=self.now())
            child._tracer = self
            if attributes:
                child.attributes.update(attributes)
            parent.children.append(child)
            return child

    def _finish_span(self, node: Span) -> None:
        with self._lock:
            if node.end is None:
                node.end = self.now()

    # -- worker-trace adoption ------------------------------------------

    def adopt(
        self,
        parent: Span,
        trace: Dict[str, Any],
        offset: float = 0.0,
    ) -> Span:
        """Graft a serialized worker trace (a :meth:`to_dict` document or
        bare span dict) under ``parent``, translating its timestamps by
        ``offset`` seconds into this tracer's timeline.

        The alignment is approximate — worker clocks are independent, so
        ``offset`` is typically the parent's clock reading at submit
        time — which is documented rather than hidden: the adopted root
        gains an ``adopted=True`` attribute.
        """
        data = trace.get("root", trace)
        node = Span.from_dict(data)
        node.shift(offset)
        node.set(adopted=True)
        with self._lock:
            for descendant in node.walk():
                descendant._tracer = self
            parent.children.append(node)
        return node

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Snapshot the whole tree as plain JSON.  Safe to call from
        another thread while spans are still being recorded; open spans
        serialize with ``end: null``."""
        with self._lock:
            return {
                "version": 1,
                "started_at": self.started_at,
                "root": self.root.to_dict(),
            }
