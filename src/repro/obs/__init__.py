"""``repro.obs`` — end-to-end span tracing for the reconfiguration loop.

A zero-dependency hierarchical tracer (:class:`Tracer` / :class:`Span`)
threaded through the whole stack: control-loop rounds, CP solves,
partitioned zone workers, LNS repair attempts, plan execution, and
operator-daemon requests.  Traces attach to ``RunResult`` documents,
export to Chrome trace-event JSON (Perfetto), and summarize/diff via
the ``repro-trace`` CLI.  See ``docs/OBSERVABILITY.md``.
"""

from .export import to_chrome_trace, validate_chrome_trace
from .summary import (
    diff_traces,
    format_diff,
    format_summary,
    load_trace,
    phase_totals,
    solver_totals,
    summarize,
    top_spans,
)
from .tracer import NULL_SPAN, Span, Tracer, current_span, current_tracer, span

__all__ = [
    "Span",
    "Tracer",
    "span",
    "current_span",
    "current_tracer",
    "NULL_SPAN",
    "to_chrome_trace",
    "validate_chrome_trace",
    "load_trace",
    "phase_totals",
    "solver_totals",
    "top_spans",
    "summarize",
    "format_summary",
    "diff_traces",
    "format_diff",
]
