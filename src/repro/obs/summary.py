"""Trace summarization — per-phase totals, solver rollups, diffs.

These helpers power the ``repro-trace`` CLI and the per-phase
time-breakdown table in :mod:`repro.analysis.report`.  They operate on
plain trace documents (dicts), so a summary can be computed from a live
tracer snapshot, a ``RunResult`` JSON file, or a daemon ``GET /trace``
response alike.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .tracer import Span

__all__ = [
    "load_trace",
    "phase_totals",
    "solver_totals",
    "top_spans",
    "summarize",
    "format_summary",
    "diff_traces",
    "format_diff",
]


def load_trace(data: Dict[str, Any]) -> Span:
    """Build a :class:`Span` tree from any trace-bearing document: a
    ``Tracer.to_dict()`` payload, a bare span dict, a ``RunResult``
    document with a ``"trace"`` key, or a daemon ``GET /trace`` body."""
    if not isinstance(data, dict):
        raise ValueError("trace document must be a JSON object")
    if isinstance(data.get("trace"), dict):
        data = data["trace"]
    if isinstance(data.get("root"), dict):
        data = data["root"]
    if "name" not in data:
        raise ValueError(
            "no trace found: expected a 'trace'/'root' key or a bare "
            "span object"
        )
    return Span.from_dict(data)


def _span_end(node: Span) -> float:
    return node.end if node.end is not None else node.start


def phase_totals(root: Span) -> Dict[str, Dict[str, Any]]:
    """Aggregate spans by name.

    Returns ``{name: {"count", "total_s", "self_s", "max_s"}}`` where
    ``total_s`` sums span durations and ``self_s`` subtracts time spent
    in child spans (so nested phases don't double-count against their
    parents in the breakdown table).
    """
    totals: Dict[str, Dict[str, Any]] = {}
    for node in root.walk():
        duration = max(0.0, _span_end(node) - node.start)
        child_time = sum(
            max(0.0, _span_end(child) - child.start)
            for child in node.children
        )
        entry = totals.setdefault(
            node.name,
            {"count": 0, "total_s": 0.0, "self_s": 0.0, "max_s": 0.0},
        )
        entry["count"] += 1
        entry["total_s"] += duration
        entry["self_s"] += max(0.0, duration - child_time)
        entry["max_s"] = max(entry["max_s"], duration)
    return totals


#: Solver counters rolled up by :func:`solver_totals` (the names set by
#: ``repro.cp.Solver.solve`` on its ``cp.solve`` spans).
_SOLVER_COUNTERS = ("nodes", "backtracks", "propagations", "solutions")


def solver_totals(root: Span) -> Dict[str, int]:
    """Sum the CP search counters over every ``cp.solve`` span."""
    totals = {name: 0 for name in _SOLVER_COUNTERS}
    totals["solves"] = 0
    for node in root.walk():
        if node.name != "cp.solve":
            continue
        totals["solves"] += 1
        for name in _SOLVER_COUNTERS:
            totals[name] += int(node.counters.get(name, 0))
    return totals


def top_spans(root: Span, limit: int = 10) -> List[Dict[str, Any]]:
    """The ``limit`` longest spans, longest first."""
    ranked = sorted(
        root.walk(),
        key=lambda node: max(0.0, _span_end(node) - node.start),
        reverse=True,
    )
    return [
        {
            "name": node.name,
            "duration_s": round(max(0.0, _span_end(node) - node.start), 6),
            "start_s": round(node.start, 6),
            "attributes": dict(node.attributes),
        }
        for node in ranked[:limit]
    ]


def summarize(data: Dict[str, Any], limit: int = 10) -> Dict[str, Any]:
    """One-stop summary document: phase totals, solver rollup, longest
    spans, total duration."""
    root = load_trace(data)
    return {
        "root": root.name,
        "duration_s": round(max(0.0, _span_end(root) - root.start), 6),
        "phases": phase_totals(root),
        "solver": solver_totals(root),
        "top_spans": top_spans(root, limit=limit),
    }


def format_summary(summary: Dict[str, Any]) -> str:
    """Render a :func:`summarize` document as an aligned text table."""
    lines = [
        f"trace '{summary['root']}' — {summary['duration_s']:.3f}s total",
        "",
        f"{'phase':<18} {'count':>6} {'total s':>10} {'self s':>10} "
        f"{'max s':>10}",
    ]
    phases = sorted(
        summary["phases"].items(),
        key=lambda item: item[1]["total_s"],
        reverse=True,
    )
    for name, entry in phases:
        lines.append(
            f"{name:<18} {entry['count']:>6} {entry['total_s']:>10.3f} "
            f"{entry['self_s']:>10.3f} {entry['max_s']:>10.3f}"
        )
    solver = summary["solver"]
    if solver.get("solves"):
        lines.append("")
        lines.append(
            "solver: "
            + ", ".join(
                f"{name}={solver[name]}"
                for name in ("solves",) + _SOLVER_COUNTERS
            )
        )
    lines.append("")
    lines.append("longest spans:")
    for entry in summary["top_spans"]:
        attrs = ", ".join(
            f"{key}={value}"
            for key, value in sorted(entry["attributes"].items())
        )
        suffix = f"  ({attrs})" if attrs else ""
        lines.append(
            f"  {entry['duration_s']:>10.3f}s  {entry['name']}{suffix}"
        )
    return "\n".join(lines)


def diff_traces(
    before: Dict[str, Any], after: Dict[str, Any]
) -> Dict[str, Any]:
    """Per-phase comparison of two traces (e.g. cold vs repair engine).

    For each phase name present in either trace the diff reports both
    totals, the absolute delta, and the ratio ``after/before`` (``None``
    when the phase is absent on one side).
    """
    a = phase_totals(load_trace(before))
    b = phase_totals(load_trace(after))
    phases: Dict[str, Dict[str, Any]] = {}
    for name in sorted(set(a) | set(b)):
        before_s = a.get(name, {}).get("total_s", 0.0)
        after_s = b.get(name, {}).get("total_s", 0.0)
        ratio: Optional[float] = (
            round(after_s / before_s, 4) if before_s > 0 else None
        )
        phases[name] = {
            "before_s": round(before_s, 6),
            "after_s": round(after_s, 6),
            "delta_s": round(after_s - before_s, 6),
            "ratio": ratio,
            "before_count": a.get(name, {}).get("count", 0),
            "after_count": b.get(name, {}).get("count", 0),
        }
    solver_a = solver_totals(load_trace(before))
    solver_b = solver_totals(load_trace(after))
    return {
        "phases": phases,
        "solver": {
            name: {"before": solver_a[name], "after": solver_b[name]}
            for name in solver_a
        },
    }


def format_diff(diff: Dict[str, Any]) -> str:
    """Render a :func:`diff_traces` document as an aligned text table."""
    lines = [
        f"{'phase':<18} {'before s':>10} {'after s':>10} {'delta s':>10} "
        f"{'ratio':>8}",
    ]
    ordered = sorted(
        diff["phases"].items(),
        key=lambda item: item[1]["before_s"],
        reverse=True,
    )
    for name, entry in ordered:
        ratio = entry["ratio"]
        ratio_text = f"{ratio:.2f}x" if ratio is not None else "-"
        lines.append(
            f"{name:<18} {entry['before_s']:>10.3f} "
            f"{entry['after_s']:>10.3f} {entry['delta_s']:>+10.3f} "
            f"{ratio_text:>8}"
        )
    solver = diff.get("solver", {})
    if solver:
        lines.append("")
        lines.append(
            "solver: "
            + ", ".join(
                f"{name} {entry['before']}→{entry['after']}"
                for name, entry in sorted(solver.items())
            )
        )
    return "\n".join(lines)
