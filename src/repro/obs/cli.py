"""``repro-trace`` — summarize, diff, and export recorded traces.

Usage::

    repro-trace summary run.json            # per-phase totals + top spans
    repro-trace diff cold.json repair.json  # phase-by-phase comparison
    repro-trace export run.json -o run.chrome.json  # Perfetto-loadable

Each input may be a ``RunResult`` JSON document (``"trace"`` key), a raw
``Tracer.to_dict()`` payload, or a daemon ``GET /trace`` response body.
Also runnable from a checkout as ``python -m repro.obs.cli``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, Optional

from .export import to_chrome_trace, validate_chrome_trace
from .summary import diff_traces, format_diff, format_summary, summarize

__all__ = ["main"]


def _load(path: Path) -> Dict[str, Any]:
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"error: {path}: no such file")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: {path}: not valid JSON ({exc})")
    if not isinstance(data, dict):
        raise SystemExit(f"error: {path}: expected a JSON object")
    return data


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace", description=__doc__.splitlines()[0]
    )
    commands = parser.add_subparsers(dest="command", required=True)

    cmd = commands.add_parser(
        "summary", help="per-phase totals, solver rollup, longest spans"
    )
    cmd.add_argument("trace", type=Path, help="trace or RunResult JSON file")
    cmd.add_argument(
        "--limit", type=int, default=10, help="longest spans listed"
    )
    cmd.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )

    cmd = commands.add_parser(
        "diff", help="compare two traces phase by phase"
    )
    cmd.add_argument("before", type=Path, help="baseline trace JSON file")
    cmd.add_argument("after", type=Path, help="candidate trace JSON file")
    cmd.add_argument(
        "--json", action="store_true", help="emit the diff as JSON"
    )

    cmd = commands.add_parser(
        "export", help="convert to Chrome trace-event JSON (Perfetto)"
    )
    cmd.add_argument("trace", type=Path, help="trace or RunResult JSON file")
    cmd.add_argument(
        "-o", "--output", type=Path, default=None,
        help="output path (default: <trace>.chrome.json)",
    )

    args = parser.parse_args(argv)

    if args.command == "summary":
        try:
            summary = summarize(_load(args.trace), limit=args.limit)
        except ValueError as exc:
            raise SystemExit(f"error: {args.trace}: {exc}")
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(format_summary(summary))
        return 0

    if args.command == "diff":
        try:
            diff = diff_traces(_load(args.before), _load(args.after))
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
        if args.json:
            print(json.dumps(diff, indent=2, sort_keys=True))
        else:
            print(format_diff(diff))
        return 0

    # export
    try:
        document = to_chrome_trace(_load(args.trace))
    except ValueError as exc:
        raise SystemExit(f"error: {args.trace}: {exc}")
    errors = validate_chrome_trace(document)
    if errors:
        for error in errors:
            print(f"error: {error}", file=sys.stderr)
        return 1
    output = args.output or args.trace.with_suffix(".chrome.json")
    output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output} ({len(document['traceEvents'])} events)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
