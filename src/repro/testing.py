"""Factories shared by the test-suite, the examples and the benchmarks.

The test modules are not a package, so they cannot relatively import shared
helpers from their ``conftest.py``; these factories live in the installed
package instead and are imported absolutely (``from repro.testing import
make_vm``).  They are also handy for quick interactive experiments.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from .model.configuration import Configuration
from .model.node import Node
from .model.vjob import VJob
from .model.vm import VirtualMachine
from .workloads.traces import VJobWorkload, alternating_trace, constant_trace

__all__ = ["make_vm", "make_vjob", "make_workload", "make_large_fleet"]


def make_vm(
    name: str, memory: int = 512, cpu: int = 0, vjob: str = ""
) -> VirtualMachine:
    """A VM with the paper's defaults (512 MB, idle) unless overridden."""
    return VirtualMachine(name=name, memory=memory, cpu_demand=cpu, vjob=vjob)


def make_vjob(
    name: str,
    vm_count: int = 2,
    memory: int = 512,
    cpu: int = 1,
    priority: int = 0,
) -> VJob:
    """A vjob of ``vm_count`` identical VMs named ``<name>.vm<i>``."""
    vms = [
        make_vm(f"{name}.vm{i}", memory=memory, cpu=cpu, vjob=name)
        for i in range(vm_count)
    ]
    return VJob(name=name, vms=vms, priority=priority)


def make_workload(
    name: str,
    vm_count: int = 2,
    memory: int = 512,
    duration: float = 120.0,
    priority: int = 0,
    idle_head: float = 0.0,
) -> VJobWorkload:
    """A vjob whose VMs compute for ``duration`` seconds (optionally after an
    idle phase of ``idle_head`` seconds)."""
    vjob = make_vjob(name, vm_count=vm_count, memory=memory, priority=priority)
    if idle_head > 0:
        trace = alternating_trace([(idle_head, 0), (duration, 1)])
    else:
        trace = constant_trace(duration, cpu_demand=1)
    return VJobWorkload(vjob=vjob, traces={vm.name: trace for vm in vjob.vms})


#: Session-level cache of :func:`make_large_fleet` results, keyed by the
#: factory arguments.  Large fleets are expensive to build; test modules
#: share one construction per parameter set and :meth:`Configuration.copy`
#: what they need to mutate.
_FLEET_CACHE: Dict[Tuple[int, int, int, int], Configuration] = {}


def make_large_fleet(
    vm_count: int,
    vms_per_node: int = 4,
    seed: int = 7,
    groups: int = 8,
    cached: bool = True,
) -> Configuration:
    """A seeded datacenter-tier fleet: ``vm_count`` running VMs spread
    round-robin over ``vm_count / vms_per_node`` nodes in ``groups``
    contiguous node groups (group ``g`` hosts the VMs with ``i % groups ==
    g`` — the layout the scale tests fence into zones).

    Results are cached per parameter set for the life of the process; the
    returned configuration is **shared**, so callers that mutate it must
    :meth:`~repro.model.configuration.Configuration.copy` it first (the
    session-scoped pytest fixture hands out copies).  Pass ``cached=False``
    for a private instance.
    """
    key = (vm_count, vms_per_node, seed, groups)
    if cached and key in _FLEET_CACHE:
        return _FLEET_CACHE[key]
    rng = random.Random(seed)
    node_count = max(groups, vm_count // vms_per_node)
    configuration = Configuration()
    node_names = [f"node-{i}" for i in range(node_count)]
    for name in node_names:
        configuration.add_node(
            Node(
                name=name,
                cpu_capacity=2 * (vms_per_node + 2),
                memory_capacity=1024 * (vms_per_node + 2),
            )
        )
    width = node_count // groups
    node_groups = [
        node_names[g * width: (g + 1) * width if g < groups - 1 else node_count]
        for g in range(groups)
    ]
    for i in range(vm_count):
        group = node_groups[i % groups]
        vm_name = f"vm-{i}"
        configuration.add_vm(
            VirtualMachine(
                name=vm_name, memory=1024, cpu_demand=rng.randint(1, 2)
            )
        )
        configuration.set_running(vm_name, group[(i // groups) % len(group)])
    if cached:
        _FLEET_CACHE[key] = configuration
    return configuration
