"""Factories shared by the test-suite, the examples and the benchmarks.

The test modules are not a package, so they cannot relatively import shared
helpers from their ``conftest.py``; these factories live in the installed
package instead and are imported absolutely (``from repro.testing import
make_vm``).  They are also handy for quick interactive experiments.
"""

from __future__ import annotations

from .model.vjob import VJob
from .model.vm import VirtualMachine
from .workloads.traces import VJobWorkload, alternating_trace, constant_trace

__all__ = ["make_vm", "make_vjob", "make_workload"]


def make_vm(
    name: str, memory: int = 512, cpu: int = 0, vjob: str = ""
) -> VirtualMachine:
    """A VM with the paper's defaults (512 MB, idle) unless overridden."""
    return VirtualMachine(name=name, memory=memory, cpu_demand=cpu, vjob=vjob)


def make_vjob(
    name: str,
    vm_count: int = 2,
    memory: int = 512,
    cpu: int = 1,
    priority: int = 0,
) -> VJob:
    """A vjob of ``vm_count`` identical VMs named ``<name>.vm<i>``."""
    vms = [
        make_vm(f"{name}.vm{i}", memory=memory, cpu=cpu, vjob=name)
        for i in range(vm_count)
    ]
    return VJob(name=name, vms=vms, priority=priority)


def make_workload(
    name: str,
    vm_count: int = 2,
    memory: int = 512,
    duration: float = 120.0,
    priority: int = 0,
    idle_head: float = 0.0,
) -> VJobWorkload:
    """A vjob whose VMs compute for ``duration`` seconds (optionally after an
    idle phase of ``idle_head`` seconds)."""
    vjob = make_vjob(name, vm_count=vm_count, memory=memory, priority=priority)
    if idle_head > 0:
        trace = alternating_trace([(idle_head, 0), (duration, 1)])
    else:
        trace = constant_trace(duration, cpu_demand=1)
    return VJobWorkload(vjob=vjob, traces={vm.name: trace for vm in vjob.vms})
