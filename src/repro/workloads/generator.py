"""Random configuration generator for the scalability evaluation (Section 5.1).

The paper evaluates the cost reduction achieved by the CP optimizer on
generated configurations of 200 working nodes (2 CPUs, 4 GB each) hosting a
variable number of VMs.  The configurations aggregate vjobs of 9 or 18 VMs
whose workloads follow NGB traces of classes W, A and B; each VM is allocated
256 MB to 2048 MB of memory and requires an entire processing unit when it is
computing; the initial state of each vjob is chosen at random and the initial
placement only satisfies the *memory* requirement (so CPU-overloaded nodes do
appear and must be fixed by the context switch).  Thirty samples are generated
for every VM count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from .. import config
from ..model.configuration import Configuration
from ..model.node import Node, make_working_nodes
from ..model.queue import VJobQueue
from ..model.vjob import VJobState
from ..model.vm import VMState
from .nasgrid import (
    MEMORY_CHOICES_MB,
    Benchmark,
    NASGridSpec,
    ProblemClass,
    make_nasgrid_vjob,
)
from .traces import VJobWorkload


@dataclass
class GeneratedScenario:
    """One generated configuration plus its vjobs and traces."""

    configuration: Configuration
    queue: VJobQueue
    workloads: list[VJobWorkload] = field(default_factory=list)

    @property
    def vm_count(self) -> int:
        return len(self.configuration.vm_names)

    def vjob_of_vm(self) -> dict[str, str]:
        mapping: dict[str, str] = {}
        for workload in self.workloads:
            for vm in workload.vjob.vm_names:
                mapping[vm] = workload.vjob.name
        return mapping


class TraceConfigurationGenerator:
    """Builds random scenarios matching the Section 5.1 setup."""

    def __init__(
        self,
        node_count: int = 200,
        node_cpu: int = 2,
        node_memory: int = 4096,
        vm_counts_per_vjob: Sequence[int] = (9, 18),
        memory_choices: Sequence[int] = MEMORY_CHOICES_MB,
        seed: Optional[int] = None,
        name_prefix: str = "",
    ) -> None:
        self.node_count = node_count
        self.node_cpu = node_cpu
        self.node_memory = node_memory
        self.vm_counts_per_vjob = tuple(vm_counts_per_vjob)
        self.memory_choices = tuple(memory_choices)
        #: Prefixed to every node and vjob name, so several generated
        #: scenarios can be merged into one configuration without name
        #: collisions (e.g. the partitioning benchmark's multi-zone fixture).
        self.name_prefix = name_prefix
        #: Seed this generator was built with; every random draw flows through
        #: the private ``random.Random`` below (never the module-global
        #: ``random``), so the same seed always yields the same scenarios.
        self.seed = seed
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------ #

    def generate(self, vm_count: int, seed: Optional[int] = None) -> GeneratedScenario:
        """Generate one scenario with about ``vm_count`` VMs."""
        rng = random.Random(seed) if seed is not None else self._rng
        nodes = make_working_nodes(
            self.node_count,
            cpu_capacity=self.node_cpu,
            memory_capacity=self.node_memory,
            prefix=f"{self.name_prefix}node",
        )
        configuration = Configuration(nodes=nodes)
        queue = VJobQueue()
        workloads: list[VJobWorkload] = []

        built = 0
        index = 0
        while built < vm_count:
            per_vjob = rng.choice(self.vm_counts_per_vjob)
            per_vjob = min(per_vjob, vm_count - built) or per_vjob
            spec = NASGridSpec(
                benchmark=rng.choice(list(Benchmark)),
                problem_class=rng.choice(list(ProblemClass)),
                vm_count=per_vjob,
            )
            memories = [rng.choice(self.memory_choices) for _ in range(per_vjob)]
            workload = make_nasgrid_vjob(
                name=f"{self.name_prefix}vjob{index}",
                spec=spec,
                memory_mb=memories,
                priority=index,
                rng=rng,
                jitter=0.15,
            )
            workloads.append(workload)
            queue.submit(workload.vjob)
            built += per_vjob
            index += 1

        self._populate(configuration, workloads, rng)
        return GeneratedScenario(
            configuration=configuration, queue=queue, workloads=workloads
        )

    # ------------------------------------------------------------------ #

    def populate(
        self,
        configuration: Configuration,
        workloads: list[VJobWorkload],
        rng: Optional[random.Random] = None,
    ) -> None:
        """Draw initial states and a memory-only placement for ``workloads``
        into ``configuration`` (which must already hold the fleet).

        This is the generator's placement face on its own: trace-derived or
        hand-built vjobs (``repro.instances.ingest``) reuse exactly the
        Section 5.1 initial-state distribution without re-generating the
        vjobs themselves.  ``rng`` defaults to the generator's seeded
        stream.
        """
        self._populate(configuration, workloads, rng or self._rng)

    def _populate(
        self,
        configuration: Configuration,
        workloads: list[VJobWorkload],
        rng: random.Random,
    ) -> None:
        """Register every VM and place the running ones.

        The initial state of each vjob is drawn at random (running, sleeping
        or waiting); a running VM is placed on a node with enough *memory*
        left — CPU overloads are allowed, as in the paper's generator, because
        resolving them is precisely the context switch's job.  The CPU demand
        of every VM is sampled from a random point of its trace.
        """
        memory_left = {
            node.name: node.memory_capacity for node in configuration.nodes
        }
        node_names = list(memory_left)

        for workload in workloads:
            state = rng.choice(
                [VJobState.RUNNING, VJobState.SLEEPING, VJobState.WAITING]
            )
            # Sample the demands at a random progress point of the vjob.
            progress = rng.uniform(0, workload.duration)
            demands = workload.demands_at(progress)

            placements: dict[str, str] = {}
            if state is VJobState.RUNNING:
                for vm in workload.vjob.vms:
                    candidates = [
                        n for n in node_names if memory_left[n] >= vm.memory
                    ]
                    if not candidates:
                        # The cluster memory is exhausted: the vjob cannot be
                        # running initially, fall back to waiting.
                        state = VJobState.WAITING
                        placements.clear()
                        break
                    chosen = rng.choice(candidates)
                    placements[vm.name] = chosen
                    memory_left[chosen] -= vm.memory

            for vm in workload.vjob.vms:
                observed = vm.with_cpu_demand(demands[vm.name])
                configuration.add_vm(observed)
                if state is VJobState.RUNNING:
                    configuration.set_running(vm.name, placements[vm.name])
                elif state is VJobState.SLEEPING:
                    configuration.set_sleeping(vm.name, rng.choice(node_names))
                else:
                    configuration.set_waiting(vm.name)

            # Align the vjob life-cycle state with the drawn state.
            if state is VJobState.RUNNING:
                workload.vjob.run()
            elif state is VJobState.SLEEPING:
                workload.vjob.run()
                workload.vjob.suspend()


def paper_vm_counts(points: int = 9, step: int = 54, start: int = 54) -> list[int]:
    """The VM counts of Figure 10: 54, 108, ..., 486."""
    return [start + step * i for i in range(points)]


def paper_cluster_nodes() -> list[Node]:
    """The 11 working nodes of the Section 2.3 / 5.2 testbed."""
    spec = config.PAPER_CLUSTER.node_spec
    return make_working_nodes(
        config.PAPER_CLUSTER.node_count,
        cpu_capacity=spec.cpu_capacity,
        memory_capacity=spec.usable_memory,
    )
