"""NAS Grid Benchmarks-like workloads.

The paper's vjobs execute applications built from the NAS Grid Benchmarks
(NGB) suite [24]: ED (Embarrassingly Distributed), HC (Helical Chain), VP
(Visualization Pipeline) and MB (Mixed Bag), for the problem classes W, A
and B.  The real traces are not redistributable, so this module generates
synthetic equivalents that keep the structural properties the scheduler
reacts to:

* **ED** — independent tasks: every VM computes for the whole benchmark, the
  vjob's CPU demand equals its VM count;
* **HC** — a chain of tasks: exactly one VM computes at any time, the others
  idle while waiting for their predecessor;
* **VP** — a three-stage pipeline: about three VMs compute concurrently in
  steady state, with a ramp-up and a ramp-down;
* **MB** — a mixed bag: the parallelism degree grows stage after stage.

Task durations scale with the problem class (W < A < B), matching the order of
magnitude needed for the Section 5.2 experiment (vjobs lasting tens of
minutes).  Small multiplicative jitter can be applied so that the 30 samples
of the scalability evaluation differ, as the 81 real traces did.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..model.vjob import VJob
from ..model.vm import VirtualMachine
from .traces import DemandTrace, Phase, VJobWorkload


class Benchmark(enum.Enum):
    """The four NGB dataflow graphs."""

    ED = "ED"
    HC = "HC"
    VP = "VP"
    MB = "MB"


class ProblemClass(enum.Enum):
    """NGB problem classes used in the paper (W, A and B)."""

    W = "W"
    A = "A"
    B = "B"


#: Duration (seconds) of one NGB task for each problem class.  The absolute
#: values are synthetic; their ratios follow the usual W << A < B scaling and
#: give vjobs of a few minutes (W) to about an hour (B), consistent with the
#: 150-250 minute campaigns of Section 5.2.
TASK_DURATION_S = {
    ProblemClass.W: 60.0,
    ProblemClass.A: 180.0,
    ProblemClass.B: 420.0,
}

#: Memory sizes (MB) a NGB VM may be allocated in the evaluation.
MEMORY_CHOICES_MB = (256, 512, 1024, 2048)


@dataclass(frozen=True)
class NASGridSpec:
    """Description of one NGB vjob."""

    benchmark: Benchmark
    problem_class: ProblemClass
    vm_count: int = 9

    def task_duration(self) -> float:
        return TASK_DURATION_S[self.problem_class]


# --------------------------------------------------------------------------- #
# trace synthesis                                                              #
# --------------------------------------------------------------------------- #

def _ed_traces(vm_count: int, task: float) -> list[list[Phase]]:
    """Every VM computes the whole time (one long SP task each)."""
    return [[Phase(duration=task * 3, cpu_demand=1)] for _ in range(vm_count)]


def _hc_traces(vm_count: int, task: float) -> list[list[Phase]]:
    """One VM computes at a time: VM i idles i slots, computes one slot,
    then idles until the end of the chain."""
    traces = []
    for index in range(vm_count):
        phases = []
        if index:
            phases.append(Phase(duration=task * index, cpu_demand=0))
        phases.append(Phase(duration=task, cpu_demand=1))
        tail = vm_count - index - 1
        if tail:
            phases.append(Phase(duration=task * tail, cpu_demand=0))
        traces.append(phases)
    return traces


def _vp_traces(vm_count: int, task: float) -> list[list[Phase]]:
    """Three-stage pipeline: VM i starts computing at slot i // 3 and computes
    one slot out of three afterwards until its stream of frames is done."""
    stages = 3
    frames = max(1, vm_count // stages)
    traces = []
    for index in range(vm_count):
        stage = index % stages
        frame = index // stages
        phases = []
        offset = stage + frame * stages
        if offset:
            phases.append(Phase(duration=task * offset, cpu_demand=0))
        phases.append(Phase(duration=task, cpu_demand=1))
        tail = frames * stages + stages - 1 - offset
        if tail > 0:
            phases.append(Phase(duration=task * tail, cpu_demand=0))
        traces.append(phases)
    return traces


def _mb_traces(vm_count: int, task: float) -> list[list[Phase]]:
    """Mixed bag: the parallelism widens stage after stage (1, 2, 3, ... VMs
    computing concurrently)."""
    traces: list[list[Phase]] = []
    # Assign each VM to a stage so that stage s holds about s+1 VMs.
    stage_of_vm: list[int] = []
    stage, filled = 0, 0
    for _ in range(vm_count):
        stage_of_vm.append(stage)
        filled += 1
        if filled > stage:
            stage += 1
            filled = 0
    stage_count = max(stage_of_vm) + 1
    for index in range(vm_count):
        s = stage_of_vm[index]
        phases = []
        if s:
            phases.append(Phase(duration=task * s, cpu_demand=0))
        phases.append(Phase(duration=task, cpu_demand=1))
        tail = stage_count - s - 1
        if tail:
            phases.append(Phase(duration=task * tail, cpu_demand=0))
        traces.append(phases)
    return traces


_TRACE_BUILDERS = {
    Benchmark.ED: _ed_traces,
    Benchmark.HC: _hc_traces,
    Benchmark.VP: _vp_traces,
    Benchmark.MB: _mb_traces,
}


def nasgrid_traces(
    spec: NASGridSpec,
    rng: Optional[random.Random] = None,
    jitter: float = 0.0,
) -> list[DemandTrace]:
    """Synthesize one demand trace per VM of an NGB vjob.

    ``jitter`` applies a uniform +/- fraction to every phase duration so that
    repeated generations differ (the scalability evaluation of Section 5.1
    draws 30 samples per configuration size).
    """
    builder = _TRACE_BUILDERS[spec.benchmark]
    phase_lists = builder(spec.vm_count, spec.task_duration())
    if jitter:
        # Deterministic fallback: an unseeded Random here would make trace
        # generation — and everything downstream of it — unreproducible.
        rng = rng or random.Random(0)
        jittered = []
        for phases in phase_lists:
            jittered.append(
                [
                    Phase(
                        duration=p.duration * (1 + rng.uniform(-jitter, jitter)),
                        cpu_demand=p.cpu_demand,
                    )
                    for p in phases
                ]
            )
        phase_lists = jittered
    return [DemandTrace(phases) for phases in phase_lists]


# --------------------------------------------------------------------------- #
# vjob factories                                                               #
# --------------------------------------------------------------------------- #

def make_nasgrid_vjob(
    name: str,
    spec: NASGridSpec,
    memory_mb: int | Sequence[int] = 1024,
    priority: int = 0,
    submitted_at: float = 0.0,
    rng: Optional[random.Random] = None,
    jitter: float = 0.0,
) -> VJobWorkload:
    """Build a vjob running an NGB application and its demand traces.

    ``memory_mb`` is either a single size applied to every VM or one size per
    VM.  The initial CPU demand of each VM is the demand of the first phase of
    its trace.
    """
    if isinstance(memory_mb, int):
        memories = [memory_mb] * spec.vm_count
    else:
        memories = list(memory_mb)
        if len(memories) != spec.vm_count:
            raise ValueError("one memory size per VM is required")

    traces = nasgrid_traces(spec, rng=rng, jitter=jitter)
    vms = []
    trace_map = {}
    for index in range(spec.vm_count):
        vm_name = f"{name}.vm{index}"
        vms.append(
            VirtualMachine(
                name=vm_name,
                memory=memories[index],
                cpu_demand=traces[index].demand_at(0.0),
                vjob=name,
            )
        )
        trace_map[vm_name] = traces[index]
    vjob = VJob(name=name, vms=vms, priority=priority, submitted_at=submitted_at)
    return VJobWorkload(vjob=vjob, traces=trace_map)


def paper_experiment_vjobs(
    count: int = 8,
    vm_count: int = 9,
    rng: Optional[random.Random] = None,
) -> list[VJobWorkload]:
    """The workload of the Section 5.2 cluster experiment: ``count`` vjobs of
    ``vm_count`` VMs each, submitted at the same moment in a fixed order, with
    memory sizes between 512 MB and 2048 MB and NGB applications of mixed
    benchmarks/classes."""
    rng = rng or random.Random(5229)
    benchmarks = [Benchmark.ED, Benchmark.HC, Benchmark.VP, Benchmark.MB]
    classes = [ProblemClass.A, ProblemClass.B]
    memory_choices = (512, 1024, 2048)
    workloads = []
    for index in range(count):
        spec = NASGridSpec(
            benchmark=benchmarks[index % len(benchmarks)],
            problem_class=classes[index % len(classes)],
            vm_count=vm_count,
        )
        memories = [rng.choice(memory_choices) for _ in range(vm_count)]
        workloads.append(
            make_nasgrid_vjob(
                name=f"vjob{index}",
                spec=spec,
                memory_mb=memories,
                priority=index,
                submitted_at=0.0,
                rng=rng,
                jitter=0.1,
            )
        )
    return workloads
