"""Churn workloads: vjob arrival/departure streams and mixed node fleets.

The Section 5.2 campaign submits every vjob at t = 0 on a homogeneous
cluster.  Real clusters churn: vjobs of different shapes arrive over time
(and depart when their work completes), and fleets mix machine generations.
This module generates both sides of that churn from seeded generators, so
chaos and capacity-pressure scenarios stay exactly reproducible:

* :class:`ChurnGenerator` draws vjob *arrival streams* — exponential
  inter-arrival times, per-vjob NGB benchmark/class, VM count and memory
  sizes all drawn from one seeded ``random.Random``.  Departures are the
  natural completions of the generated traces (problem class W gives
  minutes-long vjobs, A and B progressively longer ones), so an arrival
  stream *is* an arrival/departure stream once the loop runs it;
* :meth:`ChurnGenerator.burst` submits a batch at one instant — the
  "arrival burst exceeding capacity" stress case;
* :func:`heterogeneous_nodes` builds a mixed fleet from weighted
  ``(cpu, memory)`` profiles.

Everything composes with the rest of the stack: the generated
:class:`~repro.workloads.traces.VJobWorkload` objects carry ``submitted_at``
timestamps the control loop already honours, and the node lists drop into
``Scenario(nodes=...)`` (optionally with some nodes held back by a
:meth:`~repro.sim.faults.FaultSchedule.delayed_boot` fault).
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..model.node import Node
from .nasgrid import (
    MEMORY_CHOICES_MB,
    Benchmark,
    NASGridSpec,
    ProblemClass,
    make_nasgrid_vjob,
)
from .traces import VJobWorkload

#: Default ``(cpu_capacity, memory_capacity)`` profiles of a mixed fleet:
#: the paper's dual-core 3.5 GB worker, a bigger 4-way box and a small
#: previous-generation node.
DEFAULT_NODE_PROFILES: tuple[tuple[int, int], ...] = (
    (2, 3584),
    (4, 7168),
    (1, 2048),
)


def heterogeneous_nodes(
    count: int,
    seed: int = 0,
    profiles: Sequence[tuple[int, int]] = DEFAULT_NODE_PROFILES,
    weights: Optional[Sequence[float]] = None,
    prefix: str = "node",
) -> list[Node]:
    """Build ``count`` working nodes drawn from weighted hardware profiles.

    The draw is seeded: the same arguments always return the same fleet.
    ``weights`` defaults to uniform across ``profiles``.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if not profiles:
        raise ValueError("at least one (cpu, memory) profile is required")
    rng = random.Random(seed)
    chosen = rng.choices(list(profiles), weights=weights, k=count)
    return [
        Node(name=f"{prefix}-{index}", cpu_capacity=cpu, memory_capacity=memory)
        for index, (cpu, memory) in enumerate(chosen)
    ]


class ChurnGenerator:
    """Seeded generator of vjob arrival streams.

    Parameters
    ----------
    seed:
        Seeds the private ``random.Random``; identical generators produce
        identical streams.
    mean_interarrival_s:
        Mean of the exponential inter-arrival time between consecutive vjob
        submissions.
    vm_count_choices:
        VM counts a vjob may have (the paper uses 9 and 18; churn scenarios
        usually mix smaller shapes).
    memory_choices:
        Memory sizes (MB) drawn per VM.
    benchmarks / problem_classes:
        NGB dataflow graphs and problem classes to draw from; class W keeps
        vjobs short (minutes), A and B make them progressively longer.
    jitter:
        Phase-duration jitter forwarded to the trace synthesis so two vjobs
        with the same spec still differ.
    name_prefix:
        Vjob names are ``f"{name_prefix}{index}"``.
    """

    def __init__(
        self,
        seed: int = 0,
        mean_interarrival_s: float = 120.0,
        vm_count_choices: Sequence[int] = (2, 4, 9),
        memory_choices: Sequence[int] = MEMORY_CHOICES_MB,
        benchmarks: Sequence[Benchmark] = tuple(Benchmark),
        problem_classes: Sequence[ProblemClass] = (
            ProblemClass.W,
            ProblemClass.A,
        ),
        jitter: float = 0.1,
        name_prefix: str = "churn",
    ) -> None:
        if mean_interarrival_s <= 0:
            raise ValueError("mean_interarrival_s must be positive")
        self.seed = seed
        self.mean_interarrival_s = mean_interarrival_s
        self.vm_count_choices = tuple(vm_count_choices)
        self.memory_choices = tuple(memory_choices)
        self.benchmarks = tuple(benchmarks)
        self.problem_classes = tuple(problem_classes)
        self.jitter = jitter
        self.name_prefix = name_prefix
        self._rng = random.Random(seed)
        self._index = 0

    # ------------------------------------------------------------------ #

    def _draw_vjob(self, submitted_at: float) -> VJobWorkload:
        rng = self._rng
        spec = NASGridSpec(
            benchmark=rng.choice(self.benchmarks),
            problem_class=rng.choice(self.problem_classes),
            vm_count=rng.choice(self.vm_count_choices),
        )
        memories = [rng.choice(self.memory_choices) for _ in range(spec.vm_count)]
        workload = make_nasgrid_vjob(
            name=f"{self.name_prefix}{self._index}",
            spec=spec,
            memory_mb=memories,
            priority=self._index,
            submitted_at=submitted_at,
            rng=rng,
            jitter=self.jitter,
        )
        self._index += 1
        return workload

    def workloads(
        self, count: int, start_time: float = 0.0
    ) -> list[VJobWorkload]:
        """Draw ``count`` vjobs arriving after exponential inter-arrival
        gaps, the first one ``start_time`` plus one gap into the run.

        Successive calls continue the same stream (indices and the RNG state
        carry over), so one generator can feed several phases of a scenario.
        """
        stream: list[VJobWorkload] = []
        clock = start_time
        for _ in range(count):
            clock += self._rng.expovariate(1.0 / self.mean_interarrival_s)
            stream.append(self._draw_vjob(submitted_at=clock))
        return stream

    def burst(self, count: int, at: float = 0.0) -> list[VJobWorkload]:
        """Draw ``count`` vjobs all submitted at the same instant ``at`` —
        the arrival burst that exceeds cluster capacity in the stress tests."""
        return [self._draw_vjob(submitted_at=at) for _ in range(count)]
