"""Workload substrate: NASGrid-like vjobs, demand traces and generators."""

from .churn import (
    DEFAULT_NODE_PROFILES,
    ChurnGenerator,
    heterogeneous_nodes,
)
from .generator import (
    GeneratedScenario,
    TraceConfigurationGenerator,
    paper_cluster_nodes,
    paper_vm_counts,
)
from .nasgrid import (
    MEMORY_CHOICES_MB,
    TASK_DURATION_S,
    Benchmark,
    NASGridSpec,
    ProblemClass,
    make_nasgrid_vjob,
    nasgrid_traces,
    paper_experiment_vjobs,
)
from .traces import (
    DemandTrace,
    Phase,
    VJobWorkload,
    alternating_trace,
    constant_trace,
)

__all__ = [
    "DEFAULT_NODE_PROFILES",
    "ChurnGenerator",
    "heterogeneous_nodes",
    "GeneratedScenario",
    "TraceConfigurationGenerator",
    "paper_cluster_nodes",
    "paper_vm_counts",
    "MEMORY_CHOICES_MB",
    "TASK_DURATION_S",
    "Benchmark",
    "NASGridSpec",
    "ProblemClass",
    "make_nasgrid_vjob",
    "nasgrid_traces",
    "paper_experiment_vjobs",
    "DemandTrace",
    "Phase",
    "VJobWorkload",
    "alternating_trace",
    "constant_trace",
]
