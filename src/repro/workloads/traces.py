"""Per-VM demand traces.

A trace describes how the CPU demand of one VM evolves while its embedded
NASGrid task graph executes: a sequence of *phases*, each with a duration (in
seconds of execution time) and a CPU demand (an entire processing unit while a
task computes, zero while the VM waits for its predecessors or transfers
data).  The vjob only makes progress while it is in the Running state, so the
trace is indexed by *progress time* rather than wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..model.vjob import VJob


@dataclass(frozen=True)
class Phase:
    """A period of constant CPU demand."""

    duration: float
    cpu_demand: int

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("phase duration must be non-negative")
        if self.cpu_demand < 0:
            raise ValueError("phase cpu_demand must be non-negative")


class DemandTrace:
    """The demand profile of one VM over its execution."""

    def __init__(self, phases: Iterable[Phase]):
        self.phases: tuple[Phase, ...] = tuple(phases)
        if not self.phases:
            raise ValueError("a demand trace needs at least one phase")

    @property
    def total_duration(self) -> float:
        """Execution time needed to play the whole trace."""
        return sum(phase.duration for phase in self.phases)

    @property
    def compute_time(self) -> float:
        """Execution time during which the VM requires a processing unit."""
        return sum(p.duration for p in self.phases if p.cpu_demand > 0)

    @property
    def peak_demand(self) -> int:
        return max(p.cpu_demand for p in self.phases)

    def demand_at(self, progress: float) -> int:
        """CPU demand once the VM has accumulated ``progress`` seconds of
        execution (0 beyond the end of the trace)."""
        if progress < 0:
            raise ValueError("progress must be non-negative")
        elapsed = 0.0
        for phase in self.phases:
            elapsed += phase.duration
            if progress < elapsed:
                return phase.cpu_demand
        return 0

    def is_finished(self, progress: float) -> bool:
        return progress >= self.total_duration

    def __len__(self) -> int:
        return len(self.phases)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DemandTrace({len(self.phases)} phases, "
            f"{self.total_duration:.0f}s total, {self.compute_time:.0f}s compute)"
        )


@dataclass
class VJobWorkload:
    """A vjob together with the demand trace of each of its VMs."""

    vjob: VJob
    traces: Mapping[str, DemandTrace]

    def __post_init__(self) -> None:
        missing = set(self.vjob.vm_names) - set(self.traces)
        if missing:
            raise ValueError(f"missing traces for VMs: {sorted(missing)}")

    @property
    def duration(self) -> float:
        """Execution time of the whole vjob: the longest of its VM traces."""
        return max(trace.total_duration for trace in self.traces.values())

    @property
    def peak_cpu_demand(self) -> int:
        """Number of processing units the vjob needs when every VM computes
        at once (the static allocation a batch scheduler books)."""
        return sum(trace.peak_demand for trace in self.traces.values())

    @property
    def average_cpu_demand(self) -> float:
        """Time-averaged number of busy processing units."""
        duration = self.duration
        if duration == 0:
            return 0.0
        return sum(t.compute_time for t in self.traces.values()) / duration

    def demands_at(self, progress: float) -> dict[str, int]:
        return {name: trace.demand_at(progress) for name, trace in self.traces.items()}

    def is_finished(self, progress: float) -> bool:
        return all(trace.is_finished(progress) for trace in self.traces.values())


def constant_trace(duration: float, cpu_demand: int = 1) -> DemandTrace:
    """A single-phase trace (used by tests and micro-benchmarks)."""
    return DemandTrace([Phase(duration=duration, cpu_demand=cpu_demand)])


def alternating_trace(
    segments: Sequence[tuple[float, int]],
) -> DemandTrace:
    """Build a trace from (duration, cpu_demand) pairs."""
    return DemandTrace([Phase(duration=d, cpu_demand=c) for d, c in segments])
