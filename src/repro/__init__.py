"""Reproduction of "Cluster-Wide Context Switch of Virtualized Jobs".

Hermenier, Lèbre, Menaud — INRIA RR-6929 / HPDC 2010.

The package provides:

* :mod:`repro.api` — the public experiment API: the pluggable
  observe/decide/plan/execute control loop, the ``Scenario`` /
  ``ExperimentBuilder`` facade, the decision-module protocol and registry,
  and the structured ``RunResult``;
* :mod:`repro.model` — nodes, VMs, vjobs, configurations, viability;
* :mod:`repro.cp` — a finite-domain constraint solver (Choco replacement);
* :mod:`repro.constraints` — the declarative placement-constraint catalog
  (``Spread``, ``Gather``, ``Ban``, ``Fence``, ``Among``, ``Root``,
  ``MaxOnline``, ``RunningCapacity``, ``Lonely``), compiled into the CP
  optimizer and checked end to end;
* :mod:`repro.core` — the cluster-wide context switch: actions, cost model,
  reconfiguration graphs/plans, planner and CP optimizer;
* :mod:`repro.scale` — scale-out: the interference partitioner, the
  parallel zone optimizer (``Scenario(engine="partitioned")``) and the
  campaign runner for grids of scenarios;
* :mod:`repro.decision` — decision modules (FFD, RJSP, dynamic consolidation,
  FCFS + EASY backfilling baseline), all registered in :mod:`repro.api`;
* :mod:`repro.sim` — a discrete-event cluster simulator calibrated on the
  paper's measurements (Xen/Ganglia/NFS substitute);
* :mod:`repro.entropy` — the historical loop entry point and the
  static-allocation baseline;
* :mod:`repro.workloads` — NASGrid-like vjobs and configuration generators;
* :mod:`repro.analysis` — metrics and report helpers for the experiments;
* :mod:`repro.testing` — factories shared by the test-suite and examples.

Quickstart::

    from repro import Scenario
    from repro.model import make_working_nodes
    from repro.workloads import paper_experiment_vjobs

    scenario = Scenario(
        nodes=make_working_nodes(11, cpu_capacity=2, memory_capacity=3584),
        workloads=paper_experiment_vjobs(count=8, vm_count=9),
        policy="consolidation",
    )
    result = scenario.run()
    print(result.makespan, result.switch_count)
"""

from . import config
from .api import (
    ConstraintViolationRecord,
    ControlLoop,
    Decision,
    DecisionModule,
    ExperimentBuilder,
    FaultRecord,
    LoopObserver,
    RunResult,
    Scenario,
    UnknownDecisionModuleError,
    available_decision_modules,
    get_decision_module,
    register_decision_module,
)
from .constraints import (
    Among,
    Ban,
    Fence,
    Gather,
    Lonely,
    MaxOnline,
    PlacementConstraint,
    Root,
    RunningCapacity,
    Spread,
)
from .sim.faults import FaultKind, FaultSchedule, random_fault_schedule
from .core import (
    ClusterContextSwitch,
    ContextSwitchOptimizer,
    ReconfigurationPlan,
    ReconfigurationPlanner,
    build_plan,
    plan_cost,
)
from .model import (
    Configuration,
    Node,
    ResourceVector,
    VirtualMachine,
    VJob,
    VJobQueue,
    VJobState,
    VMState,
    make_working_nodes,
)

__version__ = "1.1.0"

__all__ = [
    "config",
    "Among",
    "Ban",
    "ConstraintViolationRecord",
    "Fence",
    "Gather",
    "Lonely",
    "MaxOnline",
    "PlacementConstraint",
    "Root",
    "RunningCapacity",
    "Spread",
    "ControlLoop",
    "Decision",
    "DecisionModule",
    "ExperimentBuilder",
    "FaultKind",
    "FaultRecord",
    "FaultSchedule",
    "random_fault_schedule",
    "LoopObserver",
    "RunResult",
    "Scenario",
    "UnknownDecisionModuleError",
    "available_decision_modules",
    "get_decision_module",
    "register_decision_module",
    "ClusterContextSwitch",
    "ContextSwitchOptimizer",
    "ReconfigurationPlan",
    "ReconfigurationPlanner",
    "build_plan",
    "plan_cost",
    "Configuration",
    "Node",
    "ResourceVector",
    "VirtualMachine",
    "VJob",
    "VJobQueue",
    "VJobState",
    "VMState",
    "make_working_nodes",
    "__version__",
]
