"""Reproduction of "Cluster-Wide Context Switch of Virtualized Jobs".

Hermenier, Lèbre, Menaud — INRIA RR-6929 / HPDC 2010.

The package provides:

* :mod:`repro.model` — nodes, VMs, vjobs, configurations, viability;
* :mod:`repro.cp` — a finite-domain constraint solver (Choco replacement);
* :mod:`repro.core` — the cluster-wide context switch: actions, cost model,
  reconfiguration graphs/plans, planner and CP optimizer;
* :mod:`repro.decision` — decision modules (FFD, RJSP, dynamic consolidation,
  FCFS + EASY backfilling baseline);
* :mod:`repro.sim` — a discrete-event cluster simulator calibrated on the
  paper's measurements (Xen/Ganglia/NFS substitute);
* :mod:`repro.entropy` — the observe/decide/plan/execute control loop;
* :mod:`repro.workloads` — NASGrid-like vjobs and configuration generators;
* :mod:`repro.analysis` — metrics and report helpers for the experiments.
"""

from . import config
from .core import (
    ClusterContextSwitch,
    ContextSwitchOptimizer,
    ReconfigurationPlan,
    ReconfigurationPlanner,
    build_plan,
    plan_cost,
)
from .model import (
    Configuration,
    Node,
    ResourceVector,
    VirtualMachine,
    VJob,
    VJobQueue,
    VJobState,
    VMState,
    make_working_nodes,
)

__version__ = "1.0.0"

__all__ = [
    "config",
    "ClusterContextSwitch",
    "ContextSwitchOptimizer",
    "ReconfigurationPlan",
    "ReconfigurationPlanner",
    "build_plan",
    "plan_cost",
    "Configuration",
    "Node",
    "ResourceVector",
    "VirtualMachine",
    "VJob",
    "VJobQueue",
    "VJobState",
    "VMState",
    "make_working_nodes",
    "__version__",
]
