"""Reproduction of "Cluster-Wide Context Switch of Virtualized Jobs".

Hermenier, Lèbre, Menaud — INRIA RR-6929 / HPDC 2010.

The package provides:

* :mod:`repro.api` — the public experiment API: the pluggable
  observe/decide/plan/execute control loop, the ``Scenario`` /
  ``ExperimentBuilder`` facade, the decision-module protocol and registry,
  and the structured ``RunResult``;
* :mod:`repro.model` — nodes, VMs, vjobs, configurations, viability;
* :mod:`repro.cp` — a finite-domain constraint solver (Choco replacement);
* :mod:`repro.constraints` — the declarative placement-constraint catalog
  (``Spread``, ``Gather``, ``Ban``, ``Fence``, ``Among``, ``Root``,
  ``MaxOnline``, ``RunningCapacity``, ``Lonely``), compiled into the CP
  optimizer and checked end to end;
* :mod:`repro.core` — the cluster-wide context switch: actions, cost model,
  reconfiguration graphs/plans, planner and CP optimizer;
* :mod:`repro.scale` — scale-out: the interference partitioner, the
  parallel zone optimizer (``Scenario(engine="partitioned")``) and the
  campaign runner for grids of scenarios;
* :mod:`repro.instances` — the standalone benchmark suite: versioned
  problem instances (fleet + vjobs + constraints + faults + seed as one
  canonical JSON document), cluster-trace ingestion, the
  optimizer-independent ``repro-verify`` plan verifier and baseline floors;
* :mod:`repro.decision` — decision modules (FFD, RJSP, dynamic consolidation,
  FCFS + EASY backfilling baseline), all registered in :mod:`repro.api`;
* :mod:`repro.sim` — a discrete-event cluster simulator calibrated on the
  paper's measurements (Xen/Ganglia/NFS substitute);
* :mod:`repro.entropy` — the historical loop entry point and the
  static-allocation baseline;
* :mod:`repro.workloads` — NASGrid-like vjobs and configuration generators;
* :mod:`repro.analysis` — metrics and report helpers for the experiments;
* :mod:`repro.testing` — factories shared by the test-suite and examples.

Quickstart::

    from repro import Scenario
    from repro.model import make_working_nodes
    from repro.workloads import paper_experiment_vjobs

    scenario = Scenario(
        nodes=make_working_nodes(11, cpu_capacity=2, memory_capacity=3584),
        workloads=paper_experiment_vjobs(count=8, vm_count=9),
        policy="consolidation",
    )
    result = scenario.run()
    print(result.makespan, result.switch_count)

Top-level exports resolve lazily (PEP 562): ``import repro`` — and therefore
any ``repro.<subpackage>`` import — stays cheap, and consumers that only need
the model or the constraint checker (the ``repro-verify`` verifier most of
all) never load the CP solver, the optimizer or the decision policies.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - static-analysis / IDE resolution only
    from . import config
    from .api import (
        ConstraintViolationRecord,
        ControlLoop,
        Decision,
        DecisionModule,
        ExperimentBuilder,
        FaultRecord,
        LoopObserver,
        RunResult,
        Scenario,
        UnknownDecisionModuleError,
        available_decision_modules,
        get_decision_module,
        register_decision_module,
    )
    from .constraints import (
        Among,
        Ban,
        Fence,
        Gather,
        Lonely,
        MaxOnline,
        PlacementConstraint,
        Root,
        RunningCapacity,
        Spread,
    )
    from .core import (
        ClusterContextSwitch,
        ContextSwitchOptimizer,
        ReconfigurationPlan,
        ReconfigurationPlanner,
        build_plan,
        plan_cost,
    )
    from .model import (
        Configuration,
        Node,
        ResourceVector,
        VirtualMachine,
        VJob,
        VJobQueue,
        VJobState,
        VMState,
        make_working_nodes,
    )
    from .sim.faults import FaultKind, FaultSchedule, random_fault_schedule

__version__ = "1.2.0"

#: Export name -> defining module (relative), resolved on first access.
_EXPORTS = {
    "config": ".config",
    "ConstraintViolationRecord": ".api",
    "ControlLoop": ".api",
    "Decision": ".api",
    "DecisionModule": ".api",
    "ExperimentBuilder": ".api",
    "FaultRecord": ".api",
    "LoopObserver": ".api",
    "RunResult": ".api",
    "Scenario": ".api",
    "UnknownDecisionModuleError": ".api",
    "available_decision_modules": ".api",
    "get_decision_module": ".api",
    "register_decision_module": ".api",
    "Among": ".constraints",
    "Ban": ".constraints",
    "Fence": ".constraints",
    "Gather": ".constraints",
    "Lonely": ".constraints",
    "MaxOnline": ".constraints",
    "PlacementConstraint": ".constraints",
    "Root": ".constraints",
    "RunningCapacity": ".constraints",
    "Spread": ".constraints",
    "FaultKind": ".sim.faults",
    "FaultSchedule": ".sim.faults",
    "random_fault_schedule": ".sim.faults",
    "ClusterContextSwitch": ".core",
    "ContextSwitchOptimizer": ".core",
    "ReconfigurationPlan": ".core",
    "ReconfigurationPlanner": ".core",
    "build_plan": ".core",
    "plan_cost": ".core",
    "Configuration": ".model",
    "Node": ".model",
    "ResourceVector": ".model",
    "VirtualMachine": ".model",
    "VJob": ".model",
    "VJobQueue": ".model",
    "VJobState": ".model",
    "VMState": ".model",
    "make_working_nodes": ".model",
}

__all__ = [*_EXPORTS, "__version__"]


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    module = importlib.import_module(module_name, __name__)
    value = module if module_name == f".{name}" else getattr(module, name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
