"""``python -m repro.service`` / the ``repro-operator`` console script.

Boots an :class:`~repro.service.OperatorDaemon` for a scenario described in
a JSON file (``--scenario-file``) or, without one, a small built-in demo
fleet — then serves until interrupted.  ``--run`` starts the control loop
immediately; otherwise the loop waits for ``POST /run``.

Scenario file shape (every key optional except ``nodes``/``workloads``)::

    {
      "nodes": [{"name": "node-0", "cpu_capacity": 2, "memory_capacity": 3584}],
      "workloads": [{"name": "job-0", "vm_count": 2, "duration": 240.0}],
      "policy": "consolidation",
      "optimizer_timeout": 10.0,
      "use_optimizer": true,
      "sla_factor": 6.0,
      "faults": [{"kind": "node_crash", "target": "node-0", "at": 120.0}]
    }

Workload entries take the same two spellings as ``POST /vjobs`` (simple spec
or full ``{"vjob": ..., "traces": ...}`` form — see
:func:`repro.service.serialize.workload_from_dict`).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence

from ..api.scenario import Scenario
from ..model.node import Node, make_working_nodes
from ..sim.faults import FaultSchedule
from ..testing import make_workload
from .daemon import OperatorDaemon
from .serialize import fault_event_from_dict, workload_from_dict


def _nodes_from_spec(spec: Any) -> list[Node]:
    nodes = []
    for entry in spec:
        nodes.append(
            Node(
                name=str(entry["name"]),
                cpu_capacity=int(entry.get("cpu_capacity", 2)),
                memory_capacity=int(entry.get("memory_capacity", 3584)),
            )
        )
    return nodes


def scenario_from_file(path: str) -> Scenario:
    """Build a :class:`Scenario` from the JSON shape documented above."""
    payload: Mapping[str, Any] = json.loads(Path(path).read_text())
    faults: Optional[FaultSchedule] = None
    if payload.get("faults"):
        faults = FaultSchedule()
        for event_spec in payload["faults"]:
            faults.add(fault_event_from_dict(event_spec))
    return Scenario(
        nodes=_nodes_from_spec(payload["nodes"]),
        workloads=[workload_from_dict(w) for w in payload["workloads"]],
        policy=payload.get("policy", "consolidation"),
        policy_options=dict(payload.get("policy_options", {})),
        optimizer_timeout=float(payload.get("optimizer_timeout", 10.0)),
        use_optimizer=bool(payload.get("use_optimizer", True)),
        sla_factor=(
            float(payload["sla_factor"])
            if payload.get("sla_factor") is not None
            else None
        ),
        max_time=float(payload.get("max_time", 24 * 3600.0)),
        faults=faults,
    )


def demo_scenario() -> Scenario:
    """Four paper-class nodes, three two-VM vjobs — enough to watch the
    loop consolidate on a dashboard."""
    return Scenario(
        nodes=make_working_nodes(4),
        workloads=[
            make_workload(f"job-{index}", vm_count=2, duration=240.0 + 60.0 * index)
            for index in range(3)
        ],
        optimizer_timeout=2.0,
        use_optimizer=False,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-operator",
        description="Serve a repro scenario behind the operator daemon.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8090, help="0 picks an ephemeral port"
    )
    parser.add_argument(
        "--scenario-file",
        help="JSON scenario description (default: a built-in demo fleet)",
    )
    parser.add_argument(
        "--audit-log", help="mirror the audit log to this JSONL file"
    )
    parser.add_argument(
        "--run",
        action="store_true",
        help="start the control loop immediately instead of waiting for POST /run",
    )
    parser.add_argument(
        "--oneshot",
        action="store_true",
        help="with --run: exit once the run finishes (for smoke tests)",
    )
    args = parser.parse_args(argv)

    scenario = (
        scenario_from_file(args.scenario_file)
        if args.scenario_file
        else demo_scenario()
    )
    daemon = OperatorDaemon(
        scenario, host=args.host, port=args.port, audit_path=args.audit_log
    )
    with daemon:
        print(f"repro-operator serving on {daemon.url}", flush=True)
        if args.run:
            daemon.start_run()
        try:
            if args.run and args.oneshot:
                state = daemon.wait()
                print(f"run finished: {state}", flush=True)
                return 0 if state == "completed" else 1
            while True:
                time.sleep(3600.0)
        except KeyboardInterrupt:
            print("shutting down", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
