"""The command queue the control loop drains between rounds.

HTTP handler threads (or any other producer) push commands; the loop pops
and applies them at the next iteration boundary, *before* observing the
cluster — so a command always takes effect at a well-defined point of
simulated time, runs are deterministic for a given arrival round, and no
producer ever touches live simulation state concurrently with the loop.

Two operator commands are provided — submit a vjob workload mid-run, inject
a fault — plus a generic :meth:`LoopCommandQueue.call` escape hatch.  A
command that raises is recorded (``errors``) and does not poison the queue:
the loop keeps running, the daemon reports the failure.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Callable, List, Tuple

from ..model.vjob import VJobState
from ..sim.faults import FaultEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.loop import ControlLoop

#: A command: applied as ``command(loop, now)`` at an iteration boundary.
LoopCommand = Callable[["ControlLoop", float], None]


class LoopCommandQueue:
    """Thread-safe FIFO of commands drained by the control loop.

    The loop calls :meth:`drain` once per iteration (its only coupling to
    this module — the queue is duck-typed there); producers use
    :meth:`submit_workload`, :meth:`inject_fault` or :meth:`call`.
    """

    def __init__(self) -> None:
        self._pending: List[Tuple[str, LoopCommand]] = []
        self._lock = threading.Lock()
        #: ``(label, repr(error))`` of every command that raised during a
        #: drain, in application order.
        self.errors: List[Tuple[str, str]] = []
        #: Labels of successfully applied commands, in application order.
        self.applied: List[str] = []

    # ------------------------------------------------------------------ #
    # producers                                                           #
    # ------------------------------------------------------------------ #

    def call(self, command: LoopCommand, label: str = "call") -> None:
        """Enqueue an arbitrary ``command(loop, now)`` callable."""
        with self._lock:
            self._pending.append((label, command))

    def submit_workload(self, workload: Any) -> None:
        """Enqueue a :class:`~repro.workloads.traces.VJobWorkload` for
        mid-run submission.

        Applied at the next iteration boundary: the vjob's VMs join the
        cluster in the Waiting state and the vjob is submitted at the current
        simulated time (an earlier ``submitted_at`` is bumped — a vjob cannot
        arrive in the past).
        """

        def apply(loop: "ControlLoop", now: float) -> None:
            vjob = workload.vjob
            existing = {w.vjob.name for w in loop.workloads}
            if vjob.name in existing:
                raise ValueError(f"vjob {vjob.name!r} is already submitted")
            if vjob.state is not VJobState.WAITING:
                raise ValueError(
                    f"vjob {vjob.name!r} is not in its initial WAITING state"
                )
            vjob.submitted_at = max(vjob.submitted_at, now)
            for vm in vjob.vms:
                loop.cluster.add_vm(vm)
            loop.workloads.append(workload)
            loop.progress[vjob.name] = 0.0

        self.call(apply, label=f"submit_vjob:{workload.vjob.name}")

    def inject_fault(self, event: FaultEvent) -> None:
        """Enqueue a fault event for the run's injector.

        The loop must have been built with a fault injector (the daemon
        always attaches one — an empty schedule if the scenario declared
        none); an event scheduled in the simulated past fires at the next
        iteration boundary instead.
        """

        def apply(loop: "ControlLoop", now: float) -> None:
            if loop.faults is None:
                raise RuntimeError(
                    "this run has no fault injector; build the scenario with "
                    "faults=FaultSchedule() (Scenario.serve does this) to "
                    "accept runtime fault injection"
                )
            loop.faults.inject(event)

        self.call(apply, label=f"inject_fault:{event.kind.value}:{event.target}")

    # ------------------------------------------------------------------ #
    # the loop side                                                       #
    # ------------------------------------------------------------------ #

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._pending)

    def drain(self, loop: "ControlLoop", now: float) -> bool:
        """Apply every queued command against ``loop`` at time ``now``.

        Returns True when at least one command was applied successfully (the
        loop then refreshes its derived VM-to-vjob mapping).  A failing
        command is recorded on :attr:`errors` and skipped.
        """
        with self._lock:
            commands, self._pending = self._pending, []
        changed = False
        for label, command in commands:
            try:
                command(loop, now)
            except Exception as error:
                with self._lock:
                    self.errors.append((label, repr(error)))
            else:
                changed = True
                with self._lock:
                    self.applied.append(label)
        return changed
