"""Prometheus-style metrics: counters, gauges, histograms, text exposition.

A tiny, stdlib-only metrics layer in the spirit of ``prometheus_client``: the
daemon's ``GET /metrics`` renders every registered metric in the Prometheus
text exposition format (version 0.0.4), so the reproduction's control loop
can be scraped by a real Prometheus exactly like descheduler-sim's closed
loop.  :func:`parse_prometheus_text` is the validating inverse used by the
tests and the CI service-smoke job.

All metric types are thread-safe (the control-loop thread writes while
scrape threads render) and support optional labels::

    registry = MetricsRegistry()
    faults = registry.counter("repro_faults_total", "Faults applied.")
    faults.inc(kind="node_crash")
    print(registry.render())
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Iterable, Mapping, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_prometheus_text",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default histogram buckets (seconds) — sized for control-loop round
#: latencies, from sub-millisecond no-op rounds to multi-second CP solves.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0
)


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Shared bookkeeping: name, help text, per-label-set storage."""

    type_name = "untyped"

    def __init__(self, name: str, help_text: str) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help_text = help_text
        self._lock = threading.Lock()

    def render(self) -> list[str]:
        raise NotImplementedError

    def _header(self) -> list[str]:
        return [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.type_name}",
        ]


class Counter(_Metric):
    """A monotonically increasing value, optionally split by labels."""

    type_name = "counter"

    def __init__(self, name: str, help_text: str) -> None:
        super().__init__(name, help_text)
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    @property
    def total(self) -> float:
        """Sum over every label set."""
        with self._lock:
            return sum(self._values.values())

    def render(self) -> list[str]:
        lines = self._header()
        with self._lock:
            items = sorted(self._values.items())
        if not items:
            # An idle counter still exposes its zero: dashboards can tell
            # "never fired" from "metric does not exist".
            lines.append(f"{self.name} 0")
            return lines
        for key, value in items:
            lines.append(
                f"{self.name}{_format_labels(dict(key))} {_format_value(value)}"
            )
        return lines


class Gauge(_Metric):
    """A value that goes up and down (fleet size, viability, queue depth)."""

    type_name = "gauge"

    def __init__(self, name: str, help_text: str) -> None:
        super().__init__(name, help_text)
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def render(self) -> list[str]:
        lines = self._header()
        with self._lock:
            items = sorted(self._values.items())
        if not items:
            lines.append(f"{self.name} 0")
            return lines
        for key, value in items:
            lines.append(
                f"{self.name}{_format_labels(dict(key))} {_format_value(value)}"
            )
        return lines


class Histogram(_Metric):
    """A cumulative-bucket histogram in the Prometheus convention:
    ``<name>_bucket{le="..."}`` series plus ``_sum`` and ``_count``."""

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text)
        if not buckets:
            raise ValueError("a histogram needs at least one bucket")
        bounds = sorted(float(b) for b in buckets)
        if bounds != list(dict.fromkeys(bounds)):
            raise ValueError("histogram buckets must be strictly increasing")
        self.buckets = tuple(bounds)
        self._counts = [0] * (len(self.buckets) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[index] += 1
                    return
            self._counts[-1] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def render(self) -> list[str]:
        lines = self._header()
        with self._lock:
            counts = list(self._counts)
            total_sum, total_count = self._sum, self._count
        cumulative = 0
        for bound, bucket_count in zip(self.buckets, counts):
            cumulative += bucket_count
            lines.append(
                f'{self.name}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
            )
        cumulative += counts[-1]
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{self.name}_sum {_format_value(total_sum)}")
        lines.append(f"{self.name}_count {total_count}")
        return lines


class MetricsRegistry:
    """An ordered collection of metrics rendered as one text document."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def register(self, metric: _Metric) -> _Metric:
        with self._lock:
            if metric.name in self._metrics:
                raise ValueError(f"metric {metric.name!r} already registered")
            self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help_text: str) -> Counter:
        return self.register(Counter(name, help_text))  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str) -> Gauge:
        return self.register(Gauge(name, help_text))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self.register(Histogram(name, help_text, buckets))  # type: ignore[return-value]

    def get(self, name: str) -> _Metric:
        with self._lock:
            return self._metrics[name]

    def names(self) -> list[str]:
        with self._lock:
            return list(self._metrics)

    def render(self) -> str:
        """The whole registry in Prometheus text format (0.0.4)."""
        with self._lock:
            metrics = list(self._metrics.values())
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_prometheus_text(
    text: str,
) -> dict[str, list[tuple[dict[str, str], float]]]:
    """Parse a Prometheus text-format document into
    ``{series_name: [(labels, value), ...]}``.

    Validating: an unparseable sample line, a sample whose name was not
    announced by a ``# TYPE`` header (histogram ``_bucket``/``_sum``/
    ``_count`` suffixes are resolved to their base metric) or a malformed
    label set raises :class:`ValueError`.  This is what "``/metrics`` output
    parses as valid Prometheus text format" means in the tests and the CI
    smoke job.
    """
    declared: dict[str, str] = {}
    series: dict[str, list[tuple[dict[str, str], float]]] = {}
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"line {number}: malformed TYPE comment: {raw!r}")
            declared[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {number}: unparseable sample: {raw!r}")
        name = match.group("name")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            stripped = name[: -len(suffix)] if name.endswith(suffix) else None
            if stripped and declared.get(stripped) == "histogram":
                base = stripped
                break
        if base not in declared:
            raise ValueError(
                f"line {number}: sample {name!r} has no preceding # TYPE"
            )
        labels_text = match.group("labels") or ""
        labels: dict[str, str] = {}
        if labels_text:
            consumed = 0
            for label_match in _LABEL_RE.finditer(labels_text):
                labels[label_match.group(1)] = (
                    label_match.group(2)
                    .replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
                consumed += len(label_match.group(0))
            plain = labels_text.replace(",", "").replace(" ", "")
            matched = "".join(
                f'{k}="{_escape_label(v)}"' for k, v in labels.items()
            ).replace(" ", "")
            if len(plain) != len(matched):
                raise ValueError(
                    f"line {number}: malformed label set {{{labels_text}}}"
                )
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {number}: bad sample value {match.group('value')!r}"
            ) from None
        series.setdefault(name, []).append((labels, value))
    return series
