"""A thin HTTP client for the operator daemon (stdlib ``urllib`` only).

Used by the tests, the examples and as a remote campaign execution target;
every method maps 1:1 onto a daemon endpoint and returns the decoded JSON
payload (or, for :meth:`OperatorClient.result`, a rebuilt
:class:`~repro.api.results.RunResult`).  Error responses raise
:class:`ServiceError` carrying the HTTP status and the daemon's message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Mapping, Optional, Union
from urllib.parse import urlencode

from ..api.results import RunResult
from ..sim.faults import FaultEvent
from ..workloads.traces import VJobWorkload
from .metrics import parse_prometheus_text
from .serialize import fault_event_to_dict, workload_to_dict

__all__ = ["OperatorClient", "ServiceError"]


class ServiceError(Exception):
    """An HTTP error response from the daemon."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class OperatorClient:
    """Talks to one :class:`~repro.service.OperatorDaemon`.

    ``base_url`` is the daemon's root (``http://127.0.0.1:8090``); pass a
    per-request ``timeout`` ceiling suited to the deployment (local daemons
    answer in milliseconds).
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # plumbing                                                            #
    # ------------------------------------------------------------------ #

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, Any]] = None,
        query: Optional[Mapping[str, Any]] = None,
    ) -> tuple[int, str]:
        url = self.base_url + path
        if query:
            url += "?" + urlencode(
                {k: v for k, v in query.items() if v is not None}
            )
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                return reply.status, reply.read().decode()
        except urllib.error.HTTPError as error:
            body = error.read().decode()
            try:
                message = json.loads(body).get("error", body)
            except (json.JSONDecodeError, AttributeError):
                message = body
            raise ServiceError(error.code, str(message)) from None

    def _get_json(
        self, path: str, query: Optional[Mapping[str, Any]] = None
    ) -> Any:
        _, body = self._request("GET", path, query=query)
        return json.loads(body)

    def _post_json(self, path: str, payload: Mapping[str, Any]) -> Any:
        _, body = self._request("POST", path, payload=payload)
        return json.loads(body)

    # ------------------------------------------------------------------ #
    # read endpoints                                                      #
    # ------------------------------------------------------------------ #

    def healthz(self) -> Dict[str, Any]:
        return self._get_json("/healthz")

    def state(self) -> str:
        return str(self.healthz()["state"])

    def configuration(self) -> Dict[str, Any]:
        return self._get_json("/configuration")

    def telemetry(self, limit: Optional[int] = None) -> Dict[str, Any]:
        return self._get_json("/telemetry", query={"limit": limit})

    def metrics_text(self) -> str:
        """The raw ``GET /metrics`` document (Prometheus text format)."""
        _, body = self._request("GET", "/metrics")
        return body

    def metrics(self) -> Dict[str, Any]:
        """Parsed metrics: ``{series_name: [(labels, value), ...]}``
        (validating — raises ValueError on malformed exposition)."""
        return parse_prometheus_text(self.metrics_text())

    def plans(self) -> list[Dict[str, Any]]:
        return list(self._get_json("/plans")["plans"])

    def audit(
        self,
        offset: int = 0,
        limit: Optional[int] = None,
        kind: Optional[str] = None,
    ) -> list[Dict[str, Any]]:
        return list(
            self._get_json(
                "/audit", query={"offset": offset or None, "limit": limit, "kind": kind}
            )["entries"]
        )

    def commands(self) -> Dict[str, Any]:
        """Queued/applied/failed operator commands, for post-run assertions."""
        return self._get_json("/commands")

    def trace(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """The run's span tree (live snapshot while running, final tree
        when done; ``None`` for untraced scenarios) plus the daemon's recent
        per-request HTTP spans — ``limit`` bounds the request list."""
        return self._get_json("/trace", query={"limit": limit})

    def result(self) -> RunResult:
        """The finished run as a full :class:`RunResult` (404 → ServiceError
        while the run is still going)."""
        return RunResult.from_dict(self._get_json("/result"))

    # ------------------------------------------------------------------ #
    # write endpoints                                                     #
    # ------------------------------------------------------------------ #

    def start_run(self) -> Dict[str, Any]:
        return self._post_json("/run", {})

    def submit_vjob(
        self, workload: Union[VJobWorkload, Mapping[str, Any]]
    ) -> Dict[str, Any]:
        """Submit a workload: a live :class:`VJobWorkload` (serialized in
        full fidelity) or an already-JSON payload (full form or the simple
        ``{"name", "vm_count", ...}`` spec)."""
        if isinstance(workload, VJobWorkload):
            payload: Mapping[str, Any] = workload_to_dict(workload)
        else:
            payload = workload
        return self._post_json("/vjobs", payload)

    def inject_fault(
        self, event: Union[FaultEvent, Mapping[str, Any]]
    ) -> Dict[str, Any]:
        if isinstance(event, FaultEvent):
            payload: Mapping[str, Any] = fault_event_to_dict(event)
        else:
            payload = event
        return self._post_json("/faults", payload)

    def start_campaign(self, spec: Mapping[str, Any]) -> Dict[str, Any]:
        return self._post_json("/campaigns", spec)

    def campaign(self, campaign_id: str) -> Dict[str, Any]:
        return self._get_json(f"/campaigns/{campaign_id}")

    def campaigns(self) -> list[Dict[str, Any]]:
        return list(self._get_json("/campaigns")["campaigns"])

    # ------------------------------------------------------------------ #
    # convenience                                                         #
    # ------------------------------------------------------------------ #

    def wait(self, timeout: float = 300.0, poll: float = 0.05) -> str:
        """Poll ``/healthz`` until the run leaves the ``running`` state (or
        never entered it); returns the final state."""
        deadline = time.monotonic() + timeout
        while True:
            state = self.state()
            if state in ("completed", "failed"):
                return state
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"run still {state!r} after {timeout} seconds"
                )
            time.sleep(poll)

    def wait_campaign(
        self, campaign_id: str, timeout: float = 300.0, poll: float = 0.1
    ) -> Dict[str, Any]:
        """Poll a campaign until it completes or fails; returns its status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.campaign(campaign_id)
            if status["status"] in ("completed", "failed"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"campaign {campaign_id} still running after {timeout} s"
                )
            time.sleep(poll)
