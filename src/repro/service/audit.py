"""Append-only audit log of everything the operator daemon executed.

Every plan the control loop executed, every action inside it, every fault,
repair, vjob submission and completion becomes one numbered entry — held in
memory and, when a path is given, mirrored to an append-only JSON-lines file
(one ``json.dumps(..., sort_keys=True)`` object per line, RackMind-style
attestation).  The file survives the daemon; :meth:`AuditLog.load` reads it
back (skipping a malformed trailing line from a crash mid-write, like the
campaign store) and :func:`replay_plans` reconstructs the executed plan
sequence byte-for-byte from either a live log or a loaded file.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Iterable, Optional, Union

__all__ = ["AuditLog", "replay_plans"]


class AuditLog:
    """Thread-safe, append-only event log with an optional JSONL mirror.

    Each entry is a dict with at least ``seq`` (0-based, gap-free), ``kind``
    and ``time`` (simulated seconds); the remaining keys are the event
    payload.  Entries are immutable once appended.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else None
        self._entries: list[dict[str, Any]] = []
        self._lock = threading.Lock()
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)

    def append(self, kind: str, time: float, **payload: Any) -> dict[str, Any]:
        """Append one entry; returns the stored (sequenced) entry."""
        with self._lock:
            entry = {"seq": len(self._entries), "kind": kind, "time": time}
            entry.update(payload)
            self._entries.append(entry)
            if self.path is not None:
                with self.path.open("a") as handle:
                    handle.write(json.dumps(entry, sort_keys=True) + "\n")
        return entry

    def entries(
        self,
        offset: int = 0,
        limit: Optional[int] = None,
        kind: Optional[str] = None,
    ) -> list[dict[str, Any]]:
        """A slice of the log, oldest first (filtered by ``kind`` if given)."""
        with self._lock:
            entries = list(self._entries)
        if kind is not None:
            entries = [e for e in entries if e["kind"] == kind]
        if offset:
            entries = entries[offset:]
        if limit is not None:
            entries = entries[:limit]
        return entries

    def of_kind(self, kind: str) -> list[dict[str, Any]]:
        return self.entries(kind=kind)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def load(path: Union[str, Path]) -> list[dict[str, Any]]:
        """Entries of a JSONL audit file, oldest first.

        A malformed line (daemon killed mid-write) ends the load: everything
        before it is returned, everything after would be ambiguous.
        """
        entries: list[dict[str, Any]] = []
        file_path = Path(path)
        if not file_path.exists():
            return entries
        for line in file_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                break
            if isinstance(entry, dict):
                entries.append(entry)
        return entries


def replay_plans(
    source: Union[AuditLog, str, Path, Iterable[dict[str, Any]]],
) -> list[dict[str, Any]]:
    """Reconstruct the executed plan sequence from an audit log.

    ``source`` is a live :class:`AuditLog`, a path to its JSONL mirror, or an
    already-loaded entry list.  Returns the ``plan`` payloads of every
    ``kind == "plan"`` entry in execution order — the exact dicts
    (:func:`repro.service.serialize.plan_to_dict` shape) the observer stored,
    so re-serializing with ``json.dumps(..., sort_keys=True)`` reproduces the
    original byte sequence.
    """
    if isinstance(source, AuditLog):
        entries: Iterable[dict[str, Any]] = source.entries()
    elif isinstance(source, (str, Path)):
        entries = AuditLog.load(source)
    else:
        entries = source
    plans = []
    for entry in entries:
        if entry.get("kind") == "plan":
            plans.append(entry["plan"])
    return plans
