"""Bounded, thread-safe telemetry ring buffer.

The operator daemon keeps the last ``capacity`` per-round samples in memory —
a ring buffer, like RackMind's telemetry store: old samples fall off the
back, the daemon never grows without bound, and ``GET /telemetry`` serves
whatever window is still held together with how much history was dropped.

Samples are plain dicts (JSON-ready); the
:class:`~repro.service.observer.ServiceObserver` appends one per control-loop
round.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Optional


class TelemetryBuffer:
    """A bounded ring buffer of per-round telemetry samples.

    Thread-safe: the control-loop thread appends while HTTP handler threads
    snapshot.  ``total`` counts every sample ever appended; ``dropped`` is
    how many fell off the back (``total - len(buffer)``).
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity <= 0:
            raise ValueError("telemetry capacity must be positive")
        self.capacity = capacity
        self._samples: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._total = 0
        self._lock = threading.Lock()

    def append(self, sample: dict[str, Any]) -> None:
        with self._lock:
            self._samples.append(sample)
            self._total += 1

    def snapshot(self, limit: Optional[int] = None) -> list[dict[str, Any]]:
        """The retained samples, oldest first (the last ``limit`` if given)."""
        with self._lock:
            samples = list(self._samples)
        if limit is not None and limit >= 0:
            samples = samples[-limit:] if limit else []
        return samples

    @property
    def total(self) -> int:
        """Samples ever appended (dropped ones included)."""
        with self._lock:
            return self._total

    @property
    def dropped(self) -> int:
        """Samples that fell off the back of the ring."""
        with self._lock:
            return self._total - len(self._samples)

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def clear(self) -> None:
        with self._lock:
            self._samples.clear()
            self._total = 0
