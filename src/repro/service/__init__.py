"""repro.service — the long-running operator daemon and its building blocks.

The paper's control loop (Section 3.1) is a cluster *operator*: it watches,
decides and reconfigures forever.  This package gives the reproduction that
operational shape: :class:`OperatorDaemon` runs one scenario's loop behind a
REST/JSON API (stdlib ``http.server``; no new dependencies) with live
telemetry, Prometheus-format metrics and an append-only audit log whose
replay loader reconstructs the executed plan sequence byte-for-byte.

Quick start::

    from repro import Scenario

    daemon = Scenario(nodes=nodes, workloads=workloads).serve(port=0)
    with daemon:                      # binds the server; .port is now real
        daemon.start_run()
        ...                           # curl http://127.0.0.1:<port>/metrics
        daemon.wait()

Every piece also works standalone: :class:`ServiceObserver` attaches to any
run via ``Scenario(observers=[...])``; :class:`LoopCommandQueue` feeds a
loop built with ``Scenario.build(command_queue=...)``; the
:mod:`~repro.service.metrics` registry renders valid Prometheus text without
any HTTP on top.  See ``docs/OPERATOR_GUIDE.md`` for the endpoint reference.
"""

from .audit import AuditLog, replay_plans
from .client import OperatorClient, ServiceError
from .commands import LoopCommandQueue
from .daemon import (
    OperatorDaemon,
    campaign_factory_names,
    default_campaign_factory,
    register_campaign_factory,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
)
from .observer import ServiceObserver
from .telemetry import TelemetryBuffer

__all__ = [
    "AuditLog",
    "Counter",
    "Gauge",
    "Histogram",
    "LoopCommandQueue",
    "MetricsRegistry",
    "OperatorClient",
    "OperatorDaemon",
    "ServiceError",
    "ServiceObserver",
    "TelemetryBuffer",
    "campaign_factory_names",
    "default_campaign_factory",
    "parse_prometheus_text",
    "register_campaign_factory",
    "replay_plans",
]
