"""The observer that feeds the daemon: telemetry, metrics, audit entries.

:class:`ServiceObserver` is a plain :class:`~repro.api.events.LoopObserver`
— it attaches to any run through ``Scenario(observers=[...])``, with or
without the HTTP daemon on top — and translates loop events into the three
operator-facing stores:

* a :class:`~repro.service.telemetry.TelemetryBuffer` of per-round samples
  (bounded ring buffer, oldest dropped first);
* a :class:`~repro.service.metrics.MetricsRegistry` rendered by
  ``GET /metrics`` (wall-clock round-latency histogram, migration /
  violation / fault / SLA counters, live gauges);
* an :class:`~repro.service.audit.AuditLog` recording every executed plan
  (in the canonical :func:`~repro.service.serialize.plan_to_dict` shape,
  replayable byte-for-byte), every fault, repair and vjob completion.

The observer also keeps a thread-safe snapshot of the latest observed
configuration for ``GET /configuration``.
"""

from __future__ import annotations

import threading
import time as _time
from typing import TYPE_CHECKING, Any, Optional

from ..api.events import LoopObserver
from .audit import AuditLog
from .metrics import MetricsRegistry
from .serialize import ConfigurationSnapshot, capture_configuration, plan_to_dict
from .telemetry import TelemetryBuffer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.context_switch import ContextSwitchReport
    from ..model.configuration import Configuration
    from ..api.decision import Decision
    from ..api.results import (
        ConstraintViolationRecord,
        ContextSwitchRecord,
        FaultRecord,
        RunResult,
        UtilizationSample,
    )

__all__ = ["ServiceObserver"]


class ServiceObserver(LoopObserver):
    """Streams a run into telemetry, metrics and the audit log.

    All three stores can be shared with a daemon (which serves them over
    HTTP) or used standalone; pass ``audit_path`` to mirror the audit log to
    an append-only JSONL file that survives the process.
    """

    def __init__(
        self,
        telemetry: Optional[TelemetryBuffer] = None,
        metrics: Optional[MetricsRegistry] = None,
        audit: Optional[AuditLog] = None,
        audit_path: Optional[str] = None,
        telemetry_capacity: int = 512,
    ) -> None:
        self.telemetry = telemetry or TelemetryBuffer(capacity=telemetry_capacity)
        self.metrics = metrics or MetricsRegistry()
        self.audit = audit or AuditLog(path=audit_path)
        self._lock = threading.Lock()
        self._snapshot: Optional[ConfigurationSnapshot] = None
        self._last_time = 0.0
        self._round_started: Optional[float] = None
        self._result: Optional["RunResult"] = None

        m = self.metrics
        self.rounds = m.counter(
            "repro_loop_rounds_total", "Control-loop iterations executed."
        )
        self.round_latency = m.histogram(
            "repro_round_latency_seconds",
            "Wall-clock latency of one observe/decide/plan/execute round.",
        )
        self.switches = m.counter(
            "repro_context_switches_total",
            "Cluster-wide context switches executed (labelled by fallback use).",
        )
        self.actions = m.counter(
            "repro_actions_total",
            "VM actions executed across all switches, by kind.",
        )
        self.switch_cost = m.counter(
            "repro_switch_cost_total",
            "Cumulative cost (paper Section 4.3 estimate) of executed switches.",
        )
        self.faults = m.counter(
            "repro_faults_total", "Faults applied to the cluster, by kind."
        )
        self.failed_migrations = m.counter(
            "repro_failed_migrations_total",
            "Migration attempts aborted by fault injection.",
        )
        self.repairs = m.counter(
            "repro_repairs_total", "VJobs recovered after a crash."
        )
        self.repair_solves = m.counter(
            "repro_repair_solves_total",
            "Planning rounds solved by the repair engine, by mode "
            "(repair = incremental over the dirty region, full = fallback).",
        )
        self.repair_dirty_vms = m.histogram(
            "repro_repair_dirty_vms",
            "Size of the dirty region the repair engine re-solved per round.",
            buckets=(1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0),
        )
        self.repair_latency = m.histogram(
            "repro_repair_latency_seconds",
            "Crash-to-running repair latency (simulated seconds).",
            buckets=(30.0, 60.0, 120.0, 240.0, 480.0, 960.0, 1920.0),
        )
        self.solver_backtracks = m.counter(
            "repro_solver_backtracks_total",
            "CP search backtracks across planning solves (merged across "
            "zones for the partitioned engines).",
        )
        self.solver_propagations = m.counter(
            "repro_solver_propagations_total",
            "CP constraint propagations across planning solves (merged "
            "across zones for the partitioned engines).",
        )
        self.solver_nodes = m.counter(
            "repro_solver_nodes_total",
            "CP search-tree nodes explored across planning solves.",
        )
        self.violations = m.counter(
            "repro_constraint_violations_total",
            "Placement-constraint violations observed, by phase.",
        )
        self.completions = m.counter(
            "repro_vjobs_completed_total", "VJobs that ran to completion."
        )
        self.sla_violations = m.counter(
            "repro_sla_violations_total",
            "VJobs whose turnaround exceeded the SLA factor (set at run end).",
        )
        self.lost_vjobs = m.counter(
            "repro_lost_vjobs_total",
            "Submitted vjobs that never completed (set at run end).",
        )
        self.sim_time = m.gauge(
            "repro_simulated_time_seconds", "Latest observed simulated time."
        )
        self.viable = m.gauge(
            "repro_configuration_viable",
            "1 when the latest observed configuration is viable, else 0.",
        )
        self.vm_count = m.gauge(
            "repro_vms", "VMs known to the cluster at the latest observation."
        )
        self.runs_completed = m.gauge(
            "repro_runs_completed", "Control-loop runs finished by this observer."
        )

    # ------------------------------------------------------------------ #
    # state exposed to the daemon                                         #
    # ------------------------------------------------------------------ #

    @property
    def configuration(self) -> Optional[dict[str, Any]]:
        """Latest observed configuration snapshot (JSON-safe), or None
        before the first iteration.  The JSON shape is built here, on
        demand: ``GET /configuration`` is operator-paced while
        :meth:`on_iteration` runs on every loop round."""
        with self._lock:
            snapshot = self._snapshot
        return None if snapshot is None else snapshot.to_dict()

    @property
    def simulated_time(self) -> float:
        with self._lock:
            return self._last_time

    @property
    def result(self) -> Optional["RunResult"]:
        """The finished run's result, or None while running."""
        with self._lock:
            return self._result

    # ------------------------------------------------------------------ #
    # LoopObserver hooks                                                  #
    # ------------------------------------------------------------------ #

    def on_run_start(self, loop: Any) -> None:
        with self._lock:
            self._result = None
        self.audit.append(
            "run_start",
            0.0,
            policy=getattr(loop, "policy_name", ""),
            nodes=len(loop.cluster.configuration.nodes),
            workloads=len(loop.workloads),
        )

    def on_iteration(self, time: float, configuration: "Configuration") -> None:
        snapshot = capture_configuration(configuration)
        with self._lock:
            self._snapshot = snapshot
            self._last_time = time
            self._round_started = _time.perf_counter()
        self.rounds.inc()
        self.sim_time.set(time)
        self.viable.set(1.0 if snapshot.viable else 0.0)
        self.vm_count.set(len(snapshot.vms))

    def on_switch(
        self, record: "ContextSwitchRecord", report: "ContextSwitchReport"
    ) -> None:
        fallback = "yes" if record.used_fallback else "no"
        self.switches.inc(fallback=fallback)
        self.switch_cost.inc(record.cost)
        for kind, count in (
            ("migrate", record.migrations),
            ("run", record.runs),
            ("stop", record.stops),
            ("suspend", record.suspends),
            ("resume", record.resumes),
        ):
            if count:
                self.actions.inc(count, kind=kind)
        if record.failed_migrations:
            self.failed_migrations.inc(record.failed_migrations)
        repair = getattr(report, "repair", None)
        if repair is not None:
            self.repair_solves.inc(mode=str(repair.get("mode", "full")))
            self.repair_dirty_vms.observe(float(repair.get("dirty_count", 0)))
        statistics = getattr(report, "statistics", None)
        if statistics is not None:
            if statistics.backtracks:
                self.solver_backtracks.inc(statistics.backtracks)
            if statistics.propagations:
                self.solver_propagations.inc(statistics.propagations)
            if statistics.nodes:
                self.solver_nodes.inc(statistics.nodes)
        self.audit.append(
            "plan",
            record.time,
            cost=record.cost,
            duration=record.duration,
            used_fallback=record.used_fallback,
            plan=plan_to_dict(report.plan),
        )

    def on_sample(self, sample: "UtilizationSample") -> None:
        with self._lock:
            started = self._round_started
            self._round_started = None
        if started is not None:
            self.round_latency.observe(_time.perf_counter() - started)
        self.telemetry.append(
            {
                "time": sample.time,
                "cpu_demand_units": sample.cpu_demand_units,
                "cpu_used_units": sample.cpu_used_units,
                "cpu_capacity_units": sample.cpu_capacity_units,
                "memory_used_mb": sample.memory_used_mb,
                "cpu_fraction": sample.cpu_fraction,
                "cpu_demand_fraction": sample.cpu_demand_fraction,
            }
        )

    def on_vjob_completed(self, name: str, time: float) -> None:
        self.completions.inc()
        self.audit.append("vjob_completed", time, vjob=name)

    def on_fault(self, record: "FaultRecord") -> None:
        self.faults.inc(kind=record.kind)
        self.audit.append(
            "fault",
            record.time,
            fault_kind=record.kind,
            target=record.target,
            detected_at=record.detected_at,
            affected_vjobs=list(record.affected_vjobs),
            detail=record.detail,
        )

    def on_repair(self, name: str, latency: float) -> None:
        self.repairs.inc()
        self.repair_latency.observe(latency)
        self.audit.append("repair", self.simulated_time, vjob=name, latency=latency)

    def on_constraint_violation(
        self, record: "ConstraintViolationRecord"
    ) -> None:
        self.violations.inc(phase=record.phase)
        self.audit.append(
            "constraint_violation",
            record.time,
            constraint=record.constraint,
            phase=record.phase,
            message=record.message,
        )

    def on_run_end(self, result: "RunResult") -> None:
        with self._lock:
            self._result = result
        if result.sla_violations:
            self.sla_violations.inc(len(result.sla_violations))
        if result.unfinished_vjobs:
            self.lost_vjobs.inc(len(result.unfinished_vjobs))
        self.runs_completed.inc()
        self.audit.append(
            "run_end",
            result.makespan,
            makespan=result.makespan,
            switches=result.switch_count,
            completed=len(result.completion_times),
            lost=result.lost_vjob_count,
        )
