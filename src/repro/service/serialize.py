"""JSON codecs shared by the operator daemon, its client and the audit log.

Everything the service moves over HTTP — workloads, fault events, executed
plans, configurations — is serialized here, in one place, so the daemon, the
:mod:`repro.service.client` helpers and the audit replay loader cannot drift
apart.  All codecs are pure functions over plain ``dict``/``list`` values
(``json``-ready); the ``*_from_dict`` direction validates its input and
raises :class:`ValueError` with an operator-readable message on bad payloads,
which the daemon maps to HTTP 400.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from ..core.actions import Action, Migrate, Resume, Run, Stop, Suspend
from ..core.plan import ReconfigurationPlan
from ..model.configuration import Configuration
from ..model.vjob import VJob
from ..model.vm import VirtualMachine
from ..sim.faults import FaultEvent, FaultKind
from ..workloads.traces import DemandTrace, Phase, VJobWorkload

__all__ = [
    "action_to_dict",
    "action_from_dict",
    "plan_to_dict",
    "configuration_to_dict",
    "workload_to_dict",
    "workload_from_dict",
    "fault_event_to_dict",
    "fault_event_from_dict",
]


def _require(payload: Mapping[str, Any], key: str, context: str) -> Any:
    if key not in payload:
        raise ValueError(f"{context}: missing required field {key!r}")
    return payload[key]


# --------------------------------------------------------------------- #
# actions and plans (the audit log's canonical plan serialization)       #
# --------------------------------------------------------------------- #


def action_to_dict(action: Action) -> dict[str, Any]:
    """One VM action as a JSON-safe dict (kind + the nodes it touches)."""
    data: dict[str, Any] = {"kind": action.kind.value, "vm": action.vm}
    if isinstance(action, (Run, Stop, Suspend)):
        data["node"] = action.node
    elif isinstance(action, Migrate):
        data["source"] = action.source_node
        data["destination"] = action.destination_node
    elif isinstance(action, Resume):
        data["image_node"] = action.image_node
        data["destination"] = action.destination_node
    return data


def action_from_dict(payload: Mapping[str, Any]) -> Action:
    """Inverse of :func:`action_to_dict` (used by the audit replay loader)."""
    kind = _require(payload, "kind", "action")
    vm = _require(payload, "vm", "action")
    if kind == "run":
        return Run(vm=vm, node=_require(payload, "node", "run action"))
    if kind == "stop":
        return Stop(vm=vm, node=_require(payload, "node", "stop action"))
    if kind == "suspend":
        return Suspend(vm=vm, node=_require(payload, "node", "suspend action"))
    if kind == "migrate":
        return Migrate(
            vm=vm,
            source_node=_require(payload, "source", "migrate action"),
            destination_node=_require(payload, "destination", "migrate action"),
        )
    if kind == "resume":
        return Resume(
            vm=vm,
            image_node=payload.get("image_node"),
            destination_node=_require(payload, "destination", "resume action"),
        )
    raise ValueError(f"action: unknown kind {kind!r}")


def plan_to_dict(plan: ReconfigurationPlan) -> dict[str, Any]:
    """The canonical serialization of an executed reconfiguration plan:
    ordered pools of parallel actions.  The audit log stores exactly this
    shape and the replay loader reproduces it byte-for-byte (under
    ``json.dumps(..., sort_keys=True)``)."""
    return {
        "pools": [
            [action_to_dict(action) for action in pool] for pool in plan.pools
        ],
        "action_count": plan.action_count(),
    }


# --------------------------------------------------------------------- #
# configurations                                                         #
# --------------------------------------------------------------------- #


def capture_configuration(configuration: Configuration) -> "ConfigurationSnapshot":
    """Capture an immutable snapshot of a live configuration — a few dict
    copies and tuples of frozen dataclasses, cheap enough for every
    control-loop round.  JSON rendering is deferred to
    :meth:`ConfigurationSnapshot.to_dict` (paid only when an operator
    actually requests ``GET /configuration``)."""
    return ConfigurationSnapshot(
        nodes=configuration.nodes,
        vms=configuration.vms,
        placement=dict(configuration.placement()),
        states={
            name: state.value for name, state in configuration.states().items()
        },
        viable=configuration.is_viable(),
    )


class ConfigurationSnapshot:
    """Frozen view of a configuration at one iteration boundary."""

    __slots__ = ("nodes", "vms", "placement", "states", "viable")

    def __init__(
        self,
        nodes: Any,
        vms: Any,
        placement: dict[str, str],
        states: dict[str, str],
        viable: bool,
    ) -> None:
        self.nodes = nodes
        self.vms = vms
        self.placement = placement
        self.states = states
        self.viable = viable

    def to_dict(self) -> dict[str, Any]:
        """The JSON shape served by ``GET /configuration``: fleet, per-VM
        state/placement, viability."""
        return {
            "nodes": [
                {
                    "name": node.name,
                    "cpu_capacity": node.cpu_capacity,
                    "memory_capacity": node.memory_capacity,
                    "role": node.role.value,
                }
                for node in self.nodes
            ],
            "vms": {
                vm.name: {
                    "memory": vm.memory,
                    "cpu_demand": vm.cpu_demand,
                    "vjob": vm.vjob,
                    "state": self.states[vm.name],
                    "node": self.placement.get(vm.name),
                }
                for vm in self.vms
            },
            "placement": dict(self.placement),
            "viable": self.viable,
        }


def configuration_to_dict(configuration: Configuration) -> dict[str, Any]:
    """Snapshot of a configuration: fleet, per-VM state/placement, viability."""
    return capture_configuration(configuration).to_dict()


# --------------------------------------------------------------------- #
# workloads                                                              #
# --------------------------------------------------------------------- #


def workload_to_dict(workload: VJobWorkload) -> dict[str, Any]:
    """Full-fidelity serialization of a vjob workload (VMs + demand traces),
    so churn-generated workloads submit over HTTP unchanged."""
    vjob = workload.vjob
    return {
        "vjob": {
            "name": vjob.name,
            "priority": vjob.priority,
            "submitted_at": vjob.submitted_at,
            "vms": [
                {
                    "name": vm.name,
                    "memory": vm.memory,
                    "cpu_demand": vm.cpu_demand,
                    "vjob": vm.vjob,
                }
                for vm in vjob.vms
            ],
        },
        "traces": {
            name: [[phase.duration, phase.cpu_demand] for phase in trace.phases]
            for name, trace in workload.traces.items()
        },
    }


def _trace_from_segments(segments: Any, context: str) -> DemandTrace:
    if not isinstance(segments, (list, tuple)) or not segments:
        raise ValueError(f"{context}: a trace needs a non-empty segment list")
    phases = []
    for segment in segments:
        if not isinstance(segment, (list, tuple)) or len(segment) != 2:
            raise ValueError(
                f"{context}: each trace segment is a [duration, cpu_demand] "
                f"pair, got {segment!r}"
            )
        duration, demand = segment
        phases.append(Phase(duration=float(duration), cpu_demand=int(demand)))
    return DemandTrace(phases)


def workload_from_dict(payload: Mapping[str, Any]) -> VJobWorkload:
    """Inverse of :func:`workload_to_dict`.

    Two spellings are accepted:

    * the full form — ``{"vjob": {...}, "traces": {...}}`` as produced by
      :func:`workload_to_dict`;
    * a simple spec — ``{"name": ..., "vm_count": 2, "memory": 512,
      "duration": 120.0, "cpu": 1, "priority": 0, "submitted_at": 0.0}``
      building ``vm_count`` identical constant-demand VMs (the
      :func:`repro.testing.make_workload` shape, for curl-friendly use).
    """
    if "vjob" in payload:
        vjob_spec = payload["vjob"]
        name = _require(vjob_spec, "name", "workload.vjob")
        vms = []
        for vm_spec in _require(vjob_spec, "vms", "workload.vjob"):
            vms.append(
                VirtualMachine(
                    name=_require(vm_spec, "name", "workload VM"),
                    memory=int(_require(vm_spec, "memory", "workload VM")),
                    cpu_demand=int(vm_spec.get("cpu_demand", 0)),
                    vjob=vm_spec.get("vjob", name),
                )
            )
        vjob = VJob(
            name=name,
            vms=vms,
            priority=int(vjob_spec.get("priority", 0)),
            submitted_at=float(vjob_spec.get("submitted_at", 0.0)),
        )
        traces_spec = _require(payload, "traces", "workload")
        traces = {
            vm_name: _trace_from_segments(segments, f"trace of {vm_name!r}")
            for vm_name, segments in traces_spec.items()
        }
        return VJobWorkload(vjob=vjob, traces=traces)

    name = _require(payload, "name", "vjob spec")
    vm_count = int(payload.get("vm_count", 2))
    memory = int(payload.get("memory", 512))
    cpu = int(payload.get("cpu", 1))
    duration = float(payload.get("duration", 120.0))
    if vm_count <= 0:
        raise ValueError(f"vjob spec {name!r}: vm_count must be positive")
    if duration <= 0:
        raise ValueError(f"vjob spec {name!r}: duration must be positive")
    vms = [
        VirtualMachine(
            name=f"{name}.vm{i}", memory=memory, cpu_demand=cpu, vjob=name
        )
        for i in range(vm_count)
    ]
    vjob = VJob(
        name=name,
        vms=vms,
        priority=int(payload.get("priority", 0)),
        submitted_at=float(payload.get("submitted_at", 0.0)),
    )
    trace = DemandTrace([Phase(duration=duration, cpu_demand=cpu)])
    return VJobWorkload(vjob=vjob, traces={vm.name: trace for vm in vms})


# --------------------------------------------------------------------- #
# fault events                                                           #
# --------------------------------------------------------------------- #


def fault_event_to_dict(event: FaultEvent) -> dict[str, Any]:
    data: dict[str, Any] = {
        "kind": event.kind.value,
        "target": event.target,
        "at": event.time,
    }
    if event.kind is FaultKind.NODE_SLOWDOWN:
        data["factor"] = event.factor
        data["duration"] = event.duration
    return data


def fault_event_from_dict(payload: Mapping[str, Any]) -> FaultEvent:
    """Build a :class:`~repro.sim.faults.FaultEvent` from its JSON form:
    ``{"kind": "node_crash", "target": "node-1", "at": 120.0}`` plus
    ``factor``/``duration`` for slowdowns."""
    kind_value = _require(payload, "kind", "fault")
    try:
        kind = FaultKind(kind_value)
    except ValueError:
        valid = ", ".join(sorted(k.value for k in FaultKind))
        raise ValueError(
            f"fault: unknown kind {kind_value!r} (expected one of: {valid})"
        ) from None
    target = _require(payload, "target", "fault")
    at = float(payload.get("at", payload.get("time", 0.0)))
    factor = float(payload.get("factor", 2.0 if kind is FaultKind.NODE_SLOWDOWN else 1.0))
    duration = float(payload.get("duration", 0.0))
    return FaultEvent(
        time=at, kind=kind, target=target, factor=factor, duration=duration
    )


def optional_float(payload: Mapping[str, Any], key: str) -> Optional[float]:
    """``payload[key]`` as a float, or ``None`` when absent/null."""
    value = payload.get(key)
    return None if value is None else float(value)
