"""The long-running operator daemon: REST/JSON over the control loop.

:class:`OperatorDaemon` owns one :class:`~repro.api.scenario.Scenario`, runs
its control loop on a worker thread and serves live state over HTTP
(stdlib-only: :class:`http.server.ThreadingHTTPServer`, no new
dependencies).  Endpoints:

======================  =====================================================
``GET /healthz``        liveness + run state
``GET /configuration``  latest observed placement and viability
``GET /telemetry``      bounded ring buffer of per-round utilization samples
``GET /metrics``        Prometheus text format (round latency histogram,
                        migration/violation/fault/SLA counters)
``GET /plans``          executed plan sequence (audit replay)
``GET /audit``          append-only audit log entries
``GET /result``         the finished run's full :class:`RunResult`
``GET /trace``          the run's span tree (:mod:`repro.obs`) — live
                        snapshot while running, final tree when done — plus
                        recent per-request HTTP spans
``POST /run``           start the scenario's control loop
``POST /vjobs``         submit a vjob workload (applied mid-run at the next
                        iteration boundary)
``POST /faults``        inject a fault (crash / slowdown / migration failure)
``POST /campaigns``     launch a resumable :mod:`repro.scale` campaign grid
``GET /campaigns``      poll campaign progress
======================  =====================================================

Commands posted while the loop runs are queued on a
:class:`~repro.service.commands.LoopCommandQueue` and drained by the loop at
iteration boundaries — so HTTP never races the simulation, and a scenario
driven entirely over HTTP (vjobs and faults posted before ``POST /run``)
reproduces the exact deterministic :class:`RunResult` of the equivalent
in-process run.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional
from urllib.parse import parse_qs, urlparse

from ..api.loop import ControlLoop
from ..api.results import RunResult
from ..api.scenario import Scenario
from ..obs import Tracer
from ..scale.campaign import (
    CampaignPoint,
    CampaignSpec,
    CampaignStore,
    run_campaign,
)
from ..sim.faults import FaultSchedule
from .audit import replay_plans
from .commands import LoopCommandQueue
from .observer import ServiceObserver
from .serialize import fault_event_from_dict, workload_from_dict

__all__ = [
    "OperatorDaemon",
    "register_campaign_factory",
    "campaign_factory_names",
    "default_campaign_factory",
]


# --------------------------------------------------------------------- #
# campaign factories                                                     #
# --------------------------------------------------------------------- #
#
# HTTP cannot ship callables, so campaigns launched over the wire name a
# registered factory.  Factories must be module-level (picklable) when the
# campaign uses the process executor.


def default_campaign_factory(point: CampaignPoint) -> Scenario:
    """The built-in demo grid: a seeded fleet of ``point.fleet`` paper-class
    nodes running three two-VM vjobs, optionally under a node crash
    (``faults="crash"``)."""
    from ..model.node import make_working_nodes
    from ..testing import make_workload

    nodes = make_working_nodes(point.fleet)
    workloads = [
        make_workload(f"job-{index}", vm_count=2, duration=240.0 + 60.0 * index)
        for index in range(3)
    ]
    faults: Optional[FaultSchedule] = None
    if point.faults == "crash":
        faults = FaultSchedule().node_crash(nodes[-1].name, at=120.0)
    return Scenario(
        nodes=nodes,
        workloads=workloads,
        policy=point.policy,
        optimizer_timeout=2.0,
        use_optimizer=False,
        faults=faults,
    )


_CAMPAIGN_FACTORIES: Dict[str, Callable[[CampaignPoint], Scenario]] = {
    "default": default_campaign_factory,
}


def register_campaign_factory(
    name: str, factory: Callable[[CampaignPoint], Scenario]
) -> None:
    """Expose ``factory`` to ``POST /campaigns`` under ``name``.  The
    factory must be module-level (picklable) to run under the campaign's
    process executor; the serial executor takes any callable."""
    _CAMPAIGN_FACTORIES[name] = factory


def campaign_factory_names() -> list[str]:
    return sorted(_CAMPAIGN_FACTORIES)


class _HTTPError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class OperatorDaemon:
    """One scenario, one control loop, one HTTP server.

    The daemon is inert until :meth:`start` binds the server (``port=0``
    picks an ephemeral port — read :attr:`port` afterwards).  The control
    loop itself starts on ``POST /run`` (or :meth:`start_run`) and runs
    exactly once per daemon: states ``idle`` → ``running`` →
    ``completed``/``failed``.  Use as a context manager to guarantee
    shutdown.
    """

    def __init__(
        self,
        scenario: Scenario,
        host: str = "127.0.0.1",
        port: int = 8090,
        audit_path: Optional[str] = None,
        telemetry_capacity: int = 512,
        request_trace_capacity: int = 256,
    ) -> None:
        self.scenario = scenario
        self.host = host
        self.port = port
        self.observer = ServiceObserver(
            audit_path=audit_path, telemetry_capacity=telemetry_capacity
        )
        self.commands = LoopCommandQueue()
        # A fault injector is always attached so POST /faults works even on
        # scenarios that declared no schedule of their own.
        if self.scenario.faults is None:
            self.scenario.faults = FaultSchedule()
        self.scenario.observe(self.observer)

        self._lock = threading.Lock()
        self._state = "idle"
        self._error: Optional[str] = None
        self._run_thread: Optional[threading.Thread] = None
        #: The live control loop of the in-flight run, published by the run
        #: thread as soon as it is built so :meth:`close` can stop it.
        self._loop: Optional[ControlLoop] = None
        self._closing = False
        self._campaigns: Dict[str, Dict[str, Any]] = {}
        self._campaign_counter = 0
        #: Completed per-request HTTP span dicts, newest last (bounded so a
        #: chatty operator cannot grow the daemon without limit).
        self._request_spans: deque = deque(maxlen=request_trace_capacity)
        self._server: Optional[ThreadingHTTPServer] = None
        self._server_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # lifecycle                                                           #
    # ------------------------------------------------------------------ #

    def start(self) -> "OperatorDaemon":
        """Bind the HTTP server and serve requests on a daemon thread."""
        if self._server is not None:
            return self
        server = ThreadingHTTPServer((self.host, self.port), _Handler)
        server.daemon_threads = True
        server.operator = self  # type: ignore[attr-defined]
        self.port = server.server_address[1]
        self._server = server
        self._server_thread = threading.Thread(
            target=server.serve_forever, name="repro-operator-http", daemon=True
        )
        self._server_thread.start()
        return self

    def close(self) -> None:
        """Stop serving and wind down an in-flight run.

        A running control loop is asked to stop at its next iteration
        boundary (:meth:`ControlLoop.request_stop`) and joined, so its
        planning engine is released deterministically — a partitioned or
        repair run must never leak its worker-process pool past the daemon's
        lifetime.  Idempotent."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._server_thread is not None:
            self._server_thread.join(timeout=5.0)
            self._server_thread = None
        with self._lock:
            self._closing = True
            loop, thread = self._loop, self._run_thread
        if loop is not None:
            loop.request_stop()
        if thread is not None:
            thread.join(timeout=30.0)
        if loop is not None:
            # run() already closed the loop on its way out; this is the
            # belt-and-braces for a run thread that never reached run()
            # (close() is idempotent).
            loop.close()

    def __enter__(self) -> "OperatorDaemon":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------ #
    # run state machine                                                   #
    # ------------------------------------------------------------------ #

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def result(self) -> Optional[RunResult]:
        return self.observer.result

    def start_run(self) -> None:
        """Launch the scenario's control loop on a worker thread.

        One run per daemon: the loop mutates vjob state, so a second run
        would observe terminated vjobs — restart the daemon with a fresh
        scenario instead.
        """
        with self._lock:
            if self._state == "running":
                raise _HTTPError(409, "a run is already in progress")
            if self._state in ("completed", "failed"):
                raise _HTTPError(
                    409,
                    "this daemon's run already finished; a run mutates vjob "
                    "state, so restart the daemon with a fresh scenario",
                )
            self._state = "running"

        def _run() -> None:
            try:
                loop = self.scenario.build(command_queue=self.commands)
                with self._lock:
                    self._loop = loop
                    closing = self._closing
                if closing:
                    # close() raced the build: stop before the first
                    # iteration so run() releases the loop immediately.
                    loop.request_stop()
                loop.run()
            except Exception as error:
                with self._lock:
                    self._state = "failed"
                    self._error = repr(error)
            else:
                with self._lock:
                    self._state = "completed"

        self._run_thread = threading.Thread(
            target=_run, name="repro-operator-loop", daemon=True
        )
        self._run_thread.start()

    def wait(self, timeout: Optional[float] = None) -> str:
        """Block until the run finishes; returns the final state."""
        thread = self._run_thread
        if thread is not None:
            thread.join(timeout=timeout)
        return self.state

    # ------------------------------------------------------------------ #
    # tracing                                                             #
    # ------------------------------------------------------------------ #

    def run_trace(self) -> Optional[Dict[str, Any]]:
        """The run's span tree: the finished result's attached trace when
        the run is over, a live snapshot of the control loop's tracer while
        it runs, or ``None`` for an untraced scenario."""
        result = self.observer.result
        if result is not None and result.trace is not None:
            return result.trace
        with self._lock:
            loop = self._loop
        tracer = getattr(loop, "tracer", None)
        if tracer is not None:
            return tracer.to_dict()
        return None

    def record_request_span(self, span_dict: Dict[str, Any]) -> None:
        """Store one finished per-request span (called by HTTP threads)."""
        with self._lock:
            self._request_spans.append(span_dict)

    def request_spans(
        self, limit: Optional[int] = None
    ) -> list[Dict[str, Any]]:
        with self._lock:
            spans = list(self._request_spans)
        if limit is not None and limit >= 0:
            spans = spans[-limit:]
        return spans

    # ------------------------------------------------------------------ #
    # campaigns                                                           #
    # ------------------------------------------------------------------ #

    def start_campaign(self, spec: Dict[str, Any]) -> str:
        factory_name = str(spec.get("factory", "default"))
        factory = _CAMPAIGN_FACTORIES.get(factory_name)
        if factory is None:
            raise _HTTPError(
                400,
                f"unknown campaign factory {factory_name!r}; registered: "
                f"{campaign_factory_names()}",
            )
        policies = spec.get("policies")
        fleet_sizes = spec.get("fleet_sizes")
        if not policies or not fleet_sizes:
            raise _HTTPError(
                400, "a campaign needs non-empty 'policies' and 'fleet_sizes'"
            )
        campaign_spec = CampaignSpec(
            scenario_factory=factory,
            policies=[str(p) for p in policies],
            fleet_sizes=[int(f) for f in fleet_sizes],
            fault_labels=[str(f) for f in spec.get("fault_labels", ("none",))],
            seeds=[int(s) for s in spec.get("seeds", (0,))],
        )
        executor = str(spec.get("executor", "serial"))
        store_path = spec.get("store_path")
        resume = bool(spec.get("resume", True))
        max_workers = spec.get("max_workers")
        with self._lock:
            self._campaign_counter += 1
            campaign_id = f"campaign-{self._campaign_counter}"
            status: Dict[str, Any] = {
                "id": campaign_id,
                "factory": factory_name,
                "status": "running",
                "total": len(campaign_spec.points()),
                "completed": 0,
                "resumed": 0,
                "store_path": store_path,
                "error": None,
            }
            self._campaigns[campaign_id] = status

        def _run() -> None:
            try:
                result = run_campaign(
                    campaign_spec,
                    store_path=store_path,
                    executor=executor,
                    resume=resume,
                    max_workers=(
                        int(max_workers) if max_workers is not None else None
                    ),
                )
            except Exception as error:
                with self._lock:
                    status["status"] = "failed"
                    status["error"] = repr(error)
            else:
                with self._lock:
                    status["status"] = "completed"
                    status["completed"] = len(result.records)
                    status["resumed"] = result.resumed
                    status["aggregate"] = result.aggregate()

        threading.Thread(
            target=_run, name=f"repro-{campaign_id}", daemon=True
        ).start()
        return campaign_id

    def campaign_status(self, campaign_id: str) -> Dict[str, Any]:
        with self._lock:
            status = self._campaigns.get(campaign_id)
            if status is None:
                raise _HTTPError(404, f"no campaign {campaign_id!r}")
            status = dict(status)
        # Live progress for resumable campaigns: count what reached the store.
        if status["status"] == "running" and status.get("store_path"):
            status["completed"] = len(
                CampaignStore(str(status["store_path"])).load()
            )
        return status

    def campaigns(self) -> list[Dict[str, Any]]:
        with self._lock:
            ids = list(self._campaigns)
        return [self.campaign_status(campaign_id) for campaign_id in ids]

    # ------------------------------------------------------------------ #
    # request handling (called from HTTP threads)                         #
    # ------------------------------------------------------------------ #

    def handle_get(
        self, path: str, query: Dict[str, list[str]]
    ) -> tuple[int, Any]:
        if path == "/healthz":
            with self._lock:
                state, error = self._state, self._error
            return 200, {
                "status": "ok",
                "state": state,
                "error": error,
                "simulated_time": self.observer.simulated_time,
                "pending_commands": self.commands.pending,
            }
        if path == "/configuration":
            return 200, {
                "state": self.state,
                "simulated_time": self.observer.simulated_time,
                "configuration": self.observer.configuration,
            }
        if path == "/telemetry":
            limit = _int_param(query, "limit")
            return 200, {
                "samples": self.observer.telemetry.snapshot(limit=limit),
                "total": self.observer.telemetry.total,
                "dropped": self.observer.telemetry.dropped,
            }
        if path == "/metrics":
            return 200, self.observer.metrics.render()
        if path == "/plans":
            plans = replay_plans(self.observer.audit)
            return 200, {"plans": plans, "count": len(plans)}
        if path == "/audit":
            kinds = query.get("kind")
            entries = self.observer.audit.entries(
                offset=_int_param(query, "offset") or 0,
                limit=_int_param(query, "limit"),
                kind=kinds[0] if kinds else None,
            )
            return 200, {"entries": entries, "total": len(self.observer.audit)}
        if path == "/result":
            result = self.observer.result
            if result is None:
                raise _HTTPError(404, f"no result yet (state: {self.state})")
            return 200, result.to_dict()
        if path == "/trace":
            return 200, {
                "state": self.state,
                "trace": self.run_trace(),
                "requests": self.request_spans(
                    limit=_int_param(query, "limit")
                ),
            }
        if path == "/commands":
            return 200, {
                "pending": self.commands.pending,
                "applied": list(self.commands.applied),
                "errors": [
                    {"label": label, "error": error}
                    for label, error in self.commands.errors
                ],
            }
        if path == "/campaigns":
            return 200, {"campaigns": self.campaigns()}
        if path.startswith("/campaigns/"):
            return 200, self.campaign_status(path[len("/campaigns/"):])
        raise _HTTPError(404, f"unknown path {path!r}")

    def handle_post(self, path: str, payload: Any) -> tuple[int, Any]:
        if path == "/run":
            self.start_run()
            return 202, {"state": self.state}
        if path == "/vjobs":
            try:
                workload = workload_from_dict(_require_object(payload, "vjob"))
            except ValueError as error:
                raise _HTTPError(400, str(error)) from None
            self.commands.submit_workload(workload)
            return 202, {
                "queued": workload.vjob.name,
                "pending_commands": self.commands.pending,
            }
        if path == "/faults":
            try:
                event = fault_event_from_dict(_require_object(payload, "fault"))
            except ValueError as error:
                raise _HTTPError(400, str(error)) from None
            self.commands.inject_fault(event)
            return 202, {
                "queued": f"{event.kind.value}:{event.target}",
                "pending_commands": self.commands.pending,
            }
        if path == "/campaigns":
            campaign_id = self.start_campaign(
                _require_object(payload, "campaign")
            )
            return 202, self.campaign_status(campaign_id)
        raise _HTTPError(404, f"unknown path {path!r}")


def _require_object(payload: Any, what: str) -> Dict[str, Any]:
    if not isinstance(payload, dict):
        raise _HTTPError(400, f"the {what} payload must be a JSON object")
    return payload


def _int_param(query: Dict[str, list[str]], name: str) -> Optional[int]:
    values = query.get(name)
    if not values:
        return None
    try:
        return int(values[0])
    except ValueError:
        raise _HTTPError(400, f"query parameter {name!r} must be an integer")


class _Handler(BaseHTTPRequestHandler):
    """Maps HTTP requests onto the owning :class:`OperatorDaemon`."""

    server_version = "repro-operator/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def operator(self) -> OperatorDaemon:
        return self.server.operator  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        pass  # keep test output and operator terminals quiet

    def _reply(self, status: int, body: Any) -> None:
        if isinstance(body, str):
            data = body.encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            data = (json.dumps(body, sort_keys=True) + "\n").encode()
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _dispatch(self, handler: Callable[[], tuple[int, Any]]) -> None:
        # Every request gets its own transient tracer: the span times the
        # handler (not the socket write) and lands in the daemon's bounded
        # request-span buffer, served back by ``GET /trace``.
        tracer = Tracer(name="request")
        with tracer.activate() as root:
            root.set(method=self.command, path=urlparse(self.path).path)
            try:
                status, body = handler()
            except _HTTPError as error:
                status, body = error.status, {"error": error.message}
            except Exception as error:  # the daemon must outlive a bad request
                status, body = 500, {"error": repr(error)}
            root.set(status=status)
        self.operator.record_request_span(tracer.to_dict()["root"])
        self._reply(status, body)

    def do_GET(self) -> None:
        parsed = urlparse(self.path)
        query = parse_qs(parsed.query)
        self._dispatch(lambda: self.operator.handle_get(parsed.path, query))

    def do_POST(self) -> None:
        parsed = urlparse(self.path)

        def handle() -> tuple[int, Any]:
            length = int(self.headers.get("Content-Length", 0) or 0)
            raw = self.rfile.read(length) if length else b""
            if raw:
                try:
                    payload = json.loads(raw)
                except json.JSONDecodeError as error:
                    raise _HTTPError(400, f"request body is not JSON: {error}")
            else:
                payload = {}
            return self.operator.handle_post(parsed.path, payload)

        self._dispatch(handle)
