"""Incremental repair-based replanning (LNS warm-start).

Every control-loop round used to solve the CP model from scratch, even when
a fault or arrival perturbed only a handful of VMs.  This package adds the
repair mode BtrPlace pioneered on top of Entropy: seed the model with the
previous round's assignment, freeze the VMs outside the perturbed region,
and run a large-neighbourhood search over the dirty region only —
deterministically widening the neighbourhood on infeasibility and falling
back to the full monolithic solve as the last step, so ``engine="repair"``
is always safe to request.

* :class:`RepairOptimizer` — the drop-in optimizer wrapping either the
  monolithic :class:`~repro.core.optimizer.ContextSwitchOptimizer`
  (``engine="repair"``) or the partitioned
  :class:`~repro.scale.parallel.ParallelOptimizer`
  (``engine="repair-partitioned"``: repair inside dirty zones only,
  untouched zones reuse their previous sub-assignment verbatim);
* :class:`RepairResult` — an
  :class:`~repro.core.optimizer.OptimizationResult` carrying the repair
  trace (mode, dirty/frozen counts, attempts, fallback reason);
* :func:`compute_dirty_set` — the deterministic dirty-region rules
  (external marks, VMs needing placement, placements invalidated by
  shrunken constraints, relational closure, halo expansion), exposed for
  property tests.

Accepted plans always pass the same checker pipeline as a cold solve: the
inner optimizer's single global planner pass re-validates the whole
constraint catalog on every intermediate state.
"""

from .engine import RepairOptimizer, RepairResult, compute_dirty_set

__all__ = [
    "RepairOptimizer",
    "RepairResult",
    "compute_dirty_set",
]
