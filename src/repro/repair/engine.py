"""The repair optimizer: freeze the clean region, solve the dirty one.

The engine keeps the previous round's assignment across calls.  Each round
it derives the *dirty region* — the VMs whose placement may have to change —
from four deterministic rules (:func:`compute_dirty_set`):

1. **external marks** — VMs the control loop flagged as perturbed this round
   (crashed-node victims, new arrivals, members of violated constraints),
   handed over through :meth:`RepairOptimizer.mark_dirty`;
2. **needs placement** — VMs that must run but are not currently running
   (also covers resumes and failed migrations re-observed as waiting);
3. **invalidated placements** — running VMs whose current host is no longer
   allowed by the (possibly crash-shrunken) unary constraints, or whose host
   diverges from the previous assignment;
4. **relational closure and halo** — any dirty member of a relational group
   dirties the whole group, and ``halo`` rounds of co-host expansion dirty
   the VMs sharing a node with a dirty running VM.

Everything else is *frozen*: pinned to its current host and handed to the
inner optimizer as ``pinned``.  On infeasibility the neighbourhood widens
deterministically (the VMs frozen on the emptiest quarter, then half, of the
nodes are released), and the last step is always the full monolithic solve
with the caller's real fallback target — so the repair engine accepts
exactly the instances the cold solve accepts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from typing import Iterable, Mapping, Optional, Sequence, Set

from ..constraints.base import PlacementConstraint
from ..core.optimizer import ContextSwitchOptimizer, OptimizationResult
from ..model.configuration import Configuration
from ..model.errors import PlanningError
from ..model.vm import VMState
from ..obs import span

#: Smallest wall-clock budget a single LNS attempt can be carved down to —
#: mirrors the zone floor of :mod:`repro.scale.parallel`.
_MIN_ATTEMPT_TIMEOUT_S = 0.05

#: Floor of the full-solve fallback's budget, as a fraction of the global
#: timeout: failed LNS attempts may have burned the round, but the fallback
#: must still be able to find *a* solution.
_FALLBACK_TIMEOUT_FRACTION = 0.1


@dataclass
class RepairResult(OptimizationResult):
    """An :class:`~repro.core.optimizer.OptimizationResult` plus the repair
    trace.  ``mode`` is ``"repair"`` when a frozen-region solve was accepted
    and ``"full"`` when the engine fell back to the monolithic solve (cold
    start, fleet-wide dirty region, exhausted neighbourhood schedule or
    exhausted budget — see ``reason``)."""

    mode: str = "full"
    reason: str = ""
    dirty_count: int = 0
    frozen_count: int = 0
    attempts: int = 0
    #: Zones whose previous sub-assignment was reused verbatim (only set by
    #: the partitioned composition, ``engine="repair-partitioned"``).
    reused_zones: int = 0

    def trace(self) -> dict:
        """The repair telemetry attached to
        :class:`~repro.core.context_switch.ContextSwitchReport` and
        aggregated into ``RunResult.metadata["repair_engine"]``."""
        return {
            "mode": self.mode,
            "reason": self.reason,
            "dirty_count": self.dirty_count,
            "frozen_count": self.frozen_count,
            "attempts": self.attempts,
            "reused_zones": self.reused_zones,
        }


def _relational_closure(
    dirty: Set[str],
    constraints: Sequence[PlacementConstraint],
    placed: Set[str],
) -> None:
    """Dirty any relational group with a dirty member (in place, to a
    fixpoint: ``Among`` groups may chain through shared members)."""
    changed = True
    while changed:
        changed = False
        for constraint in constraints:
            if not getattr(constraint, "relational", True):
                # Unary constraints (Fence, Ban) restrict each member
                # independently — a dirty member never forces the others to
                # move; their per-VM domains are enforced by the
                # invalidated-placement rule instead.
                continue
            members = [vm for vm in constraint.vms if vm in placed]
            if len(members) < 2:
                continue
            if any(vm in dirty for vm in members) and not all(
                vm in dirty for vm in members
            ):
                dirty.update(members)
                changed = True


def compute_dirty_set(
    current: Configuration,
    states: Mapping[str, VMState],
    running_vms: Sequence[str],
    constraints: Sequence[PlacementConstraint] = (),
    marks: Iterable[str] = (),
    previous: Optional[Mapping[str, str]] = None,
    halo: int = 1,
) -> Set[str]:
    """The perturbed region of one round (see the module docstring rules).

    ``running_vms`` are the VMs whose target state is Running; ``marks``
    the externally flagged perturbations; ``previous`` the assignment of
    the last accepted round.  Deterministic: depends only on its inputs.
    """
    running_set = set(running_vms)
    node_names = current.node_names
    dirty: Set[str] = {vm for vm in marks if vm in running_set}
    for vm in running_vms:
        if vm in dirty:
            continue
        if current.state_of(vm) is not VMState.RUNNING:
            # Arrivals, resumes, crash victims: nothing to freeze.
            dirty.add(vm)
            continue
        host = current.location_of(vm)
        if previous is not None and previous.get(vm) != host:
            # Execution diverged from the last plan (e.g. a failed
            # migration): re-decide this VM rather than trusting the pin.
            dirty.add(vm)
            continue
        for constraint in constraints:
            allowed = constraint.allowed_nodes(vm, node_names, current)
            if allowed is not None and host not in allowed:
                # The placement was invalidated after the fact — typically
                # an elastic Fence that shrank when a node crashed.  The
                # frozen region must not pin onto a retired domain.
                dirty.add(vm)
                break
    _relational_closure(dirty, constraints, running_set)
    for _ in range(max(0, halo)):
        hosts = {
            current.location_of(vm)
            for vm in dirty
            if current.state_of(vm) is VMState.RUNNING
        }
        if not hosts:
            break
        before = len(dirty)
        for vm in running_vms:
            if (
                vm not in dirty
                and current.state_of(vm) is VMState.RUNNING
                and current.location_of(vm) in hosts
            ):
                dirty.add(vm)
        _relational_closure(dirty, constraints, running_set)
        if len(dirty) == before:
            break
    return dirty


class RepairOptimizer:
    """Drop-in optimizer adding incremental repair on top of ``inner``.

    ``inner`` is either a
    :class:`~repro.core.optimizer.ContextSwitchOptimizer`
    (``engine="repair"``) or a
    :class:`~repro.scale.parallel.ParallelOptimizer`
    (``engine="repair-partitioned"``); both accept ``pinned`` and share the
    mutable ``timeout`` attribute the repair engine carves per attempt.

    ``halo`` is the number of co-host expansion rounds applied to the dirty
    region (0 freezes everything but the directly perturbed VMs; larger
    values trade solve time for repacking freedom around the perturbation).
    ``lns_steps`` bounds the deterministic widening schedule before the
    full-solve fallback.
    """

    def __init__(
        self,
        inner,
        timeout: float = 40.0,
        halo: int = 1,
        lns_steps: int = 2,
    ) -> None:
        self.inner = inner
        self.timeout = timeout
        self.halo = halo
        self.lns_steps = lns_steps
        self._previous: Optional[dict[str, str]] = None
        self._marks: Set[str] = set()

    # ------------------------------------------------------------------ #
    # control-loop surface                                                #
    # ------------------------------------------------------------------ #

    def mark_dirty(self, vms: Iterable[str]) -> None:
        """Flag VMs as perturbed; consumed (and cleared) by the next
        :meth:`optimize` call."""
        self._marks.update(vms)

    @property
    def previous_assignment(self) -> Optional[Mapping[str, str]]:
        """The accepted assignment of the last round (``None`` before the
        first solve — the next call is a cold start)."""
        return self._previous

    def forget(self) -> None:
        """Drop the previous assignment: the next solve is a cold start."""
        self._previous = None

    def close(self) -> None:
        closer = getattr(self.inner, "close", None)
        if callable(closer):
            closer()

    # ------------------------------------------------------------------ #
    # solving                                                             #
    # ------------------------------------------------------------------ #

    def optimize(
        self,
        current: Configuration,
        target_states: Mapping[str, VMState],
        vjob_of_vm: Optional[Mapping[str, str]] = None,
        fallback_target: Optional[Configuration] = None,
        constraints: Sequence[PlacementConstraint] = (),
    ) -> RepairResult:
        """Same contract as :meth:`ContextSwitchOptimizer.optimize`.

        LNS attempts never use ``fallback_target`` — an infeasible frozen
        region must widen, not degrade to the FFD fallback — so only the
        final full solve can set ``used_fallback``.
        """
        marks = sorted(self._marks)
        self._marks.clear()
        deadline = time.monotonic() + self.timeout
        states = ContextSwitchOptimizer._complete_states(current, target_states)
        running_vms = [
            name for name, state in states.items() if state is VMState.RUNNING
        ]
        previous = self._previous
        saved_timeout = self.inner.timeout
        try:
            if previous is None:
                return self._full_solve(
                    current,
                    target_states,
                    vjob_of_vm,
                    fallback_target,
                    constraints,
                    deadline,
                    reason="cold start (no previous assignment)",
                    dirty_count=len(running_vms),
                    attempts=0,
                )
            dirty = compute_dirty_set(
                current,
                states,
                running_vms,
                constraints,
                marks,
                previous,
                self.halo,
            )
            attempts = 0
            for level in range(self.lns_steps + 1):
                pins = {
                    vm: current.location_of(vm)
                    for vm in running_vms
                    if vm not in dirty
                }
                if not pins:
                    return self._full_solve(
                        current,
                        target_states,
                        vjob_of_vm,
                        fallback_target,
                        constraints,
                        deadline,
                        reason="dirty region covers the whole fleet",
                        dirty_count=len(dirty),
                        attempts=attempts,
                    )
                remaining = deadline - time.monotonic()
                if attempts and remaining <= _MIN_ATTEMPT_TIMEOUT_S:
                    return self._full_solve(
                        current,
                        target_states,
                        vjob_of_vm,
                        fallback_target,
                        constraints,
                        deadline,
                        reason="neighbourhood budget exhausted",
                        dirty_count=len(dirty),
                        attempts=attempts,
                    )
                self.inner.timeout = max(_MIN_ATTEMPT_TIMEOUT_S, remaining)
                attempts += 1
                result: Optional[OptimizationResult]
                with span(
                    "repair-attempt",
                    level=level,
                    dirty=len(dirty),
                    frozen=len(pins),
                ) as attempt_span:
                    try:
                        result = self.inner.optimize(
                            current,
                            target_states,
                            vjob_of_vm=vjob_of_vm,
                            fallback_target=None,
                            constraints=constraints,
                            pinned=pins,
                        )
                    except PlanningError:
                        result = None
                    if result is None:
                        attempt_span.set(failed=True)
                if result is not None:
                    return self._accept(
                        result,
                        mode="repair",
                        reason=(
                            "repaired within the initial region"
                            if level == 0
                            else f"repaired after widening {level}x"
                        ),
                        dirty_count=len(dirty),
                        frozen_count=len(pins),
                        attempts=attempts,
                    )
                dirty |= self._widened(current, running_vms, dirty, level + 1)
                _relational_closure(dirty, constraints, set(running_vms))
            return self._full_solve(
                current,
                target_states,
                vjob_of_vm,
                fallback_target,
                constraints,
                deadline,
                reason=f"neighbourhood schedule exhausted ({attempts} attempts)",
                dirty_count=len(dirty),
                attempts=attempts,
            )
        finally:
            self.inner.timeout = saved_timeout

    # ------------------------------------------------------------------ #
    # internals                                                           #
    # ------------------------------------------------------------------ #

    def _widened(
        self,
        current: Configuration,
        running_vms: Sequence[str],
        dirty: Set[str],
        level: int,
    ) -> Set[str]:
        """Deterministic widening: release the VMs frozen on the emptiest
        ``level``/4 of the nodes (most free memory first) — capacity relief
        for a dirty region that does not fit between the frozen VMs."""
        node_names = current.node_names
        free: dict[str, list[int]] = {
            name: list(current.node(name).capacity.as_tuple())
            for name in node_names
        }
        for vm in running_vms:
            if current.state_of(vm) is VMState.RUNNING:
                cpu, memory = current.vm(vm).demand.as_tuple()
                host = current.location_of(vm)
                free[host][0] -= cpu
                free[host][1] -= memory
        count = max(1, len(node_names) * level // 4)
        emptiest = sorted(
            node_names, key=lambda name: (-free[name][1], -free[name][0], name)
        )[:count]
        hosts = set(emptiest)
        return {
            vm
            for vm in running_vms
            if vm not in dirty
            and current.state_of(vm) is VMState.RUNNING
            and current.location_of(vm) in hosts
        }

    def _full_solve(
        self,
        current: Configuration,
        target_states: Mapping[str, VMState],
        vjob_of_vm: Optional[Mapping[str, str]],
        fallback_target: Optional[Configuration],
        constraints: Sequence[PlacementConstraint],
        deadline: float,
        reason: str,
        dirty_count: int,
        attempts: int,
    ) -> RepairResult:
        remaining = max(
            self.timeout * _FALLBACK_TIMEOUT_FRACTION,
            deadline - time.monotonic(),
        )
        self.inner.timeout = remaining
        with span("full-solve", reason=reason, dirty=dirty_count):
            result = self.inner.optimize(
                current,
                target_states,
                vjob_of_vm=vjob_of_vm,
                fallback_target=fallback_target,
                constraints=constraints,
            )
        return self._accept(
            result,
            mode="full",
            reason=reason,
            dirty_count=dirty_count,
            frozen_count=0,
            attempts=attempts + 1,
        )

    def _accept(
        self,
        result: OptimizationResult,
        mode: str,
        reason: str,
        dirty_count: int,
        frozen_count: int,
        attempts: int,
    ) -> RepairResult:
        self._previous = {
            vm: result.target.location_of(vm)
            for vm in result.target.vm_names
            if result.target.state_of(vm) is VMState.RUNNING
        }
        values = {
            f.name: getattr(result, f.name) for f in fields(OptimizationResult)
        }
        reused = sum(
            1 for report in getattr(result, "zone_reports", ()) if report.reused
        )
        repaired = RepairResult(
            mode=mode,
            reason=reason,
            dirty_count=dirty_count,
            frozen_count=frozen_count,
            attempts=attempts,
            reused_zones=reused,
            **values,
        )
        if mode == "repair" and frozen_count and repaired.statistics is not None:
            # Exhausting the search under pins only proves optimality of the
            # frozen-region subproblem — never surface it as a global claim.
            repaired.statistics.proven_optimal = False
        return repaired
