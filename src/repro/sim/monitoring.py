"""Monitoring service (Ganglia substitute).

In the paper every VM and every Domain-0 runs a Ganglia daemon; Entropy polls
the monitoring head to obtain the CPU and memory consumption of the running
VMs, and needs about 10 seconds to accumulate fresh information after a
reconfiguration (Section 3.1).  The simulated service samples a *demand
source* — typically the workload traces — and reproduces that staleness: an
observation taken less than ``refresh_delay`` seconds after the previous
reconfiguration reuses the previous values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from .. import config
from ..model.configuration import Configuration
from ..model.resources import ResourceVector


#: A demand source maps a simulation time to per-VM CPU demands.
DemandSource = Callable[[float], Mapping[str, int]]


@dataclass(frozen=True)
class Observation:
    """One snapshot of the cluster as seen by the monitoring service."""

    time: float
    cpu_demands: dict[str, int]
    node_usage: dict[str, ResourceVector] = field(default_factory=dict)
    stale: bool = False

    def demand_of(self, vm_name: str) -> int:
        return self.cpu_demands.get(vm_name, 0)


class MonitoringService:
    """Samples VM demands with a configurable refresh delay."""

    def __init__(
        self,
        demand_source: DemandSource,
        refresh_delay: float = config.MONITORING_DELAY_S,
    ) -> None:
        self._source = demand_source
        self.refresh_delay = refresh_delay
        self._last_reconfiguration: Optional[float] = None
        self._last_observation: Optional[Observation] = None

    def notify_reconfiguration(self, time: float) -> None:
        """Tell the service a context switch just completed; the next
        observations within ``refresh_delay`` will be flagged stale and reuse
        the previous values."""
        self._last_reconfiguration = time

    def observe(
        self, time: float, configuration: Optional[Configuration] = None
    ) -> Observation:
        """Return the demands of every VM at ``time``."""
        stale = (
            self._last_reconfiguration is not None
            and self._last_observation is not None
            and time - self._last_reconfiguration < self.refresh_delay
        )
        if stale:
            previous = self._last_observation
            return Observation(
                time=time,
                cpu_demands=dict(previous.cpu_demands),
                node_usage=dict(previous.node_usage),
                stale=True,
            )

        demands = dict(self._source(time))
        node_usage: dict[str, ResourceVector] = {}
        if configuration is not None:
            for node in configuration.node_names:
                usage = ResourceVector(0, 0)
                for vm_name in configuration.vms_on(node):
                    vm = configuration.vm(vm_name)
                    usage = usage + ResourceVector(
                        demands.get(vm_name, vm.cpu_demand), vm.memory
                    )
                node_usage[node] = usage
        observation = Observation(
            time=time, cpu_demands=demands, node_usage=node_usage, stale=False
        )
        self._last_observation = observation
        return observation


def constant_demands(demands: Mapping[str, int]) -> DemandSource:
    """A demand source returning the same values at every instant (handy for
    tests and for the scalability experiments of Section 5.1)."""

    frozen = dict(demands)

    def source(_: float) -> Mapping[str, int]:
        return frozen

    return source
