"""Storage substrate: suspend images and their transfers.

The paper's testbed serves the virtual disks from three NFS servers and stores
suspend images on the local disk of the node performing the suspend; a remote
resume first moves the image with ``scp`` or ``rsync``, which roughly doubles
the operation duration (Figures 3b and 3c).  This module models those transfer
channels and keeps track of where each image lives, so the executor can decide
whether a resume is local or remote and price it accordingly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from .. import config
from ..model.vm import VMImage


class TransferMethod(enum.Enum):
    """How a suspend image reaches another node."""

    LOCAL = "local"    #: no transfer, the image stays on the local disk
    SCP = "scp"
    RSYNC = "rsync"


#: Remote suspend/resume duration factors relative to the local operation.
_REMOTE_FACTORS = {
    TransferMethod.LOCAL: 1.0,
    TransferMethod.SCP: config.SUSPEND_REMOTE_FACTOR_SCP,
    TransferMethod.RSYNC: config.SUSPEND_REMOTE_FACTOR_RSYNC,
}


def remote_factor(method: TransferMethod) -> float:
    """Duration multiplier of a remote suspend/resume using ``method``."""
    return _REMOTE_FACTORS[method]


def transfer_duration(size_mb: int, method: TransferMethod) -> float:
    """Time needed to push a ``size_mb`` image with ``method``.

    Local 'transfers' are free; remote ones account for the difference between
    the local and the remote curves of Figures 3b/3c, i.e. roughly one extra
    local-suspend duration.
    """
    if method is TransferMethod.LOCAL:
        return 0.0
    local = config.SUSPEND_LOCAL_BASE_S + config.SUSPEND_LOCAL_PER_MB_S * size_mb
    return local * (remote_factor(method) - 1.0)


@dataclass
class ImageStore:
    """Bookkeeping of the suspend images present in the cluster."""

    images: dict[str, VMImage] = field(default_factory=dict)

    def store(self, vm_name: str, node_name: str, size_mb: int, time: float = 0.0) -> VMImage:
        image = VMImage(
            vm_name=vm_name, node_name=node_name, size_mb=size_mb, created_at=time
        )
        self.images[vm_name] = image
        return image

    def location_of(self, vm_name: str) -> Optional[str]:
        image = self.images.get(vm_name)
        return image.node_name if image else None

    def discard(self, vm_name: str) -> None:
        self.images.pop(vm_name, None)

    def move(self, vm_name: str, destination: str) -> None:
        image = self.images.get(vm_name)
        if image is not None:
            image.node_name = destination

    def __contains__(self, vm_name: str) -> bool:
        return vm_name in self.images

    def __len__(self) -> int:
        return len(self.images)
