"""Simulated cluster: live configuration, suspend images and event log.

This is the stand-in for the paper's 11-node Xen testbed.  The cluster holds
the authoritative :class:`~repro.model.configuration.Configuration`, the
location of every suspend image, and a chronological log of the driver actions
applied to it, which the analysis layer later turns into utilization curves and
context-switch statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..core.actions import Action, ActionKind, Resume, Run, Stop, Suspend, Migrate
from ..model.configuration import Configuration
from ..model.errors import ExecutionError
from ..model.node import Node
from ..model.vm import VirtualMachine, VMState
from .storage import ImageStore


@dataclass(frozen=True)
class ClusterEvent:
    """One driver action applied to the cluster."""

    time: float
    kind: str
    vm: str
    source: Optional[str] = None
    destination: Optional[str] = None
    duration: float = 0.0

    def __str__(self) -> str:
        where = self.destination or self.source or "?"
        return f"[{self.time:8.1f}s] {self.kind}({self.vm}) @ {where}"


class SimulatedCluster:
    """The mutable state of the simulated testbed."""

    def __init__(
        self,
        nodes: Iterable[Node],
        vms: Iterable[VirtualMachine] = (),
    ) -> None:
        self.configuration = Configuration(nodes=nodes, vms=vms)
        self.images = ImageStore()
        self.events: list[ClusterEvent] = []

    # ------------------------------------------------------------------ #
    # population helpers                                                  #
    # ------------------------------------------------------------------ #

    def add_vm(self, vm: VirtualMachine) -> None:
        self.configuration.add_vm(vm)

    def update_demand(self, vm_name: str, cpu_demand: int) -> None:
        """Reflect a fresh monitoring observation in the configuration."""
        vm = self.configuration.vm(vm_name)
        if vm.cpu_demand != cpu_demand:
            self.configuration.replace_vm(vm.with_cpu_demand(cpu_demand))

    # ------------------------------------------------------------------ #
    # driver actions                                                      #
    # ------------------------------------------------------------------ #

    def apply_action(self, action: Action, time: float, duration: float) -> ClusterEvent:
        """Apply a plan action to the live configuration and log it."""
        configuration = self.configuration
        if not action.is_feasible(configuration):
            raise ExecutionError(f"action {action} is not feasible on the cluster")
        if isinstance(action, Suspend):
            memory = configuration.vm(action.vm).memory
            self.images.store(action.vm, action.node, memory, time)
        elif isinstance(action, Resume):
            self.images.discard(action.vm)
        elif isinstance(action, Stop):
            self.images.discard(action.vm)
        action.apply(configuration)
        event = ClusterEvent(
            time=time,
            kind=action.kind.value,
            vm=action.vm,
            source=action.source(),
            destination=action.destination(),
            duration=duration,
        )
        self.events.append(event)
        return event

    # ------------------------------------------------------------------ #
    # views                                                               #
    # ------------------------------------------------------------------ #

    def running_vms(self) -> tuple[str, ...]:
        return self.configuration.running_vms()

    def cpu_utilization(self) -> float:
        """Fraction of the cluster processing units used by running VMs."""
        capacity = self.configuration.total_capacity()
        if capacity.cpu == 0:
            return 0.0
        return self.configuration.total_usage().cpu / capacity.cpu

    def memory_utilization_mb(self) -> int:
        """Memory (MB) allocated to the running VMs."""
        return self.configuration.total_usage().memory

    def overloaded_nodes(self) -> list[str]:
        """Nodes currently exceeding their capacity.

        Uses the incremental O(changed) scan: the engine calls this every
        round and only the nodes whose load changed since the previous call
        (demand updates, migrations, faults) are re-examined."""
        return [
            v.node
            for v in self.configuration.viability_violations(only_dirty=True)
        ]

    def events_between(self, start: float, end: float) -> list[ClusterEvent]:
        return [e for e in self.events if start <= e.time < end]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<SimulatedCluster nodes={len(self.configuration.nodes)} "
            f"vms={len(self.configuration.vms)} events={len(self.events)}>"
        )
