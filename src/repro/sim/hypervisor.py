"""Hypervisor action duration model calibrated on the paper's measurements.

Section 2.3 measures, on the real testbed, the duration of every VM context
switch operation as a function of the memory allocated to the manipulated VM
(Figure 3).  The planner and the cost model only need the *relative* costs of
Table 1, but the simulated experiments (Figures 11-13) also need wall-clock
durations; this model provides them:

* ``run``: ~6 s, memory independent;
* ``stop``: ~25 s clean shutdown (or a short hard destroy);
* ``migrate``: linear in memory, ~26 s for a 2 GB VM;
* ``suspend``/``resume``: linear in memory, with a ~2x factor when the image
  has to be moved to/from another node (scp or rsync);
* busy VMs co-located with an operation are slowed by ~1.3x (local operation)
  to ~1.5x (remote) while it lasts.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import config
from ..model.configuration import Configuration
from ..core.actions import Action, ActionKind, Migrate, Resume, Run, Stop, Suspend
from .storage import TransferMethod, remote_factor


@dataclass(frozen=True)
class HypervisorModel:
    """Durations (seconds) of the VM actions on the simulated testbed."""

    boot_duration: float = config.BOOT_DURATION_S
    clean_shutdown_duration: float = config.CLEAN_SHUTDOWN_DURATION_S
    hard_shutdown_duration: float = config.HARD_SHUTDOWN_DURATION_S
    migrate_base: float = config.MIGRATE_BASE_S
    migrate_per_mb: float = config.MIGRATE_PER_MB_S
    suspend_base: float = config.SUSPEND_LOCAL_BASE_S
    suspend_per_mb: float = config.SUSPEND_LOCAL_PER_MB_S
    resume_base: float = config.RESUME_LOCAL_BASE_S
    resume_per_mb: float = config.RESUME_LOCAL_PER_MB_S
    clean_shutdown: bool = True
    transfer_method: TransferMethod = TransferMethod.SCP

    # -- per-operation durations ---------------------------------------------

    def run_duration(self, memory_mb: int) -> float:
        return self.boot_duration

    def stop_duration(self, memory_mb: int) -> float:
        if self.clean_shutdown:
            return self.clean_shutdown_duration
        return self.hard_shutdown_duration

    def migrate_duration(self, memory_mb: int) -> float:
        return self.migrate_base + self.migrate_per_mb * memory_mb

    def suspend_duration(self, memory_mb: int, local: bool = True) -> float:
        base = self.suspend_base + self.suspend_per_mb * memory_mb
        if local:
            return base
        return base * remote_factor(self.transfer_method)

    def resume_duration(self, memory_mb: int, local: bool = True) -> float:
        base = self.resume_base + self.resume_per_mb * memory_mb
        if local:
            return base
        return base * remote_factor(self.transfer_method)

    # -- dispatch on plan actions ---------------------------------------------

    def action_duration(self, action: Action, configuration: Configuration) -> float:
        """Wall-clock duration of a plan action against ``configuration``."""
        memory = configuration.vm(action.vm).memory
        if isinstance(action, Run):
            return self.run_duration(memory)
        if isinstance(action, Stop):
            return self.stop_duration(memory)
        if isinstance(action, Migrate):
            return self.migrate_duration(memory)
        if isinstance(action, Suspend):
            return self.suspend_duration(memory, local=True)
        if isinstance(action, Resume):
            return self.resume_duration(memory, local=action.is_local)
        raise TypeError(f"unknown action type: {action!r}")

    def interference_factor(self, action: Action) -> float:
        """Slow-down suffered by busy VMs co-located with the action."""
        if isinstance(action, Resume) and not action.is_local:
            return config.INTERFERENCE_FACTOR_REMOTE
        if action.kind in (ActionKind.SUSPEND, ActionKind.RESUME, ActionKind.MIGRATE):
            return config.INTERFERENCE_FACTOR_LOCAL
        return 1.0


#: Model matching the paper's measurements, used by default everywhere.
DEFAULT_HYPERVISOR = HypervisorModel()

#: Variant using hard shutdowns, mentioned in Section 2.3 as an easy way to
#: reduce the stop duration.
FAST_STOP_HYPERVISOR = HypervisorModel(clean_shutdown=False)
