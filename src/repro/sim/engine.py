"""A minimal discrete-event simulation engine.

The cluster experiments of Section 5 are reproduced in simulated time: the
engine keeps a priority queue of timestamped events and runs callbacks in
chronological order.  It is deliberately small — ``schedule``/``schedule_at``
return a cancellable :class:`EventHandle`, ``run(until=...)`` drains the
queue up to a deadline, and ``now`` is the monotonic simulated clock.

Two consumers drive it today: the control loop's timing bookkeeping, and the
fault-injection subsystem (:mod:`repro.sim.faults`), which schedules every
fault of a :class:`~repro.sim.faults.FaultSchedule` as an engine event and
drains the engine once per loop iteration.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`SimulationEngine.schedule` to cancel events."""

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class SimulationEngine:
    """Chronological execution of scheduled callbacks."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue: list[_Event] = []
        self._counter = itertools.count()

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` ``delay`` seconds from the current simulated time."""
        if delay < 0:
            raise ValueError("cannot schedule an event in the past")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        if time < self._now:
            raise ValueError("cannot schedule an event in the past")
        event = _Event(time=time, sequence=next(self._counter), callback=callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def advance(self, duration: float) -> None:
        """Move the clock forward without processing events (used by loops
        that interleave their own bookkeeping with event processing)."""
        if duration < 0:
            raise ValueError("cannot move the clock backwards")
        self._now += duration

    def run(self, until: Optional[float] = None) -> float:
        """Process events in order until the queue is empty or ``until`` is
        reached; returns the final simulated time."""
        while self._queue:
            if until is not None and self._queue[0].time > until:
                self._now = until
                return self._now
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = max(self._now, event.time)
            event.callback()
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    @property
    def pending_events(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)
