"""Simulated cluster substrate (Xen / Ganglia / NFS replacement)."""

from .cluster import ClusterEvent, SimulatedCluster
from .engine import EventHandle, SimulationEngine
from .executor import (
    ActionExecution,
    ExecutionReport,
    FailedAction,
    PlanExecutor,
    estimate_duration,
)
from .faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    NodeEviction,
    evict_node,
    random_fault_schedule,
)
from .hypervisor import DEFAULT_HYPERVISOR, FAST_STOP_HYPERVISOR, HypervisorModel
from .monitoring import (
    DemandSource,
    MonitoringService,
    Observation,
    constant_demands,
)
from .storage import ImageStore, TransferMethod, remote_factor, transfer_duration

__all__ = [
    "ClusterEvent",
    "SimulatedCluster",
    "EventHandle",
    "SimulationEngine",
    "ActionExecution",
    "ExecutionReport",
    "FailedAction",
    "PlanExecutor",
    "estimate_duration",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "NodeEviction",
    "evict_node",
    "random_fault_schedule",
    "DEFAULT_HYPERVISOR",
    "FAST_STOP_HYPERVISOR",
    "HypervisorModel",
    "DemandSource",
    "MonitoringService",
    "Observation",
    "constant_demands",
    "ImageStore",
    "TransferMethod",
    "remote_factor",
    "transfer_duration",
]
