"""Execution of reconfiguration plans on the simulated cluster.

The executor plays the role of the paper's drivers (SSH commands / Xen API):
it walks the pools of a plan in order, runs the actions of each pool in
parallel, pipelines the suspend and resume actions of a pool one second apart
(sorted by hostname, as described in Section 4.1) so the VMs of a vjob are
paused in a fixed order while the bulk of the image writing overlaps, and
returns a detailed timing report the analysis layer uses for Figures 11-13.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .. import config
from ..core.actions import Action, ActionKind
from ..core.plan import ReconfigurationPlan
from ..model.errors import ExecutionError
from .cluster import SimulatedCluster
from .hypervisor import DEFAULT_HYPERVISOR, HypervisorModel


@dataclass(frozen=True)
class ActionExecution:
    """Timing of one action during the execution of a plan."""

    action: Action
    pool_index: int
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class ExecutionReport:
    """Timing of a whole cluster-wide context switch."""

    start: float
    actions: list[ActionExecution] = field(default_factory=list)
    pool_windows: list[tuple[float, float]] = field(default_factory=list)

    @property
    def end(self) -> float:
        if not self.actions:
            return self.start
        return max(a.end for a in self.actions)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def action_count(self) -> int:
        return len(self.actions)

    def involved_nodes(self) -> set[str]:
        nodes: set[str] = set()
        for execution in self.actions:
            for node in (execution.action.source(), execution.action.destination()):
                if node is not None:
                    nodes.add(node)
        return nodes

    def count(self, kind: ActionKind) -> int:
        return sum(1 for a in self.actions if a.action.kind is kind)


class PlanExecutor:
    """Apply a plan to a :class:`SimulatedCluster`, pool by pool."""

    def __init__(
        self,
        hypervisor: HypervisorModel = DEFAULT_HYPERVISOR,
        pipeline_delay: float = config.VJOB_PIPELINE_DELAY_S,
    ) -> None:
        self.hypervisor = hypervisor
        self.pipeline_delay = pipeline_delay

    def execute(
        self,
        plan: ReconfigurationPlan,
        cluster: SimulatedCluster,
        start_time: float = 0.0,
    ) -> ExecutionReport:
        """Execute every pool of ``plan`` against ``cluster``.

        The cluster configuration is mutated as the actions complete; the
        returned report records when each action started and how long it took.
        """
        report = ExecutionReport(start=start_time)
        clock = start_time

        for pool_index, pool in enumerate(plan.pools):
            # Validate the pool before launching anything, mirroring the
            # feasibility guarantee of the plan construction.
            for action in pool:
                if not action.is_feasible(cluster.configuration):
                    raise ExecutionError(
                        f"pool {pool_index}: action {action} not feasible at "
                        "execution time"
                    )

            ordered = sorted(
                pool.actions,
                key=lambda a: (a.destination() or a.source() or "", a.vm),
            )
            pipeline_offset = 0.0
            pool_end = clock
            executions: list[ActionExecution] = []
            for action in ordered:
                if action.kind in (ActionKind.SUSPEND, ActionKind.RESUME):
                    start = clock + pipeline_offset
                    pipeline_offset += self.pipeline_delay
                else:
                    start = clock
                duration = self.hypervisor.action_duration(
                    action, cluster.configuration
                )
                execution = ActionExecution(
                    action=action,
                    pool_index=pool_index,
                    start=start,
                    duration=duration,
                )
                executions.append(execution)
                pool_end = max(pool_end, execution.end)

            # Apply the pool's effects: liberating actions first, consumers
            # second (the end state is order independent, see the planner).
            for execution in executions:
                if not execution.action.consumes_resources():
                    cluster.apply_action(
                        execution.action, execution.start, execution.duration
                    )
            for execution in executions:
                if execution.action.consumes_resources():
                    cluster.apply_action(
                        execution.action, execution.start, execution.duration
                    )

            report.actions.extend(executions)
            report.pool_windows.append((clock, pool_end))
            clock = pool_end

        return report


def estimate_duration(
    plan: ReconfigurationPlan,
    hypervisor: HypervisorModel = DEFAULT_HYPERVISOR,
    pipeline_delay: float = config.VJOB_PIPELINE_DELAY_S,
) -> float:
    """Duration of a plan without mutating any cluster state.

    Useful to relate the abstract cost of a plan (Section 4.2) to its expected
    wall-clock duration, as Figure 11 does.
    """
    reference = plan.source
    clock = 0.0
    for pool in plan.pools:
        pipeline_offset = 0.0
        pool_end = clock
        for action in sorted(
            pool.actions, key=lambda a: (a.destination() or a.source() or "", a.vm)
        ):
            if action.kind in (ActionKind.SUSPEND, ActionKind.RESUME):
                start = clock + pipeline_offset
                pipeline_offset += pipeline_delay
            else:
                start = clock
            duration = hypervisor.action_duration(action, reference)
            pool_end = max(pool_end, start + duration)
        clock = pool_end
    return clock
