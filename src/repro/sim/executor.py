"""Execution of reconfiguration plans on the simulated cluster.

The executor plays the role of the paper's drivers (SSH commands / Xen API):
it walks the pools of a plan in order, runs the actions of each pool in
parallel, pipelines the suspend and resume actions of a pool one second apart
(sorted by hostname, as described in Section 4.1) so the VMs of a vjob are
paused in a fixed order while the bulk of the image writing overlaps, and
returns a detailed timing report the analysis layer uses for Figures 11-13.

With a :class:`~repro.sim.faults.FaultInjector` attached, execution becomes
*best-effort* instead of all-or-nothing: a migration the injector vetoes
aborts mid-flight (the VM stays on its source node, the attempt's duration is
wasted), and actions invalidated by an earlier failure are skipped rather
than raising.  Every failed or skipped action is recorded in
:attr:`ExecutionReport.failures` so the control loop can count wasted work
and re-plan on the next round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from .. import config
from ..constraints.base import PlacementConstraint
from ..constraints.checker import check_configuration
from ..core.actions import Action, ActionKind
from ..core.plan import ReconfigurationPlan
from ..model.errors import ExecutionError
from ..obs import span
from .cluster import SimulatedCluster
from .hypervisor import DEFAULT_HYPERVISOR, HypervisorModel

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .faults import FaultInjector


@dataclass(frozen=True)
class ActionExecution:
    """Timing of one action during the execution of a plan."""

    action: Action
    pool_index: int
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class FailedAction:
    """One action that did not take effect during a fault-injected switch.

    ``reason`` is ``"migration-fault"`` for a vetoed migration (the attempt
    ran for ``duration`` seconds before aborting) or ``"cascade-skip"`` for
    an action that became infeasible because an earlier action failed.
    """

    action: Action
    pool_index: int
    start: float
    duration: float
    reason: str

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class ConstraintViolationEvent:
    """A placement constraint broken by the *live* cluster state while a
    switch executed (observed at a pool boundary).

    Continuous satisfaction is checked against what actually happened —
    including the effects of fault injection — not against the plan's
    intended intermediate states.
    """

    time: float
    pool_index: int
    constraint: str
    message: str


@dataclass
class ExecutionReport:
    """Timing of a whole cluster-wide context switch.

    ``actions`` only contains the actions that took effect; attempts broken
    by fault injection land in ``failures`` (their wall-clock time still
    counts towards the switch duration — a wasted migration is not free).
    ``constraint_violations`` is populated when the executor is given
    placement constraints to watch (empty otherwise).
    """

    start: float
    actions: list[ActionExecution] = field(default_factory=list)
    pool_windows: list[tuple[float, float]] = field(default_factory=list)
    failures: list[FailedAction] = field(default_factory=list)
    constraint_violations: list[ConstraintViolationEvent] = field(
        default_factory=list
    )

    @property
    def end(self) -> float:
        if not self.actions and not self.failures:
            return self.start
        return max(
            [a.end for a in self.actions] + [f.end for f in self.failures]
        )

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def action_count(self) -> int:
        return len(self.actions)

    def involved_nodes(self) -> set[str]:
        """Nodes touched by the switch — including nodes that only hosted an
        aborted attempt: a vetoed migration still ran its transfer (and a
        cascade-skip still occupied its window), so those nodes suffer the
        Section 2.3 interference slowdown too."""
        nodes: set[str] = set()
        for item in (*self.actions, *self.failures):
            for node in (item.action.source(), item.action.destination()):
                if node is not None:
                    nodes.add(node)
        return nodes

    def count(self, kind: ActionKind) -> int:
        return sum(1 for a in self.actions if a.action.kind is kind)

    def failed_count(self, kind: ActionKind) -> int:
        return sum(1 for f in self.failures if f.action.kind is kind)


class PlanExecutor:
    """Apply a plan to a :class:`SimulatedCluster`, pool by pool.

    ``fault_injector`` (optional) turns on best-effort execution: migrations
    the injector vetoes abort without effect and feasibility violations are
    downgraded from :class:`~repro.model.errors.ExecutionError` to recorded
    skips, because an aborted action legitimately invalidates its dependants.
    Without an injector any infeasible action still raises — a plan that does
    not execute on a healthy cluster is a planner bug, not a fault.
    """

    def __init__(
        self,
        hypervisor: HypervisorModel = DEFAULT_HYPERVISOR,
        pipeline_delay: float = config.VJOB_PIPELINE_DELAY_S,
        fault_injector: Optional["FaultInjector"] = None,
    ) -> None:
        self.hypervisor = hypervisor
        self.pipeline_delay = pipeline_delay
        self.fault_injector = fault_injector

    def execute(
        self,
        plan: ReconfigurationPlan,
        cluster: SimulatedCluster,
        start_time: float = 0.0,
        constraints: Sequence[PlacementConstraint] = (),
    ) -> ExecutionReport:
        """Execute every pool of ``plan`` against ``cluster``.

        The cluster configuration is mutated as the actions complete; the
        returned report records when each action started and how long it took.
        With ``constraints``, the live configuration is validated at every
        pool boundary (continuous satisfaction against what *actually*
        happened, fault-injected deviations included) and each breach is
        recorded as a :class:`ConstraintViolationEvent`.
        """
        with span("execute") as trace_span:
            report = self._execute_impl(
                plan, cluster, start_time, constraints
            )
            trace_span.inc("pools", len(plan.pools))
            trace_span.inc("actions", len(report.actions))
            trace_span.inc("failed_actions", len(report.failures))
            trace_span.set(sim_duration=report.duration)
        return report

    def _execute_impl(
        self,
        plan: ReconfigurationPlan,
        cluster: SimulatedCluster,
        start_time: float,
        constraints: Sequence[PlacementConstraint],
    ) -> ExecutionReport:
        report = ExecutionReport(start=start_time)
        injector = self.fault_injector
        clock = start_time
        reference = cluster.configuration.copy() if constraints else None

        for pool_index, pool in enumerate(plan.pools):
            if injector is None:
                # Validate the pool before launching anything, mirroring the
                # feasibility guarantee of the plan construction.
                for action in pool:
                    if not action.is_feasible(cluster.configuration):
                        raise ExecutionError(
                            f"pool {pool_index}: action {action} not feasible "
                            "at execution time"
                        )

            ordered = sorted(
                pool.actions,
                key=lambda a: (a.destination() or a.source() or "", a.vm),
            )
            pipeline_offset = 0.0
            pool_end = clock
            executions: list[ActionExecution] = []
            for action in ordered:
                if action.kind in (ActionKind.SUSPEND, ActionKind.RESUME):
                    start = clock + pipeline_offset
                    pipeline_offset += self.pipeline_delay
                else:
                    start = clock
                duration = self.hypervisor.action_duration(
                    action, cluster.configuration
                )
                if (
                    injector is not None
                    and action.kind is ActionKind.MIGRATE
                    and injector.should_fail_migration(action.vm, start)
                ):
                    # The transfer ran, then aborted: the time is wasted but
                    # the VM never left its source node.
                    failure = FailedAction(
                        action=action,
                        pool_index=pool_index,
                        start=start,
                        duration=duration,
                        reason="migration-fault",
                    )
                    report.failures.append(failure)
                    pool_end = max(pool_end, failure.end)
                    continue
                execution = ActionExecution(
                    action=action,
                    pool_index=pool_index,
                    start=start,
                    duration=duration,
                )
                executions.append(execution)
                pool_end = max(pool_end, execution.end)

            # Apply the pool's effects: liberating actions first, consumers
            # second (the end state is order independent, see the planner).
            applied: set[int] = set()
            for consumes in (False, True):
                for execution in executions:
                    if execution.action.consumes_resources() is not consumes:
                        continue
                    if injector is not None and not execution.action.is_feasible(
                        cluster.configuration
                    ):
                        report.failures.append(
                            FailedAction(
                                action=execution.action,
                                pool_index=pool_index,
                                start=execution.start,
                                duration=execution.duration,
                                reason="cascade-skip",
                            )
                        )
                        continue
                    cluster.apply_action(
                        execution.action, execution.start, execution.duration
                    )
                    applied.add(id(execution))

            # Keep the scheduling order in the report regardless of the
            # liberate-then-consume application order.
            report.actions.extend(
                e for e in executions if id(e) in applied
            )
            report.pool_windows.append((clock, pool_end))
            clock = pool_end

            if reference is not None:
                self._watch_constraints(
                    report, cluster, reference, constraints, pool_index, clock
                )

        return report

    @staticmethod
    def _watch_constraints(
        report: ExecutionReport,
        cluster: SimulatedCluster,
        reference,
        constraints: Sequence[PlacementConstraint],
        pool_index: int,
        time: float,
    ) -> None:
        """Record every constraint the live configuration breaks right now
        (static checks via the shared checker, plus the stateful transition
        relations against the execution-start reference)."""
        state = cluster.configuration
        flagged: set[str] = set()
        for violation in check_configuration(state, constraints):
            flagged.add(violation.constraint)
            report.constraint_violations.append(
                ConstraintViolationEvent(
                    time=time,
                    pool_index=pool_index,
                    constraint=violation.constraint,
                    message=violation.message,
                )
            )
        for constraint in constraints:
            if constraint.label in flagged:
                continue
            if constraint.is_transition_satisfied(reference, state):
                continue
            message = (
                constraint.explain_transition(reference, state)
                or f"{constraint.label} is violated by the transition"
            )
            report.constraint_violations.append(
                ConstraintViolationEvent(
                    time=time,
                    pool_index=pool_index,
                    constraint=constraint.label,
                    message=message,
                )
            )


def estimate_duration(
    plan: ReconfigurationPlan,
    hypervisor: HypervisorModel = DEFAULT_HYPERVISOR,
    pipeline_delay: float = config.VJOB_PIPELINE_DELAY_S,
) -> float:
    """Duration of a plan without mutating any cluster state.

    Useful to relate the abstract cost of a plan (Section 4.2) to its expected
    wall-clock duration, as Figure 11 does.
    """
    reference = plan.source
    clock = 0.0
    for pool in plan.pools:
        pipeline_offset = 0.0
        pool_end = clock
        for action in sorted(
            pool.actions, key=lambda a: (a.destination() or a.source() or "", a.vm)
        ):
            if action.kind in (ActionKind.SUSPEND, ActionKind.RESUME):
                start = clock + pipeline_offset
                pipeline_offset += pipeline_delay
            else:
                start = clock
            duration = hypervisor.action_duration(action, reference)
            pool_end = max(pool_end, start + duration)
        clock = pool_end
    return clock
