"""Fault injection: node crashes, slow-downs, migration failures, late boots.

The paper's evaluation replays clean, static campaigns, but the whole point
of the cluster-wide context switch is reacting to a cluster whose *demand and
availability* change under it.  This module adds the availability half: a
seeded, scriptable fault schedule whose events fire inside the control loop,
so policies observe failures mid-run and must re-plan.

Four fault kinds are modelled:

``NODE_CRASH``
    The node disappears.  Running VMs hosted on it are killed and the suspend
    images it stored are lost; the affected vjobs fall back to the Waiting
    state (all their VMs together — the consistency requirement of
    Section 4.1) and re-enter the queue, so the next decision round restarts
    them elsewhere.  The node is evicted from the configuration: planners and
    decision modules simply stop seeing it.
``NODE_SLOWDOWN``
    For a time window, vjob progress on the node advances ``factor`` times
    slower (a failing disk, a noisy neighbour, thermal throttling).
``MIGRATION_FAILURE``
    A live migration aborts mid-flight: the VM stays on its source node, the
    attempt's duration is wasted, and the switch report records the failure.
    The loop replans the move on the next round — failed migrations re-enter
    the queue implicitly because the decision module re-derives them.
``DELAYED_BOOT``
    A node of the fleet only becomes available at the event time (slow POST,
    staggered power-on, late delivery).  Until then it is absent from the
    configuration.

Fault timing rides on the existing discrete-event
:class:`~repro.sim.engine.SimulationEngine`: every scheduled event is an
engine callback, and the control loop drains the engine up to its current
simulated time at the start of each iteration — faults are therefore
*detected* with the loop's monitoring granularity, like on a real cluster.

Everything stochastic flows through seeded ``random.Random`` instances:
the same :class:`FaultSchedule` always produces the same run, which is what
lets ``tests/integration/golden/chaos_recovery.json`` pin an entire chaos
campaign byte-for-byte.
"""

from __future__ import annotations

import dataclasses
import enum
import random
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..model.configuration import Configuration
from .engine import SimulationEngine


class FaultKind(enum.Enum):
    """The injectable fault families."""

    NODE_CRASH = "node_crash"
    NODE_SLOWDOWN = "node_slowdown"
    MIGRATION_FAILURE = "migration_failure"
    DELAYED_BOOT = "delayed_boot"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``target`` names a node (crash, slowdown, delayed boot) or a VM
    (migration failure).  ``factor`` and ``duration`` only apply to
    slow-downs: progress on the node is divided by ``factor`` during
    ``[time, time + duration)``.
    """

    time: float
    kind: FaultKind
    target: str
    factor: float = 1.0
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("fault time must be non-negative")
        if self.kind is FaultKind.NODE_SLOWDOWN:
            if self.factor <= 1.0:
                raise ValueError("a slowdown needs a factor > 1")
            if self.duration <= 0:
                raise ValueError("a slowdown needs a positive duration")

    @property
    def end(self) -> float:
        """End of a slowdown window (the event time otherwise)."""
        return self.time + self.duration


@dataclass
class FaultSchedule:
    """A deterministic script of faults plus stochastic failure rates.

    Build one fluently::

        schedule = (
            FaultSchedule()
            .node_crash("node-1", at=120.0)
            .node_slowdown("node-2", at=60.0, duration=300.0, factor=2.0)
            .delayed_boot("node-3", until=240.0)
            .migration_failure("vjob0.vm1", at=0.0)
        )

    or draw one from seeded rates with :func:`random_fault_schedule`.
    ``migration_failure_rate`` additionally makes *every* migration attempt
    fail with that probability (drawn from ``seed``, so runs stay
    reproducible).  A schedule is a passive description — hand it to
    :class:`~repro.api.scenario.Scenario` (``faults=schedule``), which builds
    one fresh :class:`FaultInjector` per run.
    """

    events: list[FaultEvent] = field(default_factory=list)
    migration_failure_rate: float = 0.0
    seed: int = 0

    # ------------------------------------------------------------------ #
    # fluent builders                                                     #
    # ------------------------------------------------------------------ #

    def add(self, event: FaultEvent) -> "FaultSchedule":
        self.events.append(event)
        return self

    def node_crash(self, node: str, at: float) -> "FaultSchedule":
        """Crash ``node`` at time ``at`` (its VMs and images are lost)."""
        return self.add(FaultEvent(time=at, kind=FaultKind.NODE_CRASH, target=node))

    def node_slowdown(
        self, node: str, at: float, duration: float, factor: float = 2.0
    ) -> "FaultSchedule":
        """Slow vjob progress on ``node`` by ``factor`` during the window."""
        return self.add(
            FaultEvent(
                time=at,
                kind=FaultKind.NODE_SLOWDOWN,
                target=node,
                factor=factor,
                duration=duration,
            )
        )

    def migration_failure(self, vm: str, at: float = 0.0) -> "FaultSchedule":
        """Make the next migration of ``vm`` attempted at or after ``at``
        abort (one-shot)."""
        return self.add(
            FaultEvent(time=at, kind=FaultKind.MIGRATION_FAILURE, target=vm)
        )

    def delayed_boot(self, node: str, until: float) -> "FaultSchedule":
        """Keep ``node`` out of the cluster until time ``until``."""
        return self.add(
            FaultEvent(time=until, kind=FaultKind.DELAYED_BOOT, target=node)
        )

    # ------------------------------------------------------------------ #
    # views                                                               #
    # ------------------------------------------------------------------ #

    def ordered(self) -> list[FaultEvent]:
        """Events sorted by time, insertion order breaking ties."""
        return sorted(self.events, key=lambda e: e.time)

    def of_kind(self, kind: FaultKind) -> list[FaultEvent]:
        return [e for e in self.ordered() if e.kind is kind]

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events) or self.migration_failure_rate > 0


def random_fault_schedule(
    node_names: Iterable[str],
    horizon: float,
    seed: int = 0,
    crash_rate_per_hour: float = 0.0,
    slowdown_rate_per_hour: float = 0.0,
    slowdown_factor: float = 2.0,
    slowdown_duration: float = 300.0,
    migration_failure_rate: float = 0.0,
    max_crashes: Optional[int] = None,
) -> FaultSchedule:
    """Draw a seeded stochastic fault schedule over ``[0, horizon)``.

    Crash and slowdown arrivals follow independent per-node Poisson processes
    (exponential inter-arrival times at the given hourly rates); each node
    crashes at most once.  ``max_crashes`` caps the total number of crashes so
    a small cluster cannot be wiped out by an unlucky seed.  The same
    arguments always produce the same schedule.
    """
    # The per-node draws consume the seeded stream in iteration order, so an
    # *unordered* collection (a set of node names, a dict-keys view) would
    # make the timeline depend on hash randomization and differ between
    # processes.  Sequences keep their caller-chosen order; anything else is
    # canonicalized by sorting so one seed means one timeline, everywhere.
    if isinstance(node_names, (list, tuple)):
        ordered_nodes: Sequence[str] = node_names
    else:
        ordered_nodes = sorted(node_names)
    rng = random.Random(seed)
    schedule = FaultSchedule(
        migration_failure_rate=migration_failure_rate, seed=seed
    )
    crashes: list[FaultEvent] = []
    for node in ordered_nodes:
        if crash_rate_per_hour > 0:
            at = rng.expovariate(crash_rate_per_hour / 3600.0)
            if at < horizon:
                crashes.append(
                    FaultEvent(time=at, kind=FaultKind.NODE_CRASH, target=node)
                )
        if slowdown_rate_per_hour > 0:
            t = rng.expovariate(slowdown_rate_per_hour / 3600.0)
            while t < horizon:
                schedule.node_slowdown(
                    node, at=t, duration=slowdown_duration, factor=slowdown_factor
                )
                t += slowdown_duration + rng.expovariate(
                    slowdown_rate_per_hour / 3600.0
                )
    crashes.sort(key=lambda e: e.time)
    if max_crashes is not None:
        crashes = crashes[:max_crashes]
    for event in crashes:
        schedule.add(event)
    return schedule


@dataclass(frozen=True)
class NodeEviction:
    """Outcome of evicting a node from a configuration (crash semantics)."""

    node: str
    #: Running VMs that were killed with the node.
    displaced_vms: tuple[str, ...]
    #: Sleeping VMs whose suspend image lived on the node and is now lost.
    lost_images: tuple[str, ...]

    @property
    def affected_vms(self) -> tuple[str, ...]:
        return self.displaced_vms + self.lost_images


def evict_node(configuration: Configuration, node_name: str) -> NodeEviction:
    """Apply the configuration-level effects of a node crash.

    Running VMs on the node are killed (back to Waiting), suspend images
    stored on it vanish (their sleeping VMs fall back to Waiting — there is
    nothing left to resume), and the node itself is removed.  Callers own the
    vjob-level consequences: the control loop additionally resets every
    sibling VM of an affected vjob so the vjob restarts consistently.
    """
    displaced = tuple(configuration.vms_on(node_name))
    # O(answer) via the per-node suspend-image index (registration order,
    # matching the historical sleeping_vms() filter).
    lost = configuration.images_on(node_name)
    for vm in displaced + lost:
        configuration.set_waiting(vm)
    configuration.remove_node(node_name)
    return NodeEviction(node=node_name, displaced_vms=displaced, lost_images=lost)


class FaultInjector:
    """Live state of one fault schedule during one control-loop run.

    The injector schedules every event on a private
    :class:`~repro.sim.engine.SimulationEngine`; the loop calls
    :meth:`fire` once per iteration and applies whatever became due.  The
    executor consults :meth:`should_fail_migration` per migration attempt and
    the progress accounting consults :meth:`slowdown_factor` per node.

    One injector serves exactly one run — it is as stateful as the workloads.
    :meth:`Scenario.build <repro.api.scenario.Scenario.build>` therefore
    creates a fresh injector from the scenario's schedule for every run.
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self._engine = SimulationEngine()
        self._due: list[FaultEvent] = []
        self.fired: list[FaultEvent] = []
        #: One-shot scripted migration failures, armed until consumed.
        self._pending_migration_faults: list[FaultEvent] = []
        #: Events added at runtime via :meth:`inject` (the schedule object
        #: stays untouched — it may be shared across runs).
        self.injected: list[FaultEvent] = []
        self._rng = random.Random(schedule.seed)
        self._slowdowns: list[FaultEvent] = []
        for event in schedule.ordered():
            if event.kind is FaultKind.MIGRATION_FAILURE:
                self._pending_migration_faults.append(event)
            elif event.kind is FaultKind.NODE_SLOWDOWN:
                # Windows are queried by time, no engine round-trip needed,
                # but the event still fires so observers see it start.
                self._slowdowns.append(event)
                self._schedule(event)
            else:
                self._schedule(event)

    def _schedule(self, event: FaultEvent) -> None:
        self._engine.schedule_at(event.time, lambda e=event: self._due.append(e))

    def inject(self, event: FaultEvent) -> None:
        """Add one fault event to a *live* injector (operator-daemon path).

        Scripted schedules are fixed at construction; this is the runtime
        escape hatch the service's ``POST /faults`` endpoint uses.  An event
        whose time is already in the simulated past is scheduled *now* — it
        fires at the next :meth:`fire` call (you cannot crash a node
        retroactively).  ``DELAYED_BOOT`` cannot be injected at runtime: the
        held-back node set is fixed when the control loop is built.
        """
        if event.kind is FaultKind.DELAYED_BOOT:
            raise ValueError(
                "delayed_boot faults cannot be injected into a running loop; "
                "declare them on the scenario's FaultSchedule instead"
            )
        effective = max(event.time, self._engine.now)
        if effective != event.time:
            # Re-stamp the event at its effective time so every consumer —
            # the fault timeline, slowdown windows, repair-latency
            # attribution — sees when the fault actually happened, not the
            # stale past timestamp the operator asked for.
            event = dataclasses.replace(event, time=effective)
        self.injected.append(event)
        if event.kind is FaultKind.MIGRATION_FAILURE:
            self._pending_migration_faults.append(event)
            return
        if event.kind is FaultKind.NODE_SLOWDOWN:
            self._slowdowns.append(event)
        self._engine.schedule_at(
            effective, lambda e=event: self._due.append(e)
        )

    # ------------------------------------------------------------------ #
    # queries                                                             #
    # ------------------------------------------------------------------ #

    def delayed_boot_nodes(self) -> tuple[str, ...]:
        """Nodes that must be absent from the initial configuration."""
        return tuple(
            e.target for e in self.schedule.of_kind(FaultKind.DELAYED_BOOT)
        )

    def fire(self, now: float) -> list[FaultEvent]:
        """Events that became due at or before ``now``, in schedule order."""
        self._engine.run(until=now)
        due, self._due = self._due, []
        self.fired.extend(due)
        return due

    def slowdown_factor(self, node_name: str, time: float) -> float:
        """Progress slow-down applying to ``node_name`` at ``time`` (>= 1)."""
        factor = 1.0
        for event in self._slowdowns:
            if event.target == node_name and event.time <= time < event.end:
                factor = max(factor, event.factor)
        return factor

    def should_fail_migration(self, vm_name: str, time: float) -> bool:
        """Whether the migration of ``vm_name`` starting at ``time`` aborts.

        Scripted one-shot failures are consumed first; otherwise the
        stochastic ``migration_failure_rate`` draws from the injector's seeded
        generator.  Either way the decision is deterministic for a given
        schedule and execution history.
        """
        for event in self._pending_migration_faults:
            if event.target == vm_name and event.time <= time:
                self._pending_migration_faults.remove(event)
                return True
        if self.schedule.migration_failure_rate > 0:
            return self._rng.random() < self.schedule.migration_failure_rate
        return False

    @property
    def pending_events(self) -> int:
        """Scheduled events that have not fired yet."""
        return self._engine.pending_events

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<FaultInjector fired={len(self.fired)} "
            f"pending={self.pending_events}>"
        )
