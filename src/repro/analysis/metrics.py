"""Metrics derived from simulation results.

These helpers compute the figures the paper reports: average cost reduction of
the optimizer over the FFD baseline (Figure 10), cost/duration statistics of
the context switches (Figure 11), utilization curves (Figure 13) and the
makespan reduction of dynamic consolidation over the static allocation
(Section 5.2's headline 40 %) — plus the recovery statistics of the chaos
scenarios (repair latency, SLA violations, wasted migrations, makespan
inflation under faults).
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Iterable, Optional, Sequence

from ..api.results import ContextSwitchRecord, RunResult, UtilizationSample


# --------------------------------------------------------------------------- #
# Figure 10: cost reduction                                                    #
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class CostComparison:
    """FFD vs Entropy cost for one generated configuration."""

    vm_count: int
    ffd_cost: int
    entropy_cost: int

    @property
    def reduction(self) -> float:
        """Fractional reduction of the reconfiguration cost (0..1)."""
        if self.ffd_cost == 0:
            return 0.0
        return 1.0 - self.entropy_cost / self.ffd_cost


def average_cost_reduction(comparisons: Iterable[CostComparison]) -> float:
    """Average cost reduction over a set of generated configurations (the
    paper reports ~95 %)."""
    items = [c.reduction for c in comparisons if c.ffd_cost > 0]
    if not items:
        return 0.0
    return mean(items)


def group_by_vm_count(
    comparisons: Iterable[CostComparison],
) -> dict[int, list[CostComparison]]:
    grouped: dict[int, list[CostComparison]] = {}
    for comparison in comparisons:
        grouped.setdefault(comparison.vm_count, []).append(comparison)
    return grouped


def mean_costs_by_vm_count(
    comparisons: Iterable[CostComparison],
) -> list[tuple[int, float, float]]:
    """(vm count, mean FFD cost, mean Entropy cost) — the two series of
    Figure 10."""
    rows = []
    for vm_count, items in sorted(group_by_vm_count(comparisons).items()):
        rows.append(
            (
                vm_count,
                mean(c.ffd_cost for c in items),
                mean(c.entropy_cost for c in items),
            )
        )
    return rows


# --------------------------------------------------------------------------- #
# Figure 11: cost vs duration of the context switches                          #
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class SwitchStatistics:
    """Aggregate statistics over the context switches of a run."""

    count: int
    average_duration: float
    max_duration: float
    average_cost: float
    max_cost: int
    total_migrations: int
    total_suspends: int
    total_resumes: int
    local_resume_fraction: float


def switch_statistics(switches: Sequence[ContextSwitchRecord]) -> SwitchStatistics:
    significant = [s for s in switches if s.action_count > 0]
    if not significant:
        return SwitchStatistics(0, 0.0, 0.0, 0.0, 0, 0, 0, 0, 0.0)
    resumes = sum(s.resumes for s in significant)
    local = sum(s.local_resumes for s in significant)
    return SwitchStatistics(
        count=len(significant),
        average_duration=mean(s.duration for s in significant),
        max_duration=max(s.duration for s in significant),
        average_cost=mean(s.cost for s in significant),
        max_cost=max(s.cost for s in significant),
        total_migrations=sum(s.migrations for s in significant),
        total_suspends=sum(s.suspends for s in significant),
        total_resumes=resumes,
        local_resume_fraction=(local / resumes) if resumes else 0.0,
    )


def cost_duration_pairs(
    switches: Sequence[ContextSwitchRecord],
) -> list[tuple[int, float]]:
    """The (cost, duration) scatter of Figure 11."""
    return [(s.cost, s.duration) for s in switches if s.action_count > 0]


# --------------------------------------------------------------------------- #
# Figure 13 and the headline makespan                                          #
# --------------------------------------------------------------------------- #

def average_cpu_utilization(
    samples: Sequence[UtilizationSample], until: Optional[float] = None
) -> float:
    """Time-averaged fraction of the processing units in use."""
    selected = [s for s in samples if until is None or s.time <= until]
    if not selected:
        return 0.0
    return mean(s.cpu_fraction for s in selected)


def average_memory_utilization_gb(
    samples: Sequence[UtilizationSample], until: Optional[float] = None
) -> float:
    selected = [s for s in samples if until is None or s.time <= until]
    if not selected:
        return 0.0
    return mean(s.memory_used_mb for s in selected) / 1024.0


def makespan_reduction(baseline_makespan: float, entropy_makespan: float) -> float:
    """Fractional reduction of the total completion time (the paper reports
    ~40 %: 250 minutes down to 150 minutes)."""
    if baseline_makespan <= 0:
        return 0.0
    return 1.0 - entropy_makespan / baseline_makespan


# --------------------------------------------------------------------------- #
# Chaos scenarios: recovery statistics                                         #
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class RecoveryStatistics:
    """Aggregate health of one fault-injected run.

    ``lost_vjobs`` must be 0 for a recovery to count as successful: every
    submitted vjob eventually completed despite the injected faults.
    """

    fault_count: int
    repaired_vjobs: int
    mean_repair_latency: float
    max_repair_latency: float
    wasted_migrations: int
    lost_vjobs: int
    sla_violations: int

    @property
    def fully_recovered(self) -> bool:
        return self.lost_vjobs == 0


def recovery_statistics(result: RunResult) -> RecoveryStatistics:
    """Summarize the chaos metrics of one run (all zeros when fault-free)."""
    latencies = list(result.repair_latencies.values())
    return RecoveryStatistics(
        fault_count=len(result.faults),
        repaired_vjobs=len(latencies),
        mean_repair_latency=mean(latencies) if latencies else 0.0,
        max_repair_latency=max(latencies) if latencies else 0.0,
        wasted_migrations=result.wasted_migrations,
        lost_vjobs=result.lost_vjob_count,
        sla_violations=len(result.sla_violations),
    )


def makespan_inflation(baseline: float, chaotic: float) -> float:
    """Fractional makespan increase of a chaos run over its fault-free twin
    (0.10 = the faults cost 10 % extra wall-clock time)."""
    if baseline <= 0:
        return 0.0
    return chaotic / baseline - 1.0


def resample(
    samples: Sequence[UtilizationSample], step: float, horizon: Optional[float] = None
) -> list[UtilizationSample]:
    """Piecewise-constant resampling of a utilization series on a regular
    grid, convenient for aligned comparisons between two runs."""
    if not samples:
        return []
    ordered = sorted(samples, key=lambda s: s.time)
    end = horizon if horizon is not None else ordered[-1].time
    result = []
    time = 0.0
    index = 0
    while time <= end:
        while index + 1 < len(ordered) and ordered[index + 1].time <= time:
            index += 1
        current = ordered[index]
        result.append(
            UtilizationSample(
                time=time,
                cpu_demand_units=current.cpu_demand_units,
                cpu_used_units=current.cpu_used_units,
                cpu_capacity_units=current.cpu_capacity_units,
                memory_used_mb=current.memory_used_mb,
            )
        )
        time += step
    return result
