"""Metrics and reporting helpers for the experiment harness."""

from .metrics import (
    CostComparison,
    RecoveryStatistics,
    SwitchStatistics,
    average_cost_reduction,
    average_cpu_utilization,
    average_memory_utilization_gb,
    cost_duration_pairs,
    group_by_vm_count,
    makespan_inflation,
    makespan_reduction,
    mean_costs_by_vm_count,
    recovery_statistics,
    resample,
    switch_statistics,
)
from .report import (
    banner,
    campaign_table,
    format_fraction,
    format_seconds,
    format_table,
    series,
)

__all__ = [
    "CostComparison",
    "RecoveryStatistics",
    "SwitchStatistics",
    "makespan_inflation",
    "recovery_statistics",
    "average_cost_reduction",
    "average_cpu_utilization",
    "average_memory_utilization_gb",
    "cost_duration_pairs",
    "group_by_vm_count",
    "makespan_reduction",
    "mean_costs_by_vm_count",
    "resample",
    "switch_statistics",
    "banner",
    "campaign_table",
    "format_fraction",
    "format_seconds",
    "format_table",
    "series",
]
