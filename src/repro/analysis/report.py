"""Plain-text rendering of the experiment tables and figure series.

The benchmark harness regenerates every table and figure of the paper's
evaluation as textual tables (one row per series point), suitable both for the
console and for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = [render_row(list(headers))]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in materialized)
    return "\n".join(lines)


def format_seconds(value: float) -> str:
    """``mm:ss`` rendering used for context-switch durations."""
    minutes = int(value // 60)
    seconds = value - minutes * 60
    return f"{minutes:02d}:{seconds:04.1f}"


def format_fraction(value: float) -> str:
    return f"{100.0 * value:.1f}%"


def banner(title: str) -> str:
    bar = "=" * max(20, len(title) + 4)
    return f"{bar}\n  {title}\n{bar}"


def series(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """A titled table — the standard output of every benchmark."""
    return f"{banner(title)}\n{format_table(headers, rows)}\n"


#: Column order of :func:`campaign_table` (key -> header).
_CAMPAIGN_COLUMNS = (
    ("policy", "policy"),
    ("fleet", "fleet"),
    ("faults", "faults"),
    ("runs", "runs"),
    ("mean_makespan", "makespan"),
    ("mean_switches", "switches"),
    ("mean_switch_cost", "switch cost"),
    ("sla_violations", "SLA viol."),
    ("lost_vjobs", "lost"),
    ("mean_runtime_seconds", "runtime (s)"),
)


def campaign_table(rows: Iterable[dict]) -> str:
    """Render aggregated campaign rows (see
    :meth:`repro.scale.campaign.CampaignResult.aggregate`) as the standard
    titled table, sorted by (policy, fleet, faults) for stable output."""
    materialized = sorted(
        rows, key=lambda r: (str(r["policy"]), r["fleet"], str(r["faults"]))
    )
    headers = [header for _, header in _CAMPAIGN_COLUMNS]
    body = [
        [row.get(key, "") for key, _ in _CAMPAIGN_COLUMNS]
        for row in materialized
    ]
    return series("Campaign results", headers, body)


def phase_table(traces: Iterable[dict], title: str = "Phase breakdown") -> str:
    """Render a per-phase wall-time breakdown aggregated over one or more
    traced runs (:mod:`repro.obs` span trees — either full
    :meth:`~repro.api.results.RunResult.to_dict` documents or bare trace
    dicts).  Phases are sorted by total time, descending; runs without a
    trace are skipped."""
    from ..obs import load_trace, phase_totals

    merged: dict[str, dict[str, float]] = {}
    runs = 0
    for trace in traces:
        if trace is None:
            continue
        if "trace" in trace and trace.get("trace") is None:
            continue  # an untraced RunResult document
        root = load_trace(trace)
        runs += 1
        for name, stats in phase_totals(root).items():
            bucket = merged.setdefault(
                name, {"count": 0, "total_s": 0.0, "self_s": 0.0, "max_s": 0.0}
            )
            bucket["count"] += stats["count"]
            bucket["total_s"] += stats["total_s"]
            bucket["self_s"] += stats["self_s"]
            bucket["max_s"] = max(bucket["max_s"], stats["max_s"])
    headers = ("phase", "count", "total s", "self s", "max s")
    body = [
        [
            name,
            int(stats["count"]),
            f"{stats['total_s']:.3f}",
            f"{stats['self_s']:.3f}",
            f"{stats['max_s']:.3f}",
        ]
        for name, stats in sorted(
            merged.items(), key=lambda item: (-item[1]["total_s"], item[0])
        )
    ]
    return series(f"{title} ({runs} traced runs)", headers, body)
