"""Public API of the pluggable control loop.

This package is the single entry point for building and running experiments:

* :class:`Scenario` / :class:`ExperimentBuilder` — declarative experiment
  description replacing hand-wired simulation setup;
* :class:`ControlLoop` — the policy-agnostic observe/decide/plan/execute loop;
* :class:`Decision` / :class:`DecisionModule` — the contract every decision
  policy implements;
* :func:`register_decision_module` / :func:`get_decision_module` — the
  string-keyed policy registry ("consolidation", "fcfs", "ffd", "rjsp" are
  pre-registered);
* :class:`RunResult` and friends — the structured result every run returns,
  including the chaos series (:class:`FaultRecord` timeline, repair
  latencies, SLA violations, lost vjobs) populated when a scenario attaches
  a :class:`~repro.sim.faults.FaultSchedule` (``Scenario(faults=...)``);
* :class:`LoopObserver` — per-iteration hooks for metrics and tracing
  (``on_fault`` / ``on_repair`` fire during chaos runs).
"""

from .decision import (
    Decision,
    DecisionModule,
    empty_configuration,
    needs_switch,
    stop_terminated_vms,
)
from .events import LoopObserver, RecordingObserver
from .loop import ControlLoop, policy_label, resolve_policy
from .registry import (
    UnknownDecisionModuleError,
    available_decision_modules,
    get_decision_module,
    register_decision_module,
)
from .results import (
    ConstraintViolationRecord,
    ContextSwitchRecord,
    FaultRecord,
    RunResult,
    UtilizationSample,
)
from .scenario import ExperimentBuilder, Scenario

__all__ = [
    "FaultRecord",
    "Decision",
    "DecisionModule",
    "empty_configuration",
    "needs_switch",
    "stop_terminated_vms",
    "LoopObserver",
    "RecordingObserver",
    "ControlLoop",
    "policy_label",
    "resolve_policy",
    "UnknownDecisionModuleError",
    "available_decision_modules",
    "get_decision_module",
    "register_decision_module",
    "ConstraintViolationRecord",
    "ContextSwitchRecord",
    "RunResult",
    "UtilizationSample",
    "ExperimentBuilder",
    "Scenario",
]
