"""The ``Scenario`` / ``ExperimentBuilder`` facade over the control loop.

A :class:`Scenario` is a declarative description of one experiment — the
cluster, the workloads, the decision policy (by registry name or instance)
and the loop parameters.  It replaces hand-constructed loop wiring::

    from repro import Scenario

    result = Scenario(nodes=nodes, workloads=workloads, policy="consolidation").run()

The same scenario runs unmodified under any registered policy
(:meth:`Scenario.with_policy`, :meth:`Scenario.compare`), and
:meth:`Scenario.run_static` executes the analytic FCFS + static-allocation
baseline of Section 5.2 on the identical workload for head-to-head
comparisons.  :class:`ExperimentBuilder` is the fluent spelling of the same
facade for incremental construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Optional, Sequence

from .. import config
from ..constraints.base import PlacementConstraint
from ..model.node import Node
from ..obs import Tracer
from ..sim.faults import FaultInjector, FaultSchedule
from ..sim.hypervisor import DEFAULT_HYPERVISOR, HypervisorModel
from ..workloads.traces import VJobWorkload
from .events import LoopObserver
from .loop import ControlLoop, PolicyLike, policy_label
from .results import RunResult


@dataclass
class Scenario:
    """A declarative experiment: cluster + workloads + policy + loop knobs.

    ``faults`` attaches a :class:`~repro.sim.faults.FaultSchedule` (node
    crashes, slow-downs, migration failures, delayed boots); a fresh
    :class:`~repro.sim.faults.FaultInjector` is built per run so repeated
    builds stay independent.  ``sla_factor`` turns on SLA accounting: a vjob
    violates its SLA when its turnaround (completion minus submission time)
    exceeds ``sla_factor`` times its ideal execution time.

    ``constraints`` attaches placement relations from the
    :mod:`repro.constraints` catalog (``Spread``, ``Fence``, ``MaxOnline``,
    ...): the optimizer compiles them into its CP model, heuristic policies
    filter their candidate nodes with them, every plan and the live cluster
    are checked continuously, and the violation timeline lands on
    :attr:`RunResult.constraint_violations`.

    ``engine`` selects the solving strategy for every planning round:
    ``"event"`` (default) and ``"fixpoint"`` pick the monolithic optimizer's
    propagation engine, ``"partitioned"`` decomposes the cluster into
    independent placement zones solved concurrently on ``max_workers``
    processes (:mod:`repro.scale`), falling back to the monolithic solve
    whenever no decomposition exists.  ``"repair"`` and
    ``"repair-partitioned"`` (:mod:`repro.repair`) replan incrementally:
    the loop tracks the VMs each round perturbed (crash victims, arrivals,
    violated-constraint members), the solver freezes everything else and
    re-solves the dirty region only — widened by ``repair_halo`` rounds of
    co-host expansion — falling back to the full solve on infeasibility.

    ``trace=True`` attaches a :class:`repro.obs.Tracer` to the run: every
    round records observe/decide/plan/solve/execute child spans (zone and
    repair-attempt spans included) and the finished
    :attr:`RunResult.trace` carries the whole span tree — summarize it
    with the ``repro-trace`` CLI or export it to Chrome trace-event JSON
    (see ``docs/OBSERVABILITY.md``).
    """

    nodes: Sequence[Node] = ()
    workloads: Sequence[VJobWorkload] = ()
    policy: PolicyLike = "consolidation"
    policy_options: dict[str, Any] = field(default_factory=dict)
    period: float = config.DECISION_PERIOD_S
    optimizer_timeout: float = 10.0
    use_optimizer: bool = True
    engine: str = "event"
    max_workers: Optional[int] = None
    repair_halo: int = 1
    hypervisor: HypervisorModel = DEFAULT_HYPERVISOR
    monitoring_delay: float = config.MONITORING_DELAY_S
    max_time: float = 24 * 3600.0
    max_consecutive_planning_failures: int = 25
    faults: Optional[FaultSchedule] = None
    sla_factor: Optional[float] = None
    constraints: Sequence[PlacementConstraint] = ()
    observers: list[LoopObserver] = field(default_factory=list)
    trace: bool = False

    def __post_init__(self) -> None:
        self.nodes = list(self.nodes)
        self.workloads = list(self.workloads)
        self.constraints = list(self.constraints)
        if not self.nodes:
            raise ValueError("a scenario needs at least one node")

    # ------------------------------------------------------------------ #
    # construction helpers                                                #
    # ------------------------------------------------------------------ #

    def with_policy(self, policy: PolicyLike, **options: Any) -> "Scenario":
        """A copy of this scenario driven by another decision policy."""
        return replace(
            self,
            policy=policy,
            policy_options=dict(options),
            observers=list(self.observers),
        )

    def with_faults(
        self,
        schedule: FaultSchedule,
        workloads: Optional[Sequence[VJobWorkload]] = None,
    ) -> "Scenario":
        """A copy of this scenario running under ``schedule``.

        A run mutates vjob state, so comparing a fault-free run with its
        chaotic twin needs fresh ``workloads`` for the copy (rebuild them
        from the same seed); without them the copy shares this scenario's
        workload objects and only one of the two scenarios can run.
        """
        copied = replace(self, faults=schedule, observers=list(self.observers))
        if workloads is not None:
            copied.workloads = list(workloads)
        return copied

    def with_constraints(
        self, *constraints: PlacementConstraint
    ) -> "Scenario":
        """A copy of this scenario with ``constraints`` *added* to the
        catalog already attached (pass none to copy unchanged)::

            scenario.with_constraints(Spread(["db.0", "db.1"]),
                                      Fence(["licensed"], ["node-1"]))
        """
        return replace(
            self,
            constraints=[*self.constraints, *constraints],
            observers=list(self.observers),
        )

    def observe(self, observer: LoopObserver) -> "Scenario":
        """Attach an observer (returns ``self`` for chaining)."""
        self.observers.append(observer)
        return self

    # ------------------------------------------------------------------ #
    # execution                                                           #
    # ------------------------------------------------------------------ #

    def build(self, command_queue: Optional[Any] = None) -> ControlLoop:
        """Wire the control loop for this scenario without running it.

        Use this when the experiment needs access to the live simulation
        state (queue, cluster configuration) after the run.

        ``command_queue`` (duck-typed, ``drain(loop, now) -> bool``) lets an
        operator — the :mod:`repro.service` daemon, or a test — submit vjobs
        and inject faults at iteration boundaries while the loop runs.
        """
        # Workloads carry mutable vjob state; fresh vjobs per build would
        # require deep-copying traces, so one scenario instance should be
        # rebuilt from fresh workloads for truly independent repetitions.
        # The fault injector, by contrast, is rebuilt from the (passive)
        # schedule here, so it never leaks state between builds.
        return ControlLoop(
            nodes=self.nodes,
            workloads=self.workloads,
            policy=self.policy,
            policy_options=self.policy_options,
            period=self.period,
            optimizer_timeout=self.optimizer_timeout,
            use_optimizer=self.use_optimizer,
            engine=self.engine,
            max_workers=self.max_workers,
            repair_halo=self.repair_halo,
            hypervisor=self.hypervisor,
            monitoring_delay=self.monitoring_delay,
            max_time=self.max_time,
            observers=self.observers,
            max_consecutive_planning_failures=(
                self.max_consecutive_planning_failures
            ),
            fault_injector=(
                FaultInjector(self.faults) if self.faults is not None else None
            ),
            sla_factor=self.sla_factor,
            constraints=self.constraints,
            command_queue=command_queue,
            tracer=Tracer() if self.trace else None,
        )

    def run(self) -> RunResult:
        """Build the loop and run the scenario to completion."""
        return self.build().run()

    def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 8090,
        audit_path: Optional[str] = None,
        autostart: bool = False,
    ):
        """Expose this scenario through the :mod:`repro.service` operator
        daemon: REST/JSON endpoints for configuration, telemetry, Prometheus
        metrics, the audit log, mid-run vjob submission and fault injection.

        Returns the (not yet started) :class:`~repro.service.OperatorDaemon`;
        call ``start()`` on it — or pass ``autostart=True`` — and ``close()``
        when done.  The import is local so ``repro.api`` stays free of any
        service dependency for library users.
        """
        from ..service.daemon import OperatorDaemon

        daemon = OperatorDaemon(
            self, host=host, port=port, audit_path=audit_path
        )
        if autostart:
            daemon.start()
        return daemon

    def run_static(self, backfilling: Optional[str] = None) -> RunResult:
        """Run the analytic FCFS + static-allocation baseline (Section 5.2)
        on the same cluster and workloads.

        When ``backfilling`` is not given and this scenario's policy is the
        loop's ``"fcfs"`` module, the baseline uses the *same* backfilling
        setting as that module, so head-to-head comparisons measure the
        static-vs-loop distinction rather than mismatched backfilling
        defaults; otherwise the paper's EASY default applies.
        """
        from ..entropy.static import StaticAllocationSimulator

        if backfilling is None:
            if policy_label(self.policy) == "fcfs":
                if isinstance(self.policy, str):
                    from ..decision.fcfs import FCFSDecisionModule

                    backfilling = self.policy_options.get(
                        "backfilling", FCFSDecisionModule().backfilling
                    )
                else:
                    backfilling = getattr(self.policy, "backfilling", "easy")
            else:
                backfilling = "easy"
        return StaticAllocationSimulator(
            self.nodes, self.workloads, backfilling=backfilling
        ).run()

    def compare(
        self,
        policies: Sequence[PolicyLike],
        workload_factory=None,
    ) -> dict[str, RunResult]:
        """Run this scenario once per policy and key the results by policy.

        Vjob state is mutated by a run, so comparing policies on the *same*
        workload objects needs a ``workload_factory`` — a zero-argument
        callable returning fresh workloads for each run.  Without one, the
        scenario's own workloads are reused and a second run would observe
        terminated vjobs; a ``ValueError`` keeps that mistake loud.
        """
        if workload_factory is None and len(policies) > 1:
            raise ValueError(
                "comparing several policies mutates vjob state; pass "
                "workload_factory=lambda: <fresh workloads> so each run "
                "starts from pristine vjobs"
            )
        labels = [policy_label(policy) for policy in policies]
        if len(set(labels)) != len(labels):
            raise ValueError(
                f"policies must have distinct labels, got {labels}; results "
                "are keyed by label, so duplicates would silently overwrite "
                "each other — give custom modules distinct `name` attributes"
            )
        results: dict[str, RunResult] = {}
        for policy in policies:
            if policy == self.policy:
                # Keep the scenario's own options for its configured policy.
                scenario = self.with_policy(policy, **self.policy_options)
            else:
                scenario = self.with_policy(policy)
            if workload_factory is not None:
                scenario.workloads = list(workload_factory())
            results[policy_label(policy)] = scenario.run()
        return results


class ExperimentBuilder:
    """Fluent builder for :class:`Scenario`.

    Example::

        result = (
            ExperimentBuilder()
            .nodes(make_working_nodes(4, cpu_capacity=2, memory_capacity=3584))
            .workloads(workloads)
            .policy("fcfs", backfilling="none")
            .optimizer_timeout(2.0)
            .observe(RecordingObserver())
            .run()
        )
    """

    def __init__(self) -> None:
        # Only explicitly-set overrides are stored; Scenario owns every
        # default, so the two construction paths cannot drift apart.
        self._overrides: dict[str, Any] = {}
        self._observers: list[LoopObserver] = []

    def nodes(self, nodes: Sequence[Node]) -> "ExperimentBuilder":
        self._overrides["nodes"] = nodes
        return self

    def workloads(self, workloads: Sequence[VJobWorkload]) -> "ExperimentBuilder":
        self._overrides["workloads"] = workloads
        return self

    def policy(self, policy: PolicyLike, **options: Any) -> "ExperimentBuilder":
        self._overrides["policy"] = policy
        self._overrides["policy_options"] = dict(options)
        return self

    def period(self, seconds: float) -> "ExperimentBuilder":
        self._overrides["period"] = seconds
        return self

    def optimizer_timeout(self, seconds: float) -> "ExperimentBuilder":
        self._overrides["optimizer_timeout"] = seconds
        return self

    def use_optimizer(self, enabled: bool) -> "ExperimentBuilder":
        self._overrides["use_optimizer"] = enabled
        return self

    def engine(self, engine: str) -> "ExperimentBuilder":
        """Solver engine: ``"event"``, ``"fixpoint"``, ``"partitioned"``
        (zones solved concurrently — see :mod:`repro.scale`), ``"repair"``
        or ``"repair-partitioned"`` (incremental replanning over the
        perturbed region only — see :mod:`repro.repair`)."""
        self._overrides["engine"] = engine
        return self

    def max_workers(self, count: int) -> "ExperimentBuilder":
        """Worker processes for the partitioned engine's zone solves."""
        self._overrides["max_workers"] = count
        return self

    def repair_halo(self, rounds: int) -> "ExperimentBuilder":
        """Co-host expansion rounds of the repair engines' dirty region."""
        self._overrides["repair_halo"] = rounds
        return self

    def hypervisor(self, model: HypervisorModel) -> "ExperimentBuilder":
        self._overrides["hypervisor"] = model
        return self

    def monitoring_delay(self, seconds: float) -> "ExperimentBuilder":
        self._overrides["monitoring_delay"] = seconds
        return self

    def max_time(self, seconds: float) -> "ExperimentBuilder":
        self._overrides["max_time"] = seconds
        return self

    def max_consecutive_planning_failures(self, count: int) -> "ExperimentBuilder":
        self._overrides["max_consecutive_planning_failures"] = count
        return self

    def faults(self, schedule: FaultSchedule) -> "ExperimentBuilder":
        self._overrides["faults"] = schedule
        return self

    def sla_factor(self, factor: float) -> "ExperimentBuilder":
        self._overrides["sla_factor"] = factor
        return self

    def constraints(
        self, *constraints: PlacementConstraint
    ) -> "ExperimentBuilder":
        """Attach placement constraints (cumulative across calls)."""
        existing = list(self._overrides.get("constraints", ()))
        self._overrides["constraints"] = [*existing, *constraints]
        return self

    def observe(self, observer: LoopObserver) -> "ExperimentBuilder":
        self._observers.append(observer)
        return self

    def trace(self, enabled: bool = True) -> "ExperimentBuilder":
        """Record a :mod:`repro.obs` span trace on the run's result."""
        self._overrides["trace"] = enabled
        return self

    def build(self) -> Scenario:
        return Scenario(observers=list(self._observers), **self._overrides)

    def run(self) -> RunResult:
        return self.build().run()
