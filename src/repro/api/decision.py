"""The unified decision-module contract of the pluggable control loop.

Section 3.1 of the paper describes Entropy as a *modular* framework: the
observe/decide/plan/execute loop is fixed, while the decision module — the
piece that chooses which vjobs should run during the next iteration — is
replaceable.  This module captures that contract:

* :class:`Decision` is the single result type every decision module returns:
  the state each VM must reach, the matching vjob states, an optional explicit
  target configuration (for baselines that compute their own placement), an
  optional fallback configuration for when the CP search runs out of time, and
  free-form metadata for policy-specific diagnostics;
* :class:`DecisionModule` is the structural protocol a policy implements —
  a ``decide(configuration, queue, demands)`` method returning a
  :class:`Decision`;
* :func:`needs_switch` and :func:`stop_terminated_vms` are the two pieces of
  logic every policy (and the loop itself) shares, factored out of the
  individual modules.

Concrete policies live in :mod:`repro.decision` and are published through the
registry (:mod:`repro.api.registry`) so scenarios can select them by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, MutableMapping, Optional, Protocol, runtime_checkable

from ..model.configuration import Configuration
from ..model.node import Node
from ..model.queue import VJobQueue
from ..model.vjob import VJobState
from ..model.vm import VMState


@dataclass
class Decision:
    """What a decision module wants the next configuration to look like.

    ``vm_states`` is the authoritative output: the planner derives the
    cluster-wide context switch from it.  ``target`` short-circuits the
    optimizer with an explicit target configuration (used by the FFD baseline
    of Section 5.1); ``fallback_target`` is only used when the CP search
    cannot produce an assignment within its time budget.  Policy-specific
    artefacts (e.g. the :class:`~repro.decision.rjsp.RJSPResult` behind a
    consolidation decision) travel in ``metadata``.
    """

    vm_states: dict[str, VMState] = field(default_factory=dict)
    vjob_states: dict[str, VJobState] = field(default_factory=dict)
    #: Explicit target configuration; when set, the loop plans directly
    #: towards it instead of running the CP optimizer.
    target: Optional[Configuration] = None
    #: Fallback target configuration (typically an FFD placement) used when
    #: the CP search cannot produce an assignment in time.
    fallback_target: Optional[Configuration] = None
    #: Free-form policy diagnostics (e.g. ``{"rjsp": RJSPResult}``).
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def is_noop(self) -> bool:
        return not self.vm_states

    @property
    def rjsp(self):
        """The RJSP outcome behind this decision, when the policy solved one."""
        return self.metadata.get("rjsp")


@runtime_checkable
class DecisionModule(Protocol):
    """Structural protocol every pluggable decision policy implements.

    A decision module observes the current configuration, the vjob queue and
    the fresh CPU demands reported by the monitoring service, and returns the
    :class:`Decision` driving the next cluster-wide context switch.  Policies
    should also expose a ``name`` class attribute matching their registry key.
    """

    def decide(
        self,
        configuration: Configuration,
        queue: VJobQueue,
        demands: Optional[Mapping[str, int]] = None,
    ) -> Decision:
        """Compute the target state of every VM for the next iteration."""
        ...


def needs_switch(configuration: Configuration, decision: Decision) -> bool:
    """Whether reaching ``decision`` requires a cluster-wide context switch.

    A switch is needed when at least one VM is not in its wanted state, or
    when the current configuration is not viable (e.g. the demand of a running
    VM grew beyond the capacity of its node).
    """
    for vm_name, state in decision.vm_states.items():
        if configuration.state_of(vm_name) is not state:
            return True
    return not configuration.is_viable()


def empty_configuration(configuration: Configuration) -> Configuration:
    """A copy of ``configuration`` with the same nodes and no VM placed —
    the blank slate policies use for trial packings."""
    return Configuration(
        nodes=[
            Node(
                name=node.name,
                cpu_capacity=node.cpu_capacity,
                memory_capacity=node.memory_capacity,
                role=node.role,
            )
            for node in configuration.nodes
        ]
    )


def stop_terminated_vms(
    configuration: Configuration,
    queue: VJobQueue,
    vm_states: MutableMapping[str, VMState],
) -> MutableMapping[str, VMState]:
    """Mark the still-running VMs of terminated vjobs for termination.

    Every policy must release the resources of completed vjobs; this shared
    pass adds the required ``TERMINATED`` entries to ``vm_states`` (in place)
    and returns it.
    """
    for vjob in queue.terminated():
        for vm in vjob.vms:
            if (
                configuration.has_vm(vm.name)
                and configuration.state_of(vm.name) is VMState.RUNNING
            ):
                vm_states[vm.name] = VMState.TERMINATED
    return vm_states
