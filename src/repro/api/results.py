"""Structured results shared by every control-loop run.

One :class:`RunResult` is produced per scenario run regardless of the policy
driving the loop, so benchmarks, examples and tests compare strategies
without policy-specific plumbing: the Figure 11 context-switch records, the
Figure 13 utilization samples, the per-vjob completion times and the headline
makespan all live here.  Chaos runs add their own series: the
:class:`FaultRecord` timeline, per-vjob repair latencies, SLA violations and
the wasted-migration count (see ``docs/SIMULATOR_GUIDE.md`` for what each
metric means and how it is computed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class ContextSwitchRecord:
    """One cluster-wide context switch performed during a run (Figure 11).

    ``failed_migrations`` counts migration attempts aborted by fault
    injection during this switch (always 0 on a fault-free run).
    """

    time: float
    cost: int
    duration: float
    migrations: int
    runs: int
    stops: int
    suspends: int
    resumes: int
    local_resumes: int
    used_fallback: bool = False
    failed_migrations: int = 0

    @property
    def action_count(self) -> int:
        return self.migrations + self.runs + self.stops + self.suspends + self.resumes


@dataclass(frozen=True)
class FaultRecord:
    """One fault applied to the cluster during a run.

    ``kind`` is the :class:`~repro.sim.faults.FaultKind` value string
    (``"node_crash"``, ``"node_slowdown"``, ``"migration_failure"``,
    ``"delayed_boot"``); ``time`` is when the fault was *scheduled* and
    ``detected_at`` when the control loop observed and applied it (the next
    iteration boundary — monitoring-grain detection, like a real cluster).
    ``affected_vjobs`` lists the vjobs a crash knocked back to Waiting.
    """

    time: float
    kind: str
    target: str
    detected_at: float = 0.0
    affected_vjobs: tuple[str, ...] = ()
    detail: str = ""

    @property
    def detection_delay(self) -> float:
        return self.detected_at - self.time


@dataclass(frozen=True)
class ConstraintViolationRecord:
    """One placement constraint observed broken during a run.

    ``constraint`` is the catalog relation's stable label (its ``repr``);
    ``phase`` tells where the breach was observed:

    * ``"plan"`` — an intended intermediate state of a reconfiguration plan
      (continuous satisfaction at pool granularity, reported by the planner);
    * ``"execution"`` — the *live* cluster at a pool boundary while the
      switch executed (fault-injected deviations included);
    * ``"configuration"`` — the cluster state at an iteration boundary,
      after the switch (or non-switch) of that round settled.

    ``stage`` is the number of pools applied when the breach was observed
    (``1`` = after the first pool) for the plan/execution phases — the same
    boundary gets the same stage in both — and ``None`` otherwise.
    """

    time: float
    constraint: str
    phase: str
    message: str = ""
    stage: int | None = None


@dataclass(frozen=True)
class UtilizationSample:
    """One point of the Figure 13 utilization curves."""

    time: float
    cpu_demand_units: int
    cpu_used_units: int
    cpu_capacity_units: int
    memory_used_mb: int

    @property
    def cpu_fraction(self) -> float:
        if self.cpu_capacity_units == 0:
            return 0.0
        return self.cpu_used_units / self.cpu_capacity_units

    @property
    def cpu_demand_fraction(self) -> float:
        """Demanded CPU over capacity; can exceed 1 on an overloaded cluster,
        like the 29/22 peak of Section 5.2."""
        if self.cpu_capacity_units == 0:
            return 0.0
        return self.cpu_demand_units / self.cpu_capacity_units


@dataclass
class RunResult:
    """Everything measured during one control-loop run.

    ``policy`` names the decision module that drove the run (its registry
    key when available); ``metadata`` carries run-level extras such as the
    viability of the final configuration.

    The chaos series are empty on fault-free runs:

    * ``faults`` — chronological :class:`FaultRecord` timeline;
    * ``repair_latencies`` — vjob name -> seconds between a crash knocking
      the vjob out and the switch that put it back in the Running state
      completing (detection delay included);
    * ``sla_violations`` — vjobs whose turnaround exceeded
      ``sla_factor x`` their ideal execution time (only populated when the
      scenario sets ``sla_factor``); unfinished vjobs always violate;
    * ``unfinished_vjobs`` — submitted vjobs that never completed ("lost"
      vjobs; a recovery scenario is only healthy when this is empty).

    Constrained runs (``Scenario.with_constraints``) additionally fill
    ``constraint_violations`` — the chronological per-constraint violation
    timeline — summarized by :attr:`constraint_violation_counts`.
    """

    makespan: float = 0.0
    policy: str = ""
    switches: list[ContextSwitchRecord] = field(default_factory=list)
    utilization: list[UtilizationSample] = field(default_factory=list)
    completion_times: dict[str, float] = field(default_factory=dict)
    metadata: dict[str, Any] = field(default_factory=dict)
    faults: list[FaultRecord] = field(default_factory=list)
    repair_latencies: dict[str, float] = field(default_factory=dict)
    sla_violations: list[str] = field(default_factory=list)
    unfinished_vjobs: list[str] = field(default_factory=list)
    constraint_violations: list[ConstraintViolationRecord] = field(
        default_factory=list
    )

    @property
    def average_switch_duration(self) -> float:
        significant = [s.duration for s in self.switches if s.action_count]
        if not significant:
            return 0.0
        return sum(significant) / len(significant)

    @property
    def switch_count(self) -> int:
        return sum(1 for s in self.switches if s.action_count)

    @property
    def total_switch_cost(self) -> int:
        return sum(s.cost for s in self.switches)

    @property
    def mean_repair_latency(self) -> float:
        """Average crash-to-running latency over the repaired vjobs (0.0
        when nothing crashed)."""
        if not self.repair_latencies:
            return 0.0
        return sum(self.repair_latencies.values()) / len(self.repair_latencies)

    @property
    def wasted_migrations(self) -> int:
        """Migration attempts aborted by fault injection across the run."""
        return sum(s.failed_migrations for s in self.switches)

    @property
    def lost_vjob_count(self) -> int:
        """Submitted vjobs that never completed — 0 on a healthy recovery."""
        return len(self.unfinished_vjobs)

    @property
    def constraint_violation_counts(self) -> dict[str, int]:
        """Violation events per constraint label over the whole run."""
        counts: dict[str, int] = {}
        for record in self.constraint_violations:
            counts[record.constraint] = counts.get(record.constraint, 0) + 1
        return counts

    @property
    def honoured_constraints(self) -> bool:
        """True when no constraint violation was observed during the run."""
        return not self.constraint_violations

    def completed(self, name: str) -> bool:
        return name in self.completion_times
