"""Structured results shared by every control-loop run.

One :class:`RunResult` is produced per scenario run regardless of the policy
driving the loop, so benchmarks, examples and tests compare strategies
without policy-specific plumbing: the Figure 11 context-switch records, the
Figure 13 utilization samples, the per-vjob completion times and the headline
makespan all live here.  Chaos runs add their own series: the
:class:`FaultRecord` timeline, per-vjob repair latencies, SLA violations and
the wasted-migration count (see ``docs/SIMULATOR_GUIDE.md`` for what each
metric means and how it is computed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass(frozen=True)
class ContextSwitchRecord:
    """One cluster-wide context switch performed during a run (Figure 11).

    ``failed_migrations`` counts migration attempts aborted by fault
    injection during this switch (always 0 on a fault-free run).
    """

    time: float
    cost: int
    duration: float
    migrations: int
    runs: int
    stops: int
    suspends: int
    resumes: int
    local_resumes: int
    used_fallback: bool = False
    failed_migrations: int = 0

    @property
    def action_count(self) -> int:
        return self.migrations + self.runs + self.stops + self.suspends + self.resumes


@dataclass(frozen=True)
class FaultRecord:
    """One fault applied to the cluster during a run.

    ``kind`` is the :class:`~repro.sim.faults.FaultKind` value string
    (``"node_crash"``, ``"node_slowdown"``, ``"migration_failure"``,
    ``"delayed_boot"``); ``time`` is when the fault was *scheduled* and
    ``detected_at`` when the control loop observed and applied it (the next
    iteration boundary — monitoring-grain detection, like a real cluster).
    ``affected_vjobs`` lists the vjobs a crash knocked back to Waiting.
    """

    time: float
    kind: str
    target: str
    detected_at: float = 0.0
    affected_vjobs: tuple[str, ...] = ()
    detail: str = ""

    @property
    def detection_delay(self) -> float:
        return self.detected_at - self.time


@dataclass(frozen=True)
class ConstraintViolationRecord:
    """One placement constraint observed broken during a run.

    ``constraint`` is the catalog relation's stable label (its ``repr``);
    ``phase`` tells where the breach was observed:

    * ``"plan"`` — an intended intermediate state of a reconfiguration plan
      (continuous satisfaction at pool granularity, reported by the planner);
    * ``"execution"`` — the *live* cluster at a pool boundary while the
      switch executed (fault-injected deviations included);
    * ``"configuration"`` — the cluster state at an iteration boundary,
      after the switch (or non-switch) of that round settled.

    ``stage`` is the number of pools applied when the breach was observed
    (``1`` = after the first pool) for the plan/execution phases — the same
    boundary gets the same stage in both — and ``None`` otherwise.
    """

    time: float
    constraint: str
    phase: str
    message: str = ""
    stage: int | None = None


@dataclass(frozen=True)
class UtilizationSample:
    """One point of the Figure 13 utilization curves."""

    time: float
    cpu_demand_units: int
    cpu_used_units: int
    cpu_capacity_units: int
    memory_used_mb: int

    @property
    def cpu_fraction(self) -> float:
        if self.cpu_capacity_units == 0:
            return 0.0
        return self.cpu_used_units / self.cpu_capacity_units

    @property
    def cpu_demand_fraction(self) -> float:
        """Demanded CPU over capacity; can exceed 1 on an overloaded cluster,
        like the 29/22 peak of Section 5.2."""
        if self.cpu_capacity_units == 0:
            return 0.0
        return self.cpu_demand_units / self.cpu_capacity_units


@dataclass
class RunResult:
    """Everything measured during one control-loop run.

    ``policy`` names the decision module that drove the run (its registry
    key when available); ``metadata`` carries run-level extras such as the
    viability of the final configuration.

    The chaos series are empty on fault-free runs:

    * ``faults`` — chronological :class:`FaultRecord` timeline;
    * ``repair_latencies`` — vjob name -> seconds between a crash knocking
      the vjob out and the switch that put it back in the Running state
      completing (detection delay included);
    * ``sla_violations`` — vjobs whose turnaround exceeded
      ``sla_factor x`` their ideal execution time (only populated when the
      scenario sets ``sla_factor``); unfinished vjobs always violate;
    * ``unfinished_vjobs`` — submitted vjobs that never completed ("lost"
      vjobs; a recovery scenario is only healthy when this is empty).

    Constrained runs (``Scenario.with_constraints``) additionally fill
    ``constraint_violations`` — the chronological per-constraint violation
    timeline — summarized by :attr:`constraint_violation_counts`.

    Traced runs (``Scenario(trace=True)``) attach the full span tree as
    ``trace`` — a plain :meth:`repro.obs.Tracer.to_dict` document, so it
    survives the JSON round-trip byte-stably and feeds the ``repro-trace``
    CLI and Chrome trace-event export.  ``None`` on untraced runs, and the
    ``"trace"`` key is then omitted from :meth:`to_dict` entirely.
    """

    makespan: float = 0.0
    policy: str = ""
    switches: list[ContextSwitchRecord] = field(default_factory=list)
    utilization: list[UtilizationSample] = field(default_factory=list)
    completion_times: dict[str, float] = field(default_factory=dict)
    metadata: dict[str, Any] = field(default_factory=dict)
    faults: list[FaultRecord] = field(default_factory=list)
    repair_latencies: dict[str, float] = field(default_factory=dict)
    sla_violations: list[str] = field(default_factory=list)
    unfinished_vjobs: list[str] = field(default_factory=list)
    constraint_violations: list[ConstraintViolationRecord] = field(
        default_factory=list
    )
    trace: dict[str, Any] | None = None

    @property
    def average_switch_duration(self) -> float:
        significant = [s.duration for s in self.switches if s.action_count]
        if not significant:
            return 0.0
        return sum(significant) / len(significant)

    @property
    def switch_count(self) -> int:
        return sum(1 for s in self.switches if s.action_count)

    @property
    def total_switch_cost(self) -> int:
        return sum(s.cost for s in self.switches)

    @property
    def mean_repair_latency(self) -> float:
        """Average crash-to-running latency over the repaired vjobs (0.0
        when nothing crashed)."""
        if not self.repair_latencies:
            return 0.0
        return sum(self.repair_latencies.values()) / len(self.repair_latencies)

    @property
    def wasted_migrations(self) -> int:
        """Migration attempts aborted by fault injection across the run."""
        return sum(s.failed_migrations for s in self.switches)

    @property
    def lost_vjob_count(self) -> int:
        """Submitted vjobs that never completed — 0 on a healthy recovery."""
        return len(self.unfinished_vjobs)

    @property
    def constraint_violation_counts(self) -> dict[str, int]:
        """Violation events per constraint label over the whole run."""
        counts: dict[str, int] = {}
        for record in self.constraint_violations:
            counts[record.constraint] = counts.get(record.constraint, 0) + 1
        return counts

    @property
    def honoured_constraints(self) -> bool:
        """True when no constraint violation was observed during the run."""
        return not self.constraint_violations

    def completed(self, name: str) -> bool:
        return name in self.completion_times

    # ------------------------------------------------------------------ #
    # JSON round-trip                                                     #
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict[str, Any]:
        """Full-fidelity JSON-safe form of the result (every series
        included: switches, samples, faults, repair latencies, constraint
        violations, metadata).  :meth:`from_dict` is the exact inverse —
        ``RunResult.from_dict(r.to_dict()) == r`` — so results travel over
        HTTP (the :mod:`repro.service` daemon's ``GET /result``) and into
        JSON stores without loss.  The ``"trace"`` key is present only on
        traced runs, so untraced documents are byte-identical to pre-trace
        ones."""
        data: dict[str, Any] = {
            "policy": self.policy,
            "makespan": self.makespan,
            "switches": [
                {
                    "time": s.time,
                    "cost": s.cost,
                    "duration": s.duration,
                    "migrations": s.migrations,
                    "runs": s.runs,
                    "stops": s.stops,
                    "suspends": s.suspends,
                    "resumes": s.resumes,
                    "local_resumes": s.local_resumes,
                    "used_fallback": s.used_fallback,
                    "failed_migrations": s.failed_migrations,
                }
                for s in self.switches
            ],
            "utilization": [
                {
                    "time": u.time,
                    "cpu_demand_units": u.cpu_demand_units,
                    "cpu_used_units": u.cpu_used_units,
                    "cpu_capacity_units": u.cpu_capacity_units,
                    "memory_used_mb": u.memory_used_mb,
                }
                for u in self.utilization
            ],
            "completion_times": dict(self.completion_times),
            "metadata": dict(self.metadata),
            "faults": [
                {
                    "time": f.time,
                    "kind": f.kind,
                    "target": f.target,
                    "detected_at": f.detected_at,
                    "affected_vjobs": list(f.affected_vjobs),
                    "detail": f.detail,
                }
                for f in self.faults
            ],
            "repair_latencies": dict(self.repair_latencies),
            "sla_violations": list(self.sla_violations),
            "unfinished_vjobs": list(self.unfinished_vjobs),
            "constraint_violations": [
                {
                    "time": v.time,
                    "constraint": v.constraint,
                    "phase": v.phase,
                    "message": v.message,
                    "stage": v.stage,
                }
                for v in self.constraint_violations
            ],
        }
        if self.trace is not None:
            data["trace"] = self.trace
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output (tolerant of absent
        optional series, so older stored records still load)."""
        return cls(
            makespan=float(data.get("makespan", 0.0)),
            policy=str(data.get("policy", "")),
            switches=[
                ContextSwitchRecord(
                    time=float(s["time"]),
                    cost=int(s["cost"]),
                    duration=float(s["duration"]),
                    migrations=int(s["migrations"]),
                    runs=int(s["runs"]),
                    stops=int(s["stops"]),
                    suspends=int(s["suspends"]),
                    resumes=int(s["resumes"]),
                    local_resumes=int(s["local_resumes"]),
                    used_fallback=bool(s.get("used_fallback", False)),
                    failed_migrations=int(s.get("failed_migrations", 0)),
                )
                for s in data.get("switches", [])
            ],
            utilization=[
                UtilizationSample(
                    time=float(u["time"]),
                    cpu_demand_units=int(u["cpu_demand_units"]),
                    cpu_used_units=int(u["cpu_used_units"]),
                    cpu_capacity_units=int(u["cpu_capacity_units"]),
                    memory_used_mb=int(u["memory_used_mb"]),
                )
                for u in data.get("utilization", [])
            ],
            completion_times={
                str(name): float(time)
                for name, time in data.get("completion_times", {}).items()
            },
            metadata=dict(data.get("metadata", {})),
            faults=[
                FaultRecord(
                    time=float(f["time"]),
                    kind=str(f["kind"]),
                    target=str(f["target"]),
                    detected_at=float(f.get("detected_at", 0.0)),
                    affected_vjobs=tuple(f.get("affected_vjobs", ())),
                    detail=str(f.get("detail", "")),
                )
                for f in data.get("faults", [])
            ],
            repair_latencies={
                str(name): float(latency)
                for name, latency in data.get("repair_latencies", {}).items()
            },
            sla_violations=list(data.get("sla_violations", [])),
            unfinished_vjobs=list(data.get("unfinished_vjobs", [])),
            constraint_violations=[
                ConstraintViolationRecord(
                    time=float(v["time"]),
                    constraint=str(v["constraint"]),
                    phase=str(v["phase"]),
                    message=str(v.get("message", "")),
                    stage=v.get("stage"),
                )
                for v in data.get("constraint_violations", [])
            ],
            trace=data.get("trace"),
        )

    def summary(self) -> dict[str, Any]:
        """The flat headline-metric row shared by campaign stores and the
        service's telemetry: one canonical flattening instead of ad-hoc row
        building at every call site."""
        return {
            "makespan": self.makespan,
            "switches": self.switch_count,
            "total_switch_cost": self.total_switch_cost,
            "migrations": sum(s.migrations for s in self.switches),
            "fallback_switches": sum(
                1 for s in self.switches if s.used_fallback
            ),
            "faults_injected": len(self.faults),
            "mean_repair_latency": self.mean_repair_latency,
            "sla_violations": len(self.sla_violations),
            "lost_vjobs": self.lost_vjob_count,
            "constraint_violations": len(self.constraint_violations),
            "planning_failures": self.metadata.get("planning_failures", 0),
        }
