"""Structured results shared by every control-loop run.

One :class:`RunResult` is produced per scenario run regardless of the policy
driving the loop, so benchmarks, examples and tests compare strategies
without policy-specific plumbing: the Figure 11 context-switch records, the
Figure 13 utilization samples, the per-vjob completion times and the headline
makespan all live here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class ContextSwitchRecord:
    """One cluster-wide context switch performed during a run (Figure 11)."""

    time: float
    cost: int
    duration: float
    migrations: int
    runs: int
    stops: int
    suspends: int
    resumes: int
    local_resumes: int
    used_fallback: bool = False

    @property
    def action_count(self) -> int:
        return self.migrations + self.runs + self.stops + self.suspends + self.resumes


@dataclass(frozen=True)
class UtilizationSample:
    """One point of the Figure 13 utilization curves."""

    time: float
    cpu_demand_units: int
    cpu_used_units: int
    cpu_capacity_units: int
    memory_used_mb: int

    @property
    def cpu_fraction(self) -> float:
        if self.cpu_capacity_units == 0:
            return 0.0
        return self.cpu_used_units / self.cpu_capacity_units

    @property
    def cpu_demand_fraction(self) -> float:
        """Demanded CPU over capacity; can exceed 1 on an overloaded cluster,
        like the 29/22 peak of Section 5.2."""
        if self.cpu_capacity_units == 0:
            return 0.0
        return self.cpu_demand_units / self.cpu_capacity_units


@dataclass
class RunResult:
    """Everything measured during one control-loop run.

    ``policy`` names the decision module that drove the run (its registry
    key when available); ``metadata`` carries run-level extras such as the
    viability of the final configuration.
    """

    makespan: float = 0.0
    policy: str = ""
    switches: list[ContextSwitchRecord] = field(default_factory=list)
    utilization: list[UtilizationSample] = field(default_factory=list)
    completion_times: dict[str, float] = field(default_factory=dict)
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def average_switch_duration(self) -> float:
        significant = [s.duration for s in self.switches if s.action_count]
        if not significant:
            return 0.0
        return sum(significant) / len(significant)

    @property
    def switch_count(self) -> int:
        return sum(1 for s in self.switches if s.action_count)

    @property
    def total_switch_cost(self) -> int:
        return sum(s.cost for s in self.switches)

    def completed(self, name: str) -> bool:
        return name in self.completion_times
