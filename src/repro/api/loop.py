"""The pluggable observe/decide/plan/execute control loop (Section 3.1).

The loop iterates: (i) observe the CPU and memory consumption of the running
VMs through the monitoring service, (ii) run the *decision module* to compute
the vjob states of the next iteration, (iii) plan the cluster-wide context
switch towards a cheap viable configuration, and (iv) execute it with the
drivers, then waits for the monitoring information to refresh.

Unlike the original hard-wired simulation, :class:`ControlLoop` is
policy-agnostic: any :class:`~repro.api.decision.DecisionModule` — selected
by registry name or passed as an instance — drives the same loop, and every
run produces the same structured :class:`~repro.api.results.RunResult`.
Prefer the :class:`~repro.api.scenario.Scenario` facade over instantiating
the loop by hand.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence, Union

from .. import config
from ..core.context_switch import ClusterContextSwitch
from ..core.cost import plan_cost
from ..model.errors import PlanningError
from ..model.node import Node
from ..model.queue import VJobQueue
from ..model.vjob import VJobState
from ..model.vm import VMState
from ..sim.cluster import SimulatedCluster
from ..sim.executor import PlanExecutor
from ..sim.hypervisor import DEFAULT_HYPERVISOR, HypervisorModel
from ..sim.monitoring import MonitoringService
from ..workloads.traces import VJobWorkload
from .decision import Decision, DecisionModule, needs_switch
from .events import LoopObserver
from .registry import get_decision_module
from .results import ContextSwitchRecord, RunResult, UtilizationSample

PolicyLike = Union[str, DecisionModule]


def policy_label(policy: PolicyLike) -> str:
    """The display/registry label of a policy name or module instance."""
    if isinstance(policy, str):
        return policy
    return getattr(policy, "name", type(policy).__name__)


def resolve_policy(
    policy: PolicyLike, options: Optional[Mapping[str, Any]] = None
) -> tuple[DecisionModule, str]:
    """Turn a registry name or a module instance into ``(module, label)``."""
    if isinstance(policy, str):
        return get_decision_module(policy, **dict(options or {})), policy
    if options:
        raise ValueError(
            "policy_options only apply when the policy is selected by name"
        )
    return policy, policy_label(policy)


class ControlLoop:
    """Run one decision policy over a simulated cluster and its workloads."""

    def __init__(
        self,
        nodes: Sequence[Node],
        workloads: Sequence[VJobWorkload],
        policy: PolicyLike = "consolidation",
        policy_options: Optional[Mapping[str, Any]] = None,
        period: float = config.DECISION_PERIOD_S,
        optimizer_timeout: float = 10.0,
        use_optimizer: bool = True,
        hypervisor: HypervisorModel = DEFAULT_HYPERVISOR,
        monitoring_delay: float = config.MONITORING_DELAY_S,
        max_time: float = 24 * 3600.0,
        observers: Sequence[LoopObserver] = (),
        max_consecutive_planning_failures: int = 25,
    ) -> None:
        self.workloads = list(workloads)
        self.period = period
        self.max_time = max_time
        self.hypervisor = hypervisor
        self.observers = list(observers)
        self.max_consecutive_planning_failures = max_consecutive_planning_failures

        self.cluster = SimulatedCluster(nodes=nodes)
        self.queue = VJobQueue()
        self.progress: dict[str, float] = {}
        self._submitted: set[str] = set()

        stale = [
            w.vjob.name
            for w in self.workloads
            if w.vjob.state is not VJobState.WAITING
        ]
        if stale:
            raise ValueError(
                f"vjobs {stale} are not in their initial WAITING state — a "
                "run mutates vjob state, so each run needs freshly-built "
                "workloads"
            )
        for workload in self.workloads:
            self.progress[workload.vjob.name] = 0.0
            for vm in workload.vjob.vms:
                self.cluster.add_vm(vm)

        self.decision_module, self.policy_name = resolve_policy(
            policy, policy_options
        )
        self.switcher = ClusterContextSwitch(
            optimizer_timeout=optimizer_timeout, use_optimizer=use_optimizer
        )
        self.executor = PlanExecutor(hypervisor=hypervisor)
        self.monitoring = MonitoringService(
            demand_source=self._demand_source, refresh_delay=monitoring_delay
        )

    # ------------------------------------------------------------------ #
    # workload plumbing                                                   #
    # ------------------------------------------------------------------ #

    def _demand_source(self, _time: float) -> dict[str, int]:
        """Current CPU demand of every VM, derived from the vjob progress."""
        demands: dict[str, int] = {}
        for workload in self.workloads:
            progress = self.progress[workload.vjob.name]
            for vm_name, trace in workload.traces.items():
                demands[vm_name] = trace.demand_at(progress)
        return demands

    def _submit_pending(self, now: float) -> None:
        for workload in self.workloads:
            vjob = workload.vjob
            if vjob.name not in self._submitted and vjob.submitted_at <= now:
                self.queue.submit(vjob)
                self._submitted.add(vjob.name)

    def _vjob_of_vm(self) -> dict[str, str]:
        mapping: dict[str, str] = {}
        for workload in self.workloads:
            for vm in workload.vjob.vm_names:
                mapping[vm] = workload.vjob.name
        return mapping

    # ------------------------------------------------------------------ #
    # state synchronisation                                               #
    # ------------------------------------------------------------------ #

    def _sync_vjob_states(self) -> None:
        """Align the life-cycle state of every submitted vjob with the state
        of its VMs in the cluster configuration."""
        configuration = self.cluster.configuration
        for vjob in self.queue.ordered():
            if vjob.is_terminated:
                continue
            states = {configuration.state_of(vm) for vm in vjob.vm_names}
            if states == {VMState.TERMINATED}:
                vjob.state = VJobState.TERMINATED
            elif VMState.RUNNING in states:
                vjob.state = VJobState.RUNNING
            elif VMState.SLEEPING in states:
                vjob.state = VJobState.SLEEPING
            else:
                vjob.state = VJobState.WAITING

    def _mark_finished_vjobs(self, now: float, result: RunResult) -> None:
        """Vjobs whose traces are exhausted signal the loop to stop them."""
        for workload in self.workloads:
            vjob = workload.vjob
            if vjob.is_terminated or vjob.name not in self._submitted:
                continue
            if vjob.state is VJobState.RUNNING and workload.is_finished(
                self.progress[vjob.name]
            ):
                vjob.terminate()
                result.completion_times.setdefault(vjob.name, now)
                self._notify("on_vjob_completed", vjob.name, now)

    # ------------------------------------------------------------------ #
    # main loop                                                           #
    # ------------------------------------------------------------------ #

    def run(self) -> RunResult:
        result = RunResult(makespan=0.0, policy=self.policy_name)
        now = 0.0
        vjob_of_vm = self._vjob_of_vm()
        planning_failures = 0
        consecutive_failures = 0
        self._notify("on_run_start", self)

        while now < self.max_time:
            self._submit_pending(now)

            # (i) observe
            observation = self.monitoring.observe(now, self.cluster.configuration)
            for vm_name, demand in observation.cpu_demands.items():
                self.cluster.update_demand(vm_name, demand)
            self._notify("on_iteration", now, self.cluster.configuration)

            # finished applications ask the loop to stop their vjob
            self._mark_finished_vjobs(now, result)

            if self.queue.all_terminated() and len(self._submitted) == len(
                self.workloads
            ):
                break

            # (ii) decide
            decision = self.decision_module.decide(
                self.cluster.configuration, self.queue, observation.cpu_demands
            )
            self._notify("on_decision", now, decision)

            # (iii) plan and (iv) execute if something must change
            switch_duration = 0.0
            involved_nodes: set[str] = set()
            report = None
            if needs_switch(self.cluster.configuration, decision):
                try:
                    report = self._plan(decision, vjob_of_vm)
                except PlanningError:
                    # Planning can fail transiently (e.g. a migration cycle
                    # with no pivot node on a packed cluster).  Keep the
                    # current configuration for this round — the next
                    # iteration observes fresh demands and retries.
                    planning_failures += 1
                    report = self._fallback_plan(decision, vjob_of_vm)
                if report is not None:
                    consecutive_failures = 0
                else:
                    consecutive_failures += 1
                    if (
                        consecutive_failures
                        >= self.max_consecutive_planning_failures
                    ):
                        # The decision is permanently unplannable: fail
                        # loudly instead of spinning until max_time and
                        # returning plausible-looking garbage.
                        raise PlanningError(
                            f"policy {self.policy_name!r} produced "
                            f"{consecutive_failures} consecutive unplannable "
                            f"decisions (last at simulated time {now:.0f}s); "
                            "the scenario cannot make progress"
                        )
            else:
                # No switch needed is progress too: a transient failure
                # followed by a satisfied decision must not count towards
                # the consecutive-failure abort.
                consecutive_failures = 0
            if report is not None:
                execution = self.executor.execute(
                    report.plan, self.cluster, start_time=now
                )
                switch_duration = execution.duration
                involved_nodes = execution.involved_nodes()
                record = self._record_switch(now, report, execution)
                result.switches.append(record)
                self._notify("on_switch", record, report)
                self.monitoring.notify_reconfiguration(now + switch_duration)
                self._sync_vjob_states()

            # sample utilization after the switch
            sample = self._sample(now)
            result.utilization.append(sample)
            self._notify("on_sample", sample)

            # advance simulated time and the progress of the running vjobs
            step = max(self.period, switch_duration)
            self._advance_progress(step, switch_duration, involved_nodes)
            now += step

        result.makespan = (
            max(result.completion_times.values()) if result.completion_times else now
        )
        result.metadata["final_viable"] = self.cluster.configuration.is_viable()
        result.metadata["simulated_time"] = now
        result.metadata["planning_failures"] = planning_failures
        self._notify("on_run_end", result)
        return result

    # ------------------------------------------------------------------ #
    # helpers                                                             #
    # ------------------------------------------------------------------ #

    def _notify(self, hook: str, *payload: Any) -> None:
        for observer in self.observers:
            getattr(observer, hook)(*payload)

    def _plan(self, decision: Decision, vjob_of_vm: Mapping[str, str]):
        """Plan the switch: towards the policy's explicit target when it
        computed one, through the optimizer otherwise."""
        if decision.target is not None:
            return self.switcher.plan_to(
                self.cluster.configuration, decision.target, vjob_of_vm
            )
        if not self.switcher.use_optimizer and decision.fallback_target is None:
            raise ValueError(
                "use_optimizer=False needs the policy to supply an explicit "
                f"target or fallback placement, but {self.policy_name!r} "
                "returned neither — use a policy with a fallback (e.g. "
                "'consolidation' or 'ffd') or enable the optimizer"
            )
        return self.switcher.compute(
            self.cluster.configuration,
            decision.vm_states,
            vjob_of_vm=vjob_of_vm,
            fallback_target=decision.fallback_target,
        )

    def _fallback_plan(self, decision: Decision, vjob_of_vm: Mapping[str, str]):
        """Last-resort plan towards the decision's fallback target; ``None``
        when there is no fallback or it cannot be planned either."""
        if decision.fallback_target is None or decision.target is not None:
            return None
        try:
            report = self.switcher.plan_to(
                self.cluster.configuration, decision.fallback_target, vjob_of_vm
            )
        except PlanningError:
            return None
        # plan_to() does not know it planned a fallback; flag it so the
        # RunResult fallback statistics stay truthful.
        report.used_fallback = True
        return report

    def _record_switch(self, now, report, execution) -> ContextSwitchRecord:
        from ..core.actions import ActionKind, Resume

        local_resumes = sum(
            1
            for item in execution.actions
            if isinstance(item.action, Resume) and item.action.is_local
        )
        return ContextSwitchRecord(
            time=now,
            cost=plan_cost(report.plan).total,
            duration=execution.duration,
            migrations=execution.count(ActionKind.MIGRATE),
            runs=execution.count(ActionKind.RUN),
            stops=execution.count(ActionKind.STOP),
            suspends=execution.count(ActionKind.SUSPEND),
            resumes=execution.count(ActionKind.RESUME),
            local_resumes=local_resumes,
            used_fallback=report.used_fallback,
        )

    def _sample(self, now: float) -> UtilizationSample:
        configuration = self.cluster.configuration
        capacity = configuration.total_capacity()
        usage = configuration.total_usage()
        demand_units = 0
        for workload in self.workloads:
            vjob = workload.vjob
            if vjob.name not in self._submitted or vjob.is_terminated:
                continue
            progress = self.progress[vjob.name]
            demand_units += sum(
                trace.demand_at(progress) for trace in workload.traces.values()
            )
        return UtilizationSample(
            time=now,
            cpu_demand_units=demand_units,
            cpu_used_units=usage.cpu,
            cpu_capacity_units=capacity.cpu,
            memory_used_mb=usage.memory,
        )

    def _advance_progress(
        self, step: float, switch_duration: float, involved_nodes: set[str]
    ) -> None:
        """Advance the execution of the running vjobs by ``step`` seconds.

        Running VMs hosted on nodes touched by the context switch are slowed
        down during the switch window (Section 2.3 measured a 1.3-1.5x factor);
        the remaining part of the interval progresses at full speed.
        """
        configuration = self.cluster.configuration
        factor = config.INTERFERENCE_FACTOR_LOCAL
        for workload in self.workloads:
            vjob = workload.vjob
            if vjob.state is not VJobState.RUNNING:
                continue
            slowed = False
            if switch_duration > 0 and involved_nodes:
                for vm_name in vjob.vm_names:
                    if configuration.location_of(vm_name) in involved_nodes:
                        slowed = True
                        break
            if slowed:
                effective = (step - switch_duration) + switch_duration / factor
            else:
                effective = step
            self.progress[vjob.name] += effective
