"""The pluggable observe/decide/plan/execute control loop (Section 3.1).

The loop iterates: (i) observe the CPU and memory consumption of the running
VMs through the monitoring service, (ii) run the *decision module* to compute
the vjob states of the next iteration, (iii) plan the cluster-wide context
switch towards a cheap viable configuration, and (iv) execute it with the
drivers, then waits for the monitoring information to refresh.

Unlike the original hard-wired simulation, :class:`ControlLoop` is
policy-agnostic: any :class:`~repro.api.decision.DecisionModule` — selected
by registry name or passed as an instance — drives the same loop, and every
run produces the same structured :class:`~repro.api.results.RunResult`.
Prefer the :class:`~repro.api.scenario.Scenario` facade over instantiating
the loop by hand.

The loop is also *fault-reactive*: with a
:class:`~repro.sim.faults.FaultInjector` attached, scheduled faults fire at
the start of each iteration.  A node crash evicts the node from the
configuration and knocks the affected vjobs back to Waiting, so the next
decision round re-plans them onto the surviving fleet; a failed migration
leaves its VM on the source node and is re-derived (hence retried) by the
next decision; slow nodes advance vjob progress more slowly; late-booting
nodes join the configuration mid-run.  Repair latencies, SLA violations and
wasted migrations are reported on the :class:`~repro.api.results.RunResult`.

``engine`` selects how each planning round is solved: the monolithic
optimizer's propagation engines (``"event"`` / ``"fixpoint"``),
``"partitioned"`` — the cluster is decomposed into independent placement
zones solved concurrently on ``max_workers`` processes
(:mod:`repro.scale`), with a transparent monolithic fallback — or the
incremental ``"repair"`` / ``"repair-partitioned"`` engines
(:mod:`repro.repair`).  For the repair engines the loop tracks the VMs each
round actually perturbed — crash victims, new arrivals, members of violated
constraints — and hands them to the planner, which freezes everything else
and re-solves only the dirty region (``repair_halo`` widens it by that many
rounds of co-host expansion).

With ``constraints`` (the :mod:`repro.constraints` catalog), every planning
round honours the declared placement relations: the optimizer compiles them
into its CP model, constraint-aware policies filter their candidate nodes,
plans and the live cluster are checked continuously, and a node crash runs
each constraint's repair hook *before* the victims are replanned onto the
survivors.  Observed breaches land on the
:attr:`RunResult.constraint_violations` timeline — never silently dropped.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence, Union

from .. import config
from ..constraints.base import PlacementConstraint
from ..constraints.checker import check_configuration
from ..core.context_switch import ClusterContextSwitch
from ..core.cost import plan_cost
from ..model.errors import PlanningError
from ..model.node import Node
from ..model.queue import VJobQueue
from ..model.vjob import VJobState
from ..model.vm import VMState
from ..obs import Tracer, span
from ..sim.cluster import SimulatedCluster
from ..sim.executor import PlanExecutor
from ..sim.faults import FaultEvent, FaultInjector, FaultKind, evict_node
from ..sim.hypervisor import DEFAULT_HYPERVISOR, HypervisorModel
from ..sim.monitoring import MonitoringService
from ..workloads.traces import VJobWorkload
from .decision import Decision, DecisionModule, needs_switch
from .events import LoopObserver
from .registry import get_decision_module
from .results import (
    ConstraintViolationRecord,
    ContextSwitchRecord,
    FaultRecord,
    RunResult,
    UtilizationSample,
)

PolicyLike = Union[str, DecisionModule]


def policy_label(policy: PolicyLike) -> str:
    """The display/registry label of a policy name or module instance."""
    if isinstance(policy, str):
        return policy
    return getattr(policy, "name", type(policy).__name__)


def resolve_policy(
    policy: PolicyLike, options: Optional[Mapping[str, Any]] = None
) -> tuple[DecisionModule, str]:
    """Turn a registry name or a module instance into ``(module, label)``."""
    if isinstance(policy, str):
        return get_decision_module(policy, **dict(options or {})), policy
    if options:
        raise ValueError(
            "policy_options only apply when the policy is selected by name"
        )
    return policy, policy_label(policy)


class ControlLoop:
    """Run one decision policy over a simulated cluster and its workloads."""

    def __init__(
        self,
        nodes: Sequence[Node],
        workloads: Sequence[VJobWorkload],
        policy: PolicyLike = "consolidation",
        policy_options: Optional[Mapping[str, Any]] = None,
        period: float = config.DECISION_PERIOD_S,
        optimizer_timeout: float = 10.0,
        use_optimizer: bool = True,
        engine: str = "event",
        max_workers: Optional[int] = None,
        repair_halo: int = 1,
        hypervisor: HypervisorModel = DEFAULT_HYPERVISOR,
        monitoring_delay: float = config.MONITORING_DELAY_S,
        max_time: float = 24 * 3600.0,
        observers: Sequence[LoopObserver] = (),
        max_consecutive_planning_failures: int = 25,
        fault_injector: Optional[FaultInjector] = None,
        sla_factor: Optional[float] = None,
        constraints: Sequence[PlacementConstraint] = (),
        command_queue: Optional[Any] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.workloads = list(workloads)
        self.period = period
        self.max_time = max_time
        self.hypervisor = hypervisor
        self.observers = list(observers)
        self.max_consecutive_planning_failures = max_consecutive_planning_failures
        self.faults = fault_injector
        self.sla_factor = sla_factor
        #: Operator command queue (duck-typed: ``drain(loop, now) -> bool``),
        #: drained at the top of every iteration so external producers — the
        #: :mod:`repro.service` daemon's HTTP handlers — submit vjobs and
        #: inject faults at well-defined points of simulated time.
        self.commands = command_queue
        #: Span tracer (:mod:`repro.obs`) producing the per-round phase
        #: breakdown; ``None`` keeps every instrumented path at its no-op
        #: cost.  Activated inside :meth:`run` on the thread that actually
        #: iterates — contextvars do not cross thread boundaries, and the
        #: operator daemon runs the loop on a worker thread.
        self.tracer = tracer
        #: Placement constraints enforced by every planning round (and
        #: re-applied on fault-driven replans).  The list is live: a node
        #: crash runs each constraint's repair hook and may swap entries.
        self.constraints: list[PlacementConstraint] = list(constraints)
        #: Labels of the catalog as declared by the user — repairs mutate
        #: ``self.constraints``, the declaration is what a run is compared by.
        self._declared_constraints = [c.label for c in self.constraints]
        #: True once the loop owns the decision module's constraint set —
        #: repairs must keep pushing updates (including down to the empty
        #: set, when every constraint retired).  Stays False for loops built
        #: without constraints, so a module's own constructor-supplied
        #: catalog is never clobbered.
        self._constraints_managed = bool(self.constraints)

        self.cluster = SimulatedCluster(nodes=nodes)
        self.queue = VJobQueue()
        self.progress: dict[str, float] = {}
        self._submitted: set[str] = set()
        #: vjob name -> time of the crash that knocked it out, until repaired.
        self._repair_pending: dict[str, float] = {}
        #: VMs perturbed since the last planning round (crash victims, new
        #: arrivals, members of violated constraints) — the dirty region the
        #: repair engines re-solve; a no-op hint for the cold engines.
        self._perturbed: set[str] = set()
        #: Set by :meth:`request_stop`; checked at every iteration boundary.
        self._stop_requested = False
        #: Late-booting nodes held back until their DELAYED_BOOT event fires.
        self._delayed_nodes: dict[str, Node] = {}
        if self.faults is not None:
            for name in self.faults.delayed_boot_nodes():
                if self.cluster.configuration.has_node(name):
                    self._delayed_nodes[name] = (
                        self.cluster.configuration.remove_node(name)
                    )

        stale = [
            w.vjob.name
            for w in self.workloads
            if w.vjob.state is not VJobState.WAITING
        ]
        if stale:
            raise ValueError(
                f"vjobs {stale} are not in their initial WAITING state — a "
                "run mutates vjob state, so each run needs freshly-built "
                "workloads"
            )
        for workload in self.workloads:
            self.progress[workload.vjob.name] = 0.0
            for vm in workload.vjob.vms:
                self.cluster.add_vm(vm)

        self.decision_module, self.policy_name = resolve_policy(
            policy, policy_options
        )
        self._offer_constraints()
        self.switcher = ClusterContextSwitch(
            optimizer_timeout=optimizer_timeout,
            use_optimizer=use_optimizer,
            engine=engine,
            max_workers=max_workers,
            repair_halo=repair_halo,
        )
        self.executor = PlanExecutor(
            hypervisor=hypervisor, fault_injector=fault_injector
        )
        self.monitoring = MonitoringService(
            demand_source=self._demand_source, refresh_delay=monitoring_delay
        )

    # ------------------------------------------------------------------ #
    # workload plumbing                                                   #
    # ------------------------------------------------------------------ #

    def _demand_source(self, _time: float) -> dict[str, int]:
        """Current CPU demand of every VM, derived from the vjob progress."""
        demands: dict[str, int] = {}
        for workload in self.workloads:
            progress = self.progress[workload.vjob.name]
            for vm_name, trace in workload.traces.items():
                demands[vm_name] = trace.demand_at(progress)
        return demands

    def _submit_pending(self, now: float) -> None:
        for workload in self.workloads:
            vjob = workload.vjob
            if vjob.name not in self._submitted and vjob.submitted_at <= now:
                self.queue.submit(vjob)
                self._submitted.add(vjob.name)
                # New arrivals perturb their own VMs only: the repair
                # engines place them without re-solving the whole fleet.
                self._perturbed.update(vjob.vm_names)

    def _vjob_of_vm(self) -> dict[str, str]:
        mapping: dict[str, str] = {}
        for workload in self.workloads:
            for vm in workload.vjob.vm_names:
                mapping[vm] = workload.vjob.name
        return mapping

    # ------------------------------------------------------------------ #
    # state synchronisation                                               #
    # ------------------------------------------------------------------ #

    def _sync_vjob_states(self) -> None:
        """Align the life-cycle state of every submitted vjob with the state
        of its VMs in the cluster configuration."""
        configuration = self.cluster.configuration
        for vjob in self.queue.ordered():
            if vjob.is_terminated:
                continue
            states = {configuration.state_of(vm) for vm in vjob.vm_names}
            if states == {VMState.TERMINATED}:
                vjob.state = VJobState.TERMINATED
            elif VMState.RUNNING in states:
                vjob.state = VJobState.RUNNING
            elif VMState.SLEEPING in states:
                vjob.state = VJobState.SLEEPING
            else:
                vjob.state = VJobState.WAITING

    def _mark_finished_vjobs(self, now: float, result: RunResult) -> None:
        """Vjobs whose traces are exhausted signal the loop to stop them."""
        for workload in self.workloads:
            vjob = workload.vjob
            if vjob.is_terminated or vjob.name not in self._submitted:
                continue
            if vjob.state is VJobState.RUNNING and workload.is_finished(
                self.progress[vjob.name]
            ):
                vjob.terminate()
                result.completion_times.setdefault(vjob.name, now)
                self._notify("on_vjob_completed", vjob.name, now)

    # ------------------------------------------------------------------ #
    # main loop                                                           #
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Release the planning engine's resources (the partitioned engine
        keeps a worker-process pool across rounds).  Idempotent — called
        automatically when :meth:`run` finishes, so campaigns that build
        many loops never accumulate worker processes."""
        self.switcher.close()

    def request_stop(self) -> None:
        """Ask a running loop to stop at the next iteration boundary.

        Thread-safe in the way the operator daemon needs it: the flag is a
        plain attribute written once, and :meth:`run` checks it exactly where
        it drains the command queue, so the loop finishes the in-flight
        iteration (its switch, samples and bookkeeping stay consistent) and
        then returns normally — :meth:`run`'s ``finally`` still calls
        :meth:`close`, so no worker pool leaks.  Runs cut short this way set
        ``metadata["stopped_early"]``."""
        self._stop_requested = True

    def run(self) -> RunResult:
        try:
            return self._run_loop()
        finally:
            self.close()

    def _run_loop(self) -> RunResult:
        if self.tracer is None:
            return self._run_iterations()
        with self.tracer.activate() as root:
            root.set(
                policy=self.policy_name, engine=self.switcher.engine
            )
            result = self._run_iterations()
        result.trace = self.tracer.to_dict()
        return result

    def _run_iterations(self) -> RunResult:
        result = RunResult(makespan=0.0, policy=self.policy_name)
        now = 0.0
        vjob_of_vm = self._vjob_of_vm()
        planning_failures = 0
        consecutive_failures = 0
        repair_traces: list[dict] = []
        solver_rounds: list[dict] = []
        iteration = 0
        self._notify("on_run_start", self)

        while now < self.max_time and not self._stop_requested:
            with span("round", index=iteration, sim_time=now) as round_span:
                # operator commands first: a vjob submitted or a fault injected
                # through the command queue lands at this iteration boundary, so
                # runs stay deterministic for a given arrival round
                if self.commands is not None and self.commands.drain(self, now):
                    vjob_of_vm = self._vjob_of_vm()

                self._submit_pending(now)

                # exogenous events first: faults scheduled since the previous
                # iteration are detected now (monitoring-grain detection)
                if self.faults is not None:
                    for event in self.faults.fire(now):
                        self._apply_fault(event, now, result)

                # (i) observe
                with span("observe") as observe_span:
                    observation = self.monitoring.observe(
                        now, self.cluster.configuration
                    )
                    for vm_name, demand in observation.cpu_demands.items():
                        self.cluster.update_demand(vm_name, demand)
                    # Incremental viability: only the nodes dirtied since the
                    # previous round (demand updates, migrations, faults) are
                    # re-examined — O(changed), not O(fleet).
                    configuration = self.cluster.configuration
                    dirty = len(configuration.dirty_nodes())
                    overloaded = configuration.viability_violations(
                        only_dirty=True
                    )
                    observe_span.set(
                        demand_updates=len(observation.cpu_demands),
                        dirty_nodes=dirty,
                        overloaded=len(overloaded),
                    )
                    self._notify("on_iteration", now, self.cluster.configuration)

                # finished applications ask the loop to stop their vjob
                self._mark_finished_vjobs(now, result)

                if self.queue.all_terminated() and len(self._submitted) == len(
                    self.workloads
                ):
                    break

                # (ii) decide
                with span("decide"):
                    decision = self.decision_module.decide(
                        self.cluster.configuration,
                        self.queue,
                        observation.cpu_demands,
                    )
                self._notify("on_decision", now, decision)

                # (iii) plan and (iv) execute if something must change
                switch_duration = 0.0
                involved_nodes: set[str] = set()
                report = None
                if self._perturbed:
                    # Hand this round's perturbed VMs to the repair engine (the
                    # cold engines ignore the hint).  The engine accumulates
                    # marks until its next solve, so nothing is lost when this
                    # iteration needs no switch.
                    self.switcher.mark_dirty(sorted(self._perturbed))
                    self._perturbed.clear()
                if needs_switch(self.cluster.configuration, decision):
                    with span("plan") as plan_span:
                        try:
                            report = self._plan(decision, vjob_of_vm)
                        except PlanningError:
                            # Planning can fail transiently (e.g. a migration
                            # cycle with no pivot node on a packed cluster).
                            # Keep the current configuration for this round —
                            # the next iteration observes fresh demands and
                            # retries.
                            planning_failures += 1
                            plan_span.set(failed=True)
                            report = self._fallback_plan(decision, vjob_of_vm)
                    if report is not None:
                        consecutive_failures = 0
                    else:
                        consecutive_failures += 1
                        if (
                            consecutive_failures
                            >= self.max_consecutive_planning_failures
                        ):
                            # The decision is permanently unplannable: fail
                            # loudly instead of spinning until max_time and
                            # returning plausible-looking garbage.
                            raise PlanningError(
                                f"policy {self.policy_name!r} produced "
                                f"{consecutive_failures} consecutive unplannable "
                                f"decisions (last at simulated time {now:.0f}s); "
                                "the scenario cannot make progress"
                            )
                else:
                    # No switch needed is progress too: a transient failure
                    # followed by a satisfied decision must not count towards
                    # the consecutive-failure abort.
                    consecutive_failures = 0
                if report is not None:
                    execution = self.executor.execute(
                        report.plan,
                        self.cluster,
                        start_time=now,
                        constraints=self.constraints,
                    )
                    switch_duration = execution.duration
                    involved_nodes = execution.involved_nodes()
                    record = self._record_switch(now, report, execution)
                    result.switches.append(record)
                    round_span.set(switched=True, switch_cost=record.cost)
                    statistics = getattr(report, "statistics", None)
                    if statistics is not None:
                        # Deterministic counters only (no wall-clock fields):
                        # the HTTP-equals-in-process determinism test compares
                        # full result documents across independent runs.
                        solver_rounds.append(
                            {
                                "time": now,
                                "nodes": statistics.nodes,
                                "backtracks": statistics.backtracks,
                                "propagations": statistics.propagations,
                                "solutions": statistics.solutions,
                                "proven_optimal": statistics.proven_optimal,
                            }
                        )
                    if report.repair is not None:
                        repair_traces.append(report.repair)
                    self._record_migration_faults(execution, result)
                    self._record_switch_violations(now, report, execution, result)
                    self._notify("on_switch", record, report)
                    self.monitoring.notify_reconfiguration(now + switch_duration)
                    self._sync_vjob_states()
                    self._check_repairs(now + switch_duration, result)

                # constraint watchdog: the settled state of this iteration must
                # honour the catalog, switch or not
                self._record_configuration_violations(now + switch_duration, result)

                # sample utilization after the switch
                sample = self._sample(now)
                result.utilization.append(sample)
                self._notify("on_sample", sample)

                # advance simulated time and the progress of the running vjobs
                step = max(self.period, switch_duration)
                self._advance_progress(step, switch_duration, involved_nodes, now)
                now += step
                iteration += 1

        result.makespan = (
            max(result.completion_times.values()) if result.completion_times else now
        )
        result.unfinished_vjobs = sorted(
            workload.vjob.name
            for workload in self.workloads
            if workload.vjob.name in self._submitted
            and not workload.vjob.is_terminated
        )
        result.sla_violations = self._sla_violations(result)
        result.metadata["final_viable"] = self.cluster.configuration.is_viable()
        result.metadata["simulated_time"] = now
        result.metadata["planning_failures"] = planning_failures
        if self._stop_requested:
            result.metadata["stopped_early"] = True
        if solver_rounds:
            # Per-round CP search statistics (satellite of the tracing PR):
            # partitioned engines report counters merged across zones, so
            # monolithic and decomposed runs are directly comparable here.
            result.metadata["solver"] = {
                "rounds": solver_rounds,
                "totals": {
                    key: sum(r[key] for r in solver_rounds)
                    for key in (
                        "nodes",
                        "backtracks",
                        "propagations",
                        "solutions",
                    )
                },
            }
        if repair_traces:
            result.metadata["repair_engine"] = {
                "repair_rounds": sum(
                    1 for t in repair_traces if t.get("mode") == "repair"
                ),
                "full_rounds": sum(
                    1 for t in repair_traces if t.get("mode") == "full"
                ),
                "dirty_vms_total": sum(t.get("dirty_count", 0) for t in repair_traces),
                "frozen_vms_total": sum(
                    t.get("frozen_count", 0) for t in repair_traces
                ),
                "attempts_total": sum(t.get("attempts", 0) for t in repair_traces),
                "reused_zones_total": sum(
                    t.get("reused_zones", 0) for t in repair_traces
                ),
            }
        if self._declared_constraints:
            # The declared catalog (stable identity of a constrained run) and
            # the post-repair set actually enforced at the end — they differ
            # when crashes adjusted or retired constraints mid-run.
            result.metadata["constraints"] = list(self._declared_constraints)
            result.metadata["active_constraints"] = [
                c.label for c in self.constraints
            ]
        if self.faults is not None:
            # Settle the pending-repair set one last time: a vjob repaired
            # (or terminated) by the *final* switch — or that finished after
            # its last switch — must not linger in the metadata as
            # unrepaired.  ``now`` already includes the final iteration's
            # switch duration, so latencies recorded here stay non-negative.
            self._check_repairs(now, result)
            result.metadata["unrepaired_vjobs"] = sorted(self._repair_pending)
        self._notify("on_run_end", result)
        return result

    # ------------------------------------------------------------------ #
    # helpers                                                             #
    # ------------------------------------------------------------------ #

    def _notify(self, hook: str, *payload: Any) -> None:
        for observer in self.observers:
            getattr(observer, hook)(*payload)

    # ------------------------------------------------------------------ #
    # placement constraints                                               #
    # ------------------------------------------------------------------ #

    def _offer_constraints(self) -> None:
        """Hand the constraint set to the decision module when it is
        constraint-aware (``use_constraints`` hook — the heuristic policies
        filter their candidate nodes with it)."""
        if not self._constraints_managed:
            return
        hook = getattr(self.decision_module, "use_constraints", None)
        if hook is not None:
            hook(tuple(self.constraints))

    def _repair_constraints(self, node_name: str) -> None:
        """Run every constraint's node-failure repair hook.

        Constraints may adapt to the shrunken fleet (an elastic ``Fence``
        dropping the dead node) or retire; the surviving set is re-offered to
        the decision module so fault-driven replanning re-applies it when the
        crashed vjobs are rescheduled onto the survivors.
        """
        if not self.constraints:
            return
        repaired = []
        for constraint in self.constraints:
            adjusted = constraint.on_node_failure(node_name)
            if adjusted is not None:
                repaired.append(adjusted)
        self.constraints = repaired
        # Push the adjusted set even when it became empty: the module must
        # drop a fully-retired constraint, not keep filtering with it.
        self._offer_constraints()

    def _record_violation(
        self, record: ConstraintViolationRecord, result: RunResult
    ) -> None:
        result.constraint_violations.append(record)
        self._notify("on_constraint_violation", record)

    def _record_switch_violations(
        self, now: float, report, execution, result: RunResult
    ) -> None:
        """Timeline entries for this switch: the plan's intended intermediate
        states (``phase="plan"``) and the live pool boundaries observed by
        the executor (``phase="execution"``)."""
        for violation in report.plan.constraint_violations:
            self._record_violation(
                ConstraintViolationRecord(
                    time=now,
                    constraint=violation.constraint,
                    phase="plan",
                    message=violation.message,
                    stage=violation.stage,
                ),
                result,
            )
        for event in execution.constraint_violations:
            self._record_violation(
                ConstraintViolationRecord(
                    time=event.time,
                    constraint=event.constraint,
                    phase="execution",
                    message=event.message,
                    # ExecutionReport pool indices are 0-based; the record's
                    # stage counts pools *applied* so both phases agree on
                    # the same boundary (stage 1 = after the first pool).
                    stage=event.pool_index + 1,
                ),
                result,
            )

    def _record_configuration_violations(
        self, time: float, result: RunResult
    ) -> None:
        """One ``phase="configuration"`` entry per constraint the settled
        iteration state breaks (a persistent breach shows up once per
        iteration — that repetition *is* the timeline)."""
        if not self.constraints:
            return
        violated_labels: set[str] = set()
        for violation in check_configuration(
            self.cluster.configuration, self.constraints
        ):
            violated_labels.add(violation.constraint)
            self._record_violation(
                ConstraintViolationRecord(
                    time=time,
                    constraint=violation.constraint,
                    phase="configuration",
                    message=violation.message,
                ),
                result,
            )
        if violated_labels:
            # Members of a breached constraint are perturbed: the repair
            # engines must be free to move them (and compute_dirty_set
            # additionally re-opens any frozen placement a shrunken
            # constraint no longer allows).
            for constraint in self.constraints:
                if constraint.label in violated_labels:
                    self._perturbed.update(constraint.vms)

    # ------------------------------------------------------------------ #
    # fault handling                                                      #
    # ------------------------------------------------------------------ #

    def _apply_fault(
        self, event: FaultEvent, now: float, result: RunResult
    ) -> None:
        """Apply one due fault event and record it on the result."""
        affected: tuple[str, ...] = ()
        detail = ""
        if event.kind is FaultKind.NODE_CRASH:
            # Constraint repair first: replanning the victims must happen
            # against the adjusted catalog, not the pre-crash one.
            self._repair_constraints(event.target)
            if self.cluster.configuration.has_node(event.target):
                affected = self._crash_node(event.target, event.time)
            elif event.target in self._delayed_nodes:
                # The node died before it ever booted: cancel the pending
                # boot so it does not later join the fleet alive.
                del self._delayed_nodes[event.target]
                detail = "crashed before boot; boot cancelled"
            else:
                detail = "node absent; ignored"
        elif event.kind is FaultKind.DELAYED_BOOT:
            node = self._delayed_nodes.pop(event.target, None)
            if node is not None and not self.cluster.configuration.has_node(
                node.name
            ):
                self.cluster.configuration.add_node(node)
            elif node is None:
                detail = "no pending boot (cancelled or unknown); ignored"
            else:
                detail = "node already present; ignored"
        # NODE_SLOWDOWN needs no application step: the injector answers
        # slowdown_factor() queries for the whole window.  The record below
        # still marks the window opening on the fault timeline.
        record = FaultRecord(
            time=event.time,
            kind=event.kind.value,
            target=event.target,
            detected_at=now,
            affected_vjobs=affected,
            detail=detail,
        )
        result.faults.append(record)
        self._notify("on_fault", record)

    def _crash_node(self, node_name: str, crash_time: float) -> tuple[str, ...]:
        """Kill a node; the vjobs it hosted fall back to Waiting entirely.

        The consistency requirement of Section 4.1 (all the VMs of a vjob
        run together) extends to failures: losing one VM invalidates the
        vjob's current execution, so every sibling VM is reset too and the
        whole vjob re-enters the queue.  Progress already accumulated is
        kept — the restart-from-checkpoint assumption documented in
        ``docs/SIMULATOR_GUIDE.md``.
        """
        configuration = self.cluster.configuration
        eviction = evict_node(configuration, node_name)
        vjob_of_vm = self._vjob_of_vm()
        affected = sorted(
            {
                vjob_of_vm[vm]
                for vm in eviction.affected_vms
                if vm in vjob_of_vm
            }
        )
        repaired_names = []
        for name in affected:
            vjob = self.queue.get(name) if name in self.queue else None
            if vjob is None or vjob.is_terminated:
                continue
            for vm in vjob.vm_names:
                if configuration.has_vm(vm) and configuration.state_of(
                    vm
                ) is not VMState.TERMINATED:
                    configuration.set_waiting(vm)
            # Exogenous transition: a crash may force Running -> Waiting,
            # which the life-cycle state machine (Figure 2) has no edge for.
            vjob.state = VJobState.WAITING
            self._repair_pending.setdefault(name, crash_time)
            repaired_names.append(name)
            # Every sibling VM must be replanned together (consistency of
            # Section 4.1), so the whole vjob joins the dirty region.
            self._perturbed.update(vjob.vm_names)
        for vm in eviction.affected_vms:
            self.cluster.images.discard(vm)
        return tuple(repaired_names)

    def _record_migration_faults(self, execution, result: RunResult) -> None:
        """Put every aborted migration of a switch on the fault timeline.

        Unlike the scheduled faults, a migration failure only materializes
        when the executor actually attempts the move, so it is recorded here
        — at the attempt's start time — rather than in ``_apply_fault``.
        """
        from ..core.actions import ActionKind

        for failure in execution.failures:
            if (
                failure.action.kind is not ActionKind.MIGRATE
                or failure.reason != "migration-fault"
            ):
                continue
            # The VM stayed on its source node, diverging from the accepted
            # plan — mark it so the repair engines replan it next round.
            self._perturbed.add(failure.action.vm)
            record = FaultRecord(
                time=failure.start,
                kind=FaultKind.MIGRATION_FAILURE.value,
                target=failure.action.vm,
                detected_at=failure.start,
                detail=(
                    f"migration {failure.action.source()} -> "
                    f"{failure.action.destination()} aborted"
                ),
            )
            result.faults.append(record)
            self._notify("on_fault", record)

    def _check_repairs(self, finish_time: float, result: RunResult) -> None:
        """Vjobs knocked out by a crash that are running again are repaired;
        the latency runs from the crash to the end of the restoring switch."""
        for name in list(self._repair_pending):
            vjob = self.queue.get(name)
            if vjob.state is VJobState.RUNNING:
                latency = finish_time - self._repair_pending.pop(name)
                result.repair_latencies[name] = latency
                self._notify("on_repair", name, latency)
            elif vjob.is_terminated:
                del self._repair_pending[name]

    def _sla_violations(self, result: RunResult) -> list[str]:
        """Vjobs whose turnaround exceeded ``sla_factor`` times their ideal
        execution time (unfinished vjobs always violate)."""
        if self.sla_factor is None:
            return []
        violations = set(result.unfinished_vjobs)
        for workload in self.workloads:
            vjob = workload.vjob
            completed_at = result.completion_times.get(vjob.name)
            if completed_at is None:
                continue
            turnaround = completed_at - vjob.submitted_at
            if turnaround > self.sla_factor * workload.duration:
                violations.add(vjob.name)
        return sorted(violations)

    def _plan(self, decision: Decision, vjob_of_vm: Mapping[str, str]):
        """Plan the switch: towards the policy's explicit target when it
        computed one, through the optimizer otherwise."""
        if decision.target is not None:
            return self.switcher.plan_to(
                self.cluster.configuration,
                decision.target,
                vjob_of_vm,
                constraints=self.constraints,
            )
        if not self.switcher.use_optimizer and decision.fallback_target is None:
            raise ValueError(
                "use_optimizer=False needs the policy to supply an explicit "
                f"target or fallback placement, but {self.policy_name!r} "
                "returned neither — use a policy with a fallback (e.g. "
                "'consolidation' or 'ffd') or enable the optimizer"
            )
        return self.switcher.compute(
            self.cluster.configuration,
            decision.vm_states,
            vjob_of_vm=vjob_of_vm,
            fallback_target=decision.fallback_target,
            constraints=self.constraints,
        )

    def _fallback_plan(self, decision: Decision, vjob_of_vm: Mapping[str, str]):
        """Last-resort plan towards the decision's fallback target; ``None``
        when there is no fallback or it cannot be planned either."""
        if decision.fallback_target is None or decision.target is not None:
            return None
        try:
            report = self.switcher.plan_to(
                self.cluster.configuration,
                decision.fallback_target,
                vjob_of_vm,
                constraints=self.constraints,
            )
        except PlanningError:
            return None
        # plan_to() does not know it planned a fallback; flag it so the
        # RunResult fallback statistics stay truthful.
        report.used_fallback = True
        return report

    def _record_switch(self, now, report, execution) -> ContextSwitchRecord:
        from ..core.actions import ActionKind, Resume

        local_resumes = sum(
            1
            for item in execution.actions
            if isinstance(item.action, Resume) and item.action.is_local
        )
        failed_migrations = sum(
            1
            for failure in execution.failures
            if failure.action.kind is ActionKind.MIGRATE
            and failure.reason == "migration-fault"
        )
        return ContextSwitchRecord(
            time=now,
            cost=plan_cost(report.plan).total,
            duration=execution.duration,
            migrations=execution.count(ActionKind.MIGRATE),
            runs=execution.count(ActionKind.RUN),
            stops=execution.count(ActionKind.STOP),
            suspends=execution.count(ActionKind.SUSPEND),
            resumes=execution.count(ActionKind.RESUME),
            local_resumes=local_resumes,
            used_fallback=report.used_fallback,
            failed_migrations=failed_migrations,
        )

    def _sample(self, now: float) -> UtilizationSample:
        configuration = self.cluster.configuration
        capacity = configuration.total_capacity()
        usage = configuration.total_usage()
        demand_units = 0
        for workload in self.workloads:
            vjob = workload.vjob
            if vjob.name not in self._submitted or vjob.is_terminated:
                continue
            progress = self.progress[vjob.name]
            demand_units += sum(
                trace.demand_at(progress) for trace in workload.traces.values()
            )
        return UtilizationSample(
            time=now,
            cpu_demand_units=demand_units,
            cpu_used_units=usage.cpu,
            cpu_capacity_units=capacity.cpu,
            memory_used_mb=usage.memory,
        )

    def _advance_progress(
        self,
        step: float,
        switch_duration: float,
        involved_nodes: set[str],
        now: float = 0.0,
    ) -> None:
        """Advance the execution of the running vjobs by ``step`` seconds.

        Running VMs hosted on nodes touched by the context switch are slowed
        down during the switch window (Section 2.3 measured a 1.3-1.5x factor);
        the remaining part of the interval progresses at full speed.  On top
        of that, a vjob with a VM on a fault-slowed node advances the whole
        interval ``slowdown_factor`` times slower (the worst factor across
        its VMs' hosts).
        """
        configuration = self.cluster.configuration
        factor = config.INTERFERENCE_FACTOR_LOCAL
        for workload in self.workloads:
            vjob = workload.vjob
            if vjob.state is not VJobState.RUNNING:
                continue
            slowed = False
            fault_slowdown = 1.0
            for vm_name in vjob.vm_names:
                host = configuration.location_of(vm_name)
                if host is None:
                    continue
                if switch_duration > 0 and host in involved_nodes:
                    slowed = True
                if self.faults is not None:
                    fault_slowdown = max(
                        fault_slowdown, self.faults.slowdown_factor(host, now)
                    )
            if slowed:
                effective = (step - switch_duration) + switch_duration / factor
            else:
                effective = step
            self.progress[vjob.name] += effective / fault_slowdown
