"""String-keyed registry of decision modules.

Scenarios select their policy declaratively (``Scenario(..., policy="fcfs")``)
instead of importing and wiring a concrete class.  The registry maps a name to
a factory returning a :class:`~repro.api.decision.DecisionModule`; the four
policies of the paper are pre-registered lazily (the concrete modules are only
imported on first use, which keeps :mod:`repro.api` free of import cycles):

``consolidation``
    Dynamic consolidation with cluster-wide context switches — the paper's
    sample decision module (Section 3.2).
``fcfs``
    FCFS static booking run inside the same loop — the Section 2.1 baseline.
``ffd``
    First-Fit Decreasing replacement planner — the Section 5.1 baseline.
``rjsp``
    Pure Running Job Selection without an FFD fallback.

Third-party policies register themselves with
:func:`register_decision_module`, either directly or as a class decorator::

    @register_decision_module("greedy")
    class GreedyModule:
        def decide(self, configuration, queue, demands=None) -> Decision:
            ...
"""

from __future__ import annotations

from importlib import import_module
from typing import Any, Callable, Optional

from .decision import DecisionModule

#: Lazily-resolved factories for the built-in policies ("module:attribute").
_BUILTIN_PATHS: dict[str, str] = {
    "consolidation": "repro.decision.consolidation:ConsolidationDecisionModule",
    "fcfs": "repro.decision.fcfs:FCFSDecisionModule",
    "ffd": "repro.decision.ffd:FFDDecisionModule",
    "rjsp": "repro.decision.rjsp:RJSPDecisionModule",
}

_FACTORIES: dict[str, Callable[..., DecisionModule]] = {}


class UnknownDecisionModuleError(KeyError):
    """Raised when a scenario names a policy the registry does not know."""

    def __init__(self, name: str) -> None:
        self.name = name
        available = ", ".join(sorted(available_decision_modules()))
        super().__init__(
            f"unknown decision module {name!r}; registered modules: {available}"
        )

    def __str__(self) -> str:  # KeyError quotes its payload; keep it readable
        return self.args[0]


def _resolve_builtin(name: str) -> Callable[..., DecisionModule]:
    module_path, _, attribute = _BUILTIN_PATHS[name].partition(":")
    return getattr(import_module(module_path), attribute)


def register_decision_module(
    name: str,
    factory: Optional[Callable[..., DecisionModule]] = None,
    *,
    overwrite: bool = False,
) -> Callable[..., Any]:
    """Register ``factory`` (a class or callable) under ``name``.

    Usable directly — ``register_decision_module("mine", MyModule)`` — or as a
    class decorator.  Registering an already-known name raises ``ValueError``
    unless ``overwrite=True``; this catches accidental collisions with the
    built-in policies.
    """
    if not name or not isinstance(name, str):
        raise ValueError("a decision module needs a non-empty string name")

    def _register(target: Callable[..., DecisionModule]):
        if not overwrite and (name in _FACTORIES or name in _BUILTIN_PATHS):
            raise ValueError(
                f"decision module {name!r} is already registered "
                "(pass overwrite=True to replace it)"
            )
        _FACTORIES[name] = target
        return target

    if factory is None:
        return _register
    return _register(factory)


def get_decision_module(name: str, **options: Any) -> DecisionModule:
    """Instantiate the decision module registered under ``name``.

    ``options`` are forwarded to the factory (e.g.
    ``get_decision_module("fcfs", backfilling="none")``).
    """
    factory = _FACTORIES.get(name)
    if factory is None:
        if name not in _BUILTIN_PATHS:
            raise UnknownDecisionModuleError(name)
        factory = _resolve_builtin(name)
        _FACTORIES[name] = factory
    return factory(**options)


def available_decision_modules() -> tuple[str, ...]:
    """Names of every registered policy, built-ins included, sorted."""
    return tuple(sorted(set(_BUILTIN_PATHS) | set(_FACTORIES)))
