"""Observer hooks for the control loop.

A :class:`LoopObserver` receives a callback at each stage of the
observe/decide/plan/execute iteration, so metrics sampling, tracing or live
dashboards attach to a run without subclassing the loop.  The base class is a
no-op: override only the hooks you care about and pass the instance through
``Scenario(observers=[...])`` or ``ExperimentBuilder.observe(...)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.context_switch import ContextSwitchReport
    from ..model.configuration import Configuration
    from .decision import Decision
    from .results import (
        ConstraintViolationRecord,
        ContextSwitchRecord,
        FaultRecord,
        RunResult,
        UtilizationSample,
    )


class LoopObserver:
    """No-op base class for control-loop observers."""

    def on_run_start(self, loop: Any) -> None:
        """The loop is about to execute its first iteration."""

    def on_iteration(self, time: float, configuration: "Configuration") -> None:
        """A new iteration starts; monitoring has just been refreshed."""

    def on_decision(self, time: float, decision: "Decision") -> None:
        """The decision module returned its target VM states."""

    def on_switch(
        self, record: "ContextSwitchRecord", report: "ContextSwitchReport"
    ) -> None:
        """A cluster-wide context switch was planned and executed."""

    def on_sample(self, sample: "UtilizationSample") -> None:
        """A utilization sample was taken (end of the iteration)."""

    def on_vjob_completed(self, name: str, time: float) -> None:
        """A vjob finished all its work and was terminated."""

    def on_fault(self, record: "FaultRecord") -> None:
        """A fault fired and was applied to the cluster (chaos runs only)."""

    def on_repair(self, name: str, latency: float) -> None:
        """A vjob knocked out by a crash is running again; ``latency`` is the
        crash-to-running repair time in seconds."""

    def on_constraint_violation(
        self, record: "ConstraintViolationRecord"
    ) -> None:
        """A placement constraint was observed broken (constrained runs
        only); fires once per violation-timeline entry."""

    def on_run_end(self, result: "RunResult") -> None:
        """The loop completed; ``result`` is about to be returned."""


class RecordingObserver(LoopObserver):
    """Observer that records every event — handy in tests and notebooks."""

    def __init__(self) -> None:
        self.events: list[tuple[str, Any]] = []

    def on_run_start(self, loop: Any) -> None:
        self.events.append(("run_start", loop))

    def on_iteration(self, time: float, configuration: "Configuration") -> None:
        self.events.append(("iteration", time))

    def on_decision(self, time: float, decision: "Decision") -> None:
        self.events.append(("decision", (time, decision)))

    def on_switch(
        self, record: "ContextSwitchRecord", report: "ContextSwitchReport"
    ) -> None:
        self.events.append(("switch", record))

    def on_sample(self, sample: "UtilizationSample") -> None:
        self.events.append(("sample", sample))

    def on_vjob_completed(self, name: str, time: float) -> None:
        self.events.append(("vjob_completed", (name, time)))

    def on_fault(self, record: "FaultRecord") -> None:
        self.events.append(("fault", record))

    def on_repair(self, name: str, latency: float) -> None:
        self.events.append(("repair", (name, latency)))

    def on_constraint_violation(
        self, record: "ConstraintViolationRecord"
    ) -> None:
        self.events.append(("constraint_violation", record))

    def on_run_end(self, result: "RunResult") -> None:
        self.events.append(("run_end", result))

    def of_kind(self, kind: str) -> list[Any]:
        return [payload for name, payload in self.events if name == kind]
