"""The sample decision module: dynamic consolidation with context switches.

This is the scheduling policy of Section 3.2: every 30 seconds the module
observes the current CPU and memory demands of the VMs, solves the Running Job
Selection Problem over the FCFS queue, and asks the cluster-wide context switch
to reach a viable configuration in which the selected vjobs run and the others
sleep or keep waiting.  Compared to classic dynamic consolidation it also
handles *overloaded* clusters: when no viable assignment exists for every
running vjob, the lowest-priority ones are suspended instead of letting nodes
stay overloaded.

Because the whole queue is re-evaluated every round against the *current*
configuration, the policy is fault-reactive without fault-specific code: a
vjob knocked back to Waiting by a node crash is simply re-selected and
re-placed on the surviving nodes, and a migration undone by a failure is
re-derived on the next round (see :mod:`repro.sim.faults`).

Registered as ``"consolidation"`` in :mod:`repro.api.registry`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..api.decision import Decision, stop_terminated_vms
from ..constraints import PlacementConstraint
from ..model.configuration import Configuration
from ..model.queue import VJobQueue
from ..model.vjob import index_vms_by_vjob
from .ffd import ffd_target_configuration
from .rjsp import select_running_vjobs

__all__ = ["ConsolidationDecisionModule", "Decision"]


class ConsolidationDecisionModule:
    """FCFS-driven dynamic consolidation (the paper's sample policy).

    The CP optimizer enforces placement constraints itself; this module
    needs them too (via ``constraints`` or the loop's ``use_constraints``
    hook) so the RJSP *selection* only accepts vjob sets that have a
    constrained placement, and so its FFD *fallback* target stays honest
    when the search runs out of time.
    """

    name = "consolidation"

    def __init__(
        self,
        period: float = 30.0,
        constraints: Sequence[PlacementConstraint] = (),
    ) -> None:
        #: Decision period in seconds (Section 3.2 uses 30 s).
        self.period = period
        self.constraints: tuple[PlacementConstraint, ...] = tuple(constraints)

    def use_constraints(
        self, constraints: Sequence[PlacementConstraint]
    ) -> None:
        """Control-loop hook: the FFD fallback target filters its candidate
        nodes with these placement constraints."""
        self.constraints = tuple(constraints)

    def decide(
        self,
        configuration: Configuration,
        queue: VJobQueue,
        demands: Optional[dict[str, int]] = None,
    ) -> Decision:
        """Compute the target state of every VM for the next iteration."""
        rjsp = select_running_vjobs(
            configuration, queue, demands, constraints=self.constraints
        )
        vm_states = dict(rjsp.vm_states)

        # Terminated vjobs: make sure their VMs are stopped.
        stop_terminated_vms(configuration, queue, vm_states)

        fallback = ffd_target_configuration(
            configuration, vm_states, constraints=self.constraints
        )
        return Decision(
            vm_states=vm_states,
            vjob_states=dict(rjsp.vjob_states),
            fallback_target=fallback,
            metadata={"rjsp": rjsp},
        )

    @staticmethod
    def vjob_index(queue: VJobQueue) -> dict[str, str]:
        """VM -> vjob mapping for the consistency pass of the planner."""
        return index_vms_by_vjob(queue.ordered())
