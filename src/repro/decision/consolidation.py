"""The sample decision module: dynamic consolidation with context switches.

This is the scheduling policy of Section 3.2: every 30 seconds the module
observes the current CPU and memory demands of the VMs, solves the Running Job
Selection Problem over the FCFS queue, and asks the cluster-wide context switch
to reach a viable configuration in which the selected vjobs run and the others
sleep or keep waiting.  Compared to classic dynamic consolidation it also
handles *overloaded* clusters: when no viable assignment exists for every
running vjob, the lowest-priority ones are suspended instead of letting nodes
stay overloaded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..model.configuration import Configuration
from ..model.queue import VJobQueue
from ..model.vjob import VJobState, index_vms_by_vjob
from ..model.vm import VMState
from .ffd import ffd_target_configuration
from .rjsp import RJSPResult, select_running_vjobs


@dataclass
class Decision:
    """What the decision module wants the next configuration to look like."""

    vm_states: dict[str, VMState] = field(default_factory=dict)
    vjob_states: dict[str, VJobState] = field(default_factory=dict)
    rjsp: Optional[RJSPResult] = None
    #: Fallback target configuration computed with FFD (used when the CP
    #: search cannot produce an assignment in time).
    fallback_target: Optional[Configuration] = None

    @property
    def is_noop(self) -> bool:
        return not self.vm_states


class ConsolidationDecisionModule:
    """FCFS-driven dynamic consolidation (the paper's sample policy)."""

    def __init__(self, period: float = 30.0) -> None:
        #: Decision period in seconds (Section 3.2 uses 30 s).
        self.period = period

    def decide(
        self,
        configuration: Configuration,
        queue: VJobQueue,
        demands: Optional[dict[str, int]] = None,
    ) -> Decision:
        """Compute the target state of every VM for the next iteration."""
        rjsp = select_running_vjobs(configuration, queue, demands)
        vm_states = dict(rjsp.vm_states)

        # Terminated vjobs: make sure their VMs are stopped.
        for vjob in queue.terminated():
            for vm in vjob.vms:
                if configuration.has_vm(vm.name) and configuration.state_of(
                    vm.name
                ) is VMState.RUNNING:
                    vm_states[vm.name] = VMState.TERMINATED

        fallback = ffd_target_configuration(configuration, vm_states)
        return Decision(
            vm_states=vm_states,
            vjob_states=dict(rjsp.vjob_states),
            rjsp=rjsp,
            fallback_target=fallback,
        )

    @staticmethod
    def vjob_index(queue: VJobQueue) -> dict[str, str]:
        """VM -> vjob mapping for the consistency pass of the planner."""
        return index_vms_by_vjob(queue.ordered())
