"""FCFS batch scheduling with EASY backfilling (Section 2.1, Figures 1 & 12).

The paper contrasts its dynamic consolidation policy with the usual way
clusters are exploited: a Resource Management System assigning a *static* set
of resources to each job for a bounded amount of time, scheduling the queue
First-Come-First-Served with the EASY backfilling optimisation.  This module
implements that baseline at the job granularity: a job books a fixed number of
processing units (and optionally memory) for its whole duration, jobs start in
queue order, and EASY backfilling lets a later job jump ahead when it does not
delay the reservation of the first blocked job (based on the user estimates).

The resulting allocations feed the Figure 12 allocation diagram, the Figure 13
utilization curves and the 250-minute FCFS makespan the paper reports.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Literal, Optional, Sequence

from ..api.decision import Decision, empty_configuration, stop_terminated_vms
from ..constraints import CandidateFilter, PlacementConstraint
from ..model.configuration import Configuration
from ..model.queue import VJobQueue
from ..model.vjob import VJobState
from ..model.vm import VMState


@dataclass(frozen=True)
class BatchJob:
    """A job as seen by the batch scheduler: a static resource request."""

    name: str
    cpus: int
    duration: float
    memory: int = 0
    submit_time: float = 0.0
    estimated_duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.cpus <= 0:
            raise ValueError(f"job {self.name!r}: cpus must be positive")
        if self.duration <= 0:
            raise ValueError(f"job {self.name!r}: duration must be positive")

    @property
    def walltime(self) -> float:
        """User estimate used by backfilling (defaults to the real duration)."""
        return self.estimated_duration if self.estimated_duration is not None else self.duration


@dataclass(frozen=True)
class JobAllocation:
    """Where and when a job executed."""

    job: BatchJob
    start: float

    @property
    def end(self) -> float:
        return self.start + self.job.duration

    @property
    def wait_time(self) -> float:
        return self.start - self.job.submit_time


@dataclass
class Schedule:
    """The outcome of a batch scheduling run."""

    allocations: list[JobAllocation] = field(default_factory=list)
    total_cpus: int = 0
    total_memory: int = 0

    @property
    def makespan(self) -> float:
        if not self.allocations:
            return 0.0
        return max(a.end for a in self.allocations)

    def allocation_of(self, name: str) -> JobAllocation:
        for allocation in self.allocations:
            if allocation.job.name == name:
                return allocation
        raise KeyError(name)

    def cpu_usage_at(self, time: float) -> int:
        return sum(
            a.job.cpus for a in self.allocations if a.start <= time < a.end
        )

    def memory_usage_at(self, time: float) -> int:
        return sum(
            a.job.memory for a in self.allocations if a.start <= time < a.end
        )

    def utilization_series(self, step: float = 60.0) -> list[tuple[float, float, float]]:
        """(time, cpu fraction, memory MB) samples over the whole schedule."""
        series = []
        time = 0.0
        horizon = self.makespan
        while time <= horizon:
            cpu = self.cpu_usage_at(time) / self.total_cpus if self.total_cpus else 0.0
            series.append((time, cpu, float(self.memory_usage_at(time))))
            time += step
        return series


BackfillPolicy = Literal["none", "easy"]


class FCFSScheduler:
    """First-Come-First-Served scheduler with optional EASY backfilling."""

    def __init__(
        self,
        total_cpus: int,
        total_memory: int = 0,
        backfilling: BackfillPolicy = "easy",
    ) -> None:
        if total_cpus <= 0:
            raise ValueError("total_cpus must be positive")
        if backfilling not in ("none", "easy"):
            raise ValueError(f"unknown backfilling policy {backfilling!r}")
        self.total_cpus = total_cpus
        self.total_memory = total_memory
        self.backfilling = backfilling

    # ------------------------------------------------------------------ #

    def schedule(self, jobs: Iterable[BatchJob]) -> Schedule:
        """Run the scheduling simulation and return every job's allocation."""
        # Stable sort: jobs submitted at the same instant keep their original
        # (queue) order, which is what FCFS means.
        pending = sorted(jobs, key=lambda j: j.submit_time)
        schedule = Schedule(
            total_cpus=self.total_cpus, total_memory=self.total_memory
        )
        if not pending:
            return schedule

        free_cpus = self.total_cpus
        free_memory = self.total_memory
        #: min-heap of (end time, sequence, allocation) for running jobs
        running: list[tuple[float, int, JobAllocation]] = []
        queue: list[BatchJob] = []
        sequence = 0

        def fits(job: BatchJob) -> bool:
            if job.cpus > free_cpus:
                return False
            if self.total_memory and job.memory > free_memory:
                return False
            return True

        def start(job: BatchJob, time: float) -> None:
            nonlocal free_cpus, free_memory, sequence
            allocation = JobAllocation(job=job, start=time)
            schedule.allocations.append(allocation)
            free_cpus -= job.cpus
            if self.total_memory:
                free_memory -= job.memory
            heapq.heappush(running, (allocation.end, sequence, allocation))
            sequence += 1

        def finish_until(time: float) -> None:
            nonlocal free_cpus, free_memory
            while running and running[0][0] <= time:
                _, _, allocation = heapq.heappop(running)
                free_cpus += allocation.job.cpus
                if self.total_memory:
                    free_memory += allocation.job.memory

        def dispatch(time: float) -> None:
            """Start queue-head jobs, then backfill if allowed."""
            while queue and fits(queue[0]):
                start(queue.pop(0), time)
            if not queue or self.backfilling == "none":
                return
            head = queue[0]
            shadow_time, spare_cpus, spare_memory = self._reservation(
                head, time, free_cpus, free_memory, running
            )
            index = 1
            while index < len(queue):
                job = queue[index]
                if fits(job) and self._can_backfill(
                    job, time, shadow_time, spare_cpus, spare_memory
                ):
                    queue.pop(index)
                    start(job, time)
                    # The head reservation may improve now; recompute it.
                    shadow_time, spare_cpus, spare_memory = self._reservation(
                        head, time, free_cpus, free_memory, running
                    )
                else:
                    index += 1

        arrival_index = 0
        time = pending[0].submit_time
        while arrival_index < len(pending) or queue or running:
            # Determine the next event time: a job arrival or a completion.
            next_arrival = (
                pending[arrival_index].submit_time
                if arrival_index < len(pending)
                else None
            )
            next_completion = running[0][0] if running else None
            candidates = [t for t in (next_arrival, next_completion) if t is not None]
            if not candidates:
                break
            time = min(candidates)

            finish_until(time)
            while (
                arrival_index < len(pending)
                and pending[arrival_index].submit_time <= time
            ):
                queue.append(pending[arrival_index])
                arrival_index += 1
            dispatch(time)

        schedule.allocations.sort(key=lambda a: (a.start, a.job.name))
        return schedule

    # ------------------------------------------------------------------ #
    # EASY backfilling internals                                          #
    # ------------------------------------------------------------------ #

    def _reservation(
        self,
        head: BatchJob,
        now: float,
        free_cpus: int,
        free_memory: int,
        running: Sequence[tuple[float, int, JobAllocation]],
    ) -> tuple[float, int, int]:
        """Earliest time the queue head can start (its *shadow time*) and the
        resources that will remain spare at that time."""
        cpus = free_cpus
        memory = free_memory
        if cpus >= head.cpus and (not self.total_memory or memory >= head.memory):
            return now, cpus - head.cpus, memory - head.memory
        for end, _, allocation in sorted(running):
            cpus += allocation.job.cpus
            memory += allocation.job.memory
            if cpus >= head.cpus and (
                not self.total_memory or memory >= head.memory
            ):
                return end, cpus - head.cpus, memory - head.memory
        # Should not happen if the job fits the machine at all.
        return float("inf"), 0, 0

    def _can_backfill(
        self,
        job: BatchJob,
        now: float,
        shadow_time: float,
        spare_cpus: int,
        spare_memory: int,
    ) -> bool:
        """EASY rule: a job may start now if it terminates (per its estimate)
        before the head's reservation, or if it only uses resources that will
        still be spare when the head starts."""
        if now + job.walltime <= shadow_time:
            return True
        if job.cpus <= spare_cpus and (
            not self.total_memory or job.memory <= spare_memory
        ):
            return True
        return False


class FCFSDecisionModule:
    """FCFS + static allocation as a pluggable control-loop policy.

    The Section 2.1 baseline expressed in the unified decision-module
    contract: each vjob *books* one processing unit per VM plus its memory for
    its whole execution, vjobs start in queue order when their booking fits
    the remaining capacity, and a started vjob is never suspended nor migrated
    — the booked resources stay claimed even while the embedded tasks idle,
    which is exactly the waste Figure 13 exposes.

    ``backfilling="none"`` (the default) blocks the queue strictly.
    ``backfilling="easy"`` lets a later vjob start when its booking fits the
    spare capacity *right now*; the decision module has no user runtime
    estimates, so — unlike the analytic :class:`FCFSScheduler`, which honours
    the EASY shadow-time reservation — this greedy variant can delay the
    blocked queue head.  When comparing head-to-head with
    :meth:`repro.api.Scenario.run_static`, pass the *same* backfilling
    setting to both (``run_static`` defaults to ``"easy"``, this module to
    ``"none"``).  Registered as ``"fcfs"`` in :mod:`repro.api.registry`.
    """

    name = "fcfs"

    def __init__(
        self,
        backfilling: BackfillPolicy = "none",
        constraints: Sequence[PlacementConstraint] = (),
    ) -> None:
        if backfilling not in ("none", "easy"):
            raise ValueError(f"unknown backfilling policy {backfilling!r}")
        self.backfilling = backfilling
        self.constraints: tuple[PlacementConstraint, ...] = tuple(constraints)

    def use_constraints(
        self, constraints: Sequence[PlacementConstraint]
    ) -> None:
        """Control-loop hook: admission trials filter their candidate nodes
        with these placement constraints."""
        self.constraints = tuple(constraints)

    @staticmethod
    def _booked_vm(configuration: Configuration, vm):
        """A VM at its booked demand: one full processing unit, whatever the
        embedded task currently does."""
        observed = configuration.vm(vm.name) if configuration.has_vm(vm.name) else vm
        return observed.with_cpu_demand(1)

    def decide(
        self,
        configuration: Configuration,
        queue: VJobQueue,
        demands: Optional[dict[str, int]] = None,
    ) -> Decision:
        """Book resources FCFS-style and keep every started vjob running.

        Admission packs the booked VMs (1 CPU each, full memory) onto a trial
        cluster with FFD, so a vjob is only admitted when a *per-node*
        feasible placement exists — aggregate free capacity alone is not
        enough for the planner to succeed.
        """
        from .ffd import ffd_commit

        trial = empty_configuration(configuration)
        node_filter = (
            CandidateFilter(self.constraints, reference=configuration)
            if self.constraints
            else None
        )

        vm_states: dict[str, VMState] = {}
        vjob_states: dict[str, VJobState] = {}

        # First pass: running vjobs hold their booking unconditionally, and
        # must claim it *before* any other vjob is admitted — otherwise a
        # waiting vjob could be admitted against capacity that is already
        # booked.  Their placed VMs are mirrored at their *actual* location
        # (exact, order-independent); the stragglers of a partially-running
        # vjob only join when their booking still fits.
        pending: list = []
        for vjob in queue.pending():
            if vjob.state is VJobState.RUNNING:
                placeless = []
                for vm in vjob.vms:
                    booked = self._booked_vm(configuration, vm)
                    location = configuration.location_of(vm.name)
                    if location is not None:
                        trial.add_vm(booked)
                        trial.set_running(vm.name, location)
                        vm_states[vm.name] = VMState.RUNNING
                    else:
                        placeless.append(booked)
                if placeless and ffd_commit(
                    trial, placeless, node_filter=node_filter
                ) is not None:
                    for vm in placeless:
                        vm_states[vm.name] = VMState.RUNNING
                else:
                    for vm in placeless:
                        vm_states[vm.name] = VMState.WAITING
                vjob_states[vjob.name] = VJobState.RUNNING
            else:
                pending.append(vjob)

        # Second pass: admit the other vjobs in *submission* order — that is
        # what First-Come-First-Served means, and what the analytic
        # FCFSScheduler baseline does (queue.pending() is priority-ordered;
        # the stable sort keeps that order for equal submission times).  A
        # sleeping vjob — possible only through state drift, FCFS itself
        # never suspends — re-queues like a waiting one and resumes when its
        # booking fits again.
        pending.sort(key=lambda vjob: vjob.submitted_at)
        blocked = False
        for vjob in pending:
            vms = [self._booked_vm(configuration, vm) for vm in vjob.vms]
            if (
                not blocked or self.backfilling == "easy"
            ) and ffd_commit(trial, vms, node_filter=node_filter) is not None:
                vjob_states[vjob.name] = VJobState.RUNNING
                for vm in vjob.vms:
                    vm_states[vm.name] = VMState.RUNNING
            else:
                blocked = True
                rejected_state = (
                    VJobState.SLEEPING
                    if vjob.state is VJobState.SLEEPING
                    else VJobState.WAITING
                )
                vjob_states[vjob.name] = rejected_state
                for vm in vjob.vms:
                    vm_states[vm.name] = (
                        VMState.SLEEPING
                        if rejected_state is VJobState.SLEEPING
                        else VMState.WAITING
                    )

        stop_terminated_vms(configuration, queue, vm_states)
        return Decision(
            vm_states=vm_states,
            vjob_states=vjob_states,
            metadata={"trial_placement": trial.placement()},
        )
