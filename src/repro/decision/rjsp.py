"""The Running Job Selection Problem (Section 3.2).

Every decision round, the sample decision module scans the whole FCFS queue in
priority order and selects the maximum prefix-respecting set of vjobs whose VMs
can all be packed on the cluster given their *current* resource demands.  A
vjob that does not fit is moved (or kept) out of the Running state: it becomes
Sleeping if it is currently running or sleeping, and stays Waiting otherwise.
Because running vjobs release resources when their demand drops, previously
rejected vjobs are re-evaluated at every round — hence the whole queue is
always reconsidered.

The selection packs onto whatever nodes the *current* configuration exposes,
so cluster churn needs no special casing here: nodes evicted by a crash are
simply absent from the trial packing, late-booting nodes enlarge it, and on
a fleet with no capacity left every vjob is rejected (the loop then waits
for capacity instead of planning an impossible switch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..api.decision import Decision, empty_configuration, stop_terminated_vms
from ..constraints import CandidateFilter, PlacementConstraint
from ..model.configuration import Configuration
from ..model.queue import VJobQueue
from ..model.vjob import VJob, VJobState
from ..model.vm import VMState
from .ffd import ffd_commit


@dataclass
class RJSPResult:
    """Outcome of one Running Job Selection round."""

    #: vjob name -> state the vjob should have in the next configuration.
    vjob_states: dict[str, VJobState] = field(default_factory=dict)
    #: VM name -> state, derived from the vjob decision.
    vm_states: dict[str, VMState] = field(default_factory=dict)
    #: Trial placement produced while checking feasibility (VM -> node); only
    #: covers the VMs of the accepted vjobs and is advisory — the optimizer
    #: recomputes the final placement.
    trial_placement: dict[str, str] = field(default_factory=dict)
    #: vjobs accepted in the Running state, in queue order.
    accepted: list[str] = field(default_factory=list)
    #: vjobs rejected this round, in queue order.
    rejected: list[str] = field(default_factory=list)

    @property
    def accepted_count(self) -> int:
        return len(self.accepted)


def select_running_vjobs(
    configuration: Configuration,
    queue: VJobQueue,
    demands: Optional[dict[str, int]] = None,
    constraints: Sequence[PlacementConstraint] = (),
) -> RJSPResult:
    """Solve the RJSP with the FFD heuristic.

    Parameters
    ----------
    configuration:
        Current configuration (provides nodes and VM descriptions).
    queue:
        The FCFS queue; vjobs are examined in priority order.
    demands:
        Optional override of the CPU demand of individual VMs (VM name ->
        processing units), typically the fresh values reported by the
        monitoring service.
    constraints:
        Placement constraints the trial packing must honour.  Without them
        the selection can accept a vjob set that fits capacity-wise but has
        no *constrained* assignment, sending the optimizer into a planning
        dead end; the greedy filter keeps the selection conservative (a
        constraint-heavy instance may reject a vjob the CP search could in
        fact place — it is then simply retried next round).
    """
    result = RJSPResult()
    trial = empty_configuration(configuration)
    node_filter = (
        CandidateFilter(constraints, reference=configuration)
        if constraints
        else None
    )

    for vjob in queue.pending():
        vms = []
        for vm in vjob.vms:
            observed = vm
            if configuration.has_vm(vm.name):
                observed = configuration.vm(vm.name)
            if demands is not None and vm.name in demands:
                observed = observed.with_cpu_demand(demands[vm.name])
            vms.append(observed)

        placement = ffd_commit(trial, vms, node_filter=node_filter)
        if placement is not None:
            result.accepted.append(vjob.name)
            result.vjob_states[vjob.name] = VJobState.RUNNING
            for vm in vms:
                result.vm_states[vm.name] = VMState.RUNNING
                result.trial_placement[vm.name] = placement[vm.name]
        else:
            result.rejected.append(vjob.name)
            rejected_state = _rejection_state(vjob)
            result.vjob_states[vjob.name] = rejected_state
            for vm in vjob.vms:
                result.vm_states[vm.name] = (
                    VMState.SLEEPING
                    if rejected_state is VJobState.SLEEPING
                    else VMState.WAITING
                )
    return result


def _rejection_state(vjob: VJob) -> VJobState:
    """A rejected vjob becomes Sleeping when it currently holds a machine
    state (running or already sleeping), and stays Waiting otherwise."""
    if vjob.state in (VJobState.RUNNING, VJobState.SLEEPING):
        return VJobState.SLEEPING
    return VJobState.WAITING


class RJSPDecisionModule:
    """Pure Running Job Selection as a pluggable policy.

    A thin adapter over :func:`select_running_vjobs`: the maximum
    prefix-respecting set of vjobs runs, the rest sleeps or waits, and the CP
    optimizer alone chooses the placement (no FFD fallback, so an exhausted
    time budget raises instead of degrading to an expensive plan).  Useful to
    isolate the contribution of the fallback in ablations.  Registered as
    ``"rjsp"``.
    """

    name = "rjsp"

    def __init__(
        self, constraints: Sequence[PlacementConstraint] = ()
    ) -> None:
        self.constraints: tuple[PlacementConstraint, ...] = tuple(constraints)

    def use_constraints(
        self, constraints: Sequence[PlacementConstraint]
    ) -> None:
        """Control-loop hook: the selection's trial packing filters its
        candidate nodes with these placement constraints."""
        self.constraints = tuple(constraints)

    def decide(
        self,
        configuration: Configuration,
        queue: VJobQueue,
        demands: Optional[dict[str, int]] = None,
    ) -> Decision:
        rjsp = select_running_vjobs(
            configuration, queue, demands, constraints=self.constraints
        )
        vm_states = dict(rjsp.vm_states)
        stop_terminated_vms(configuration, queue, vm_states)
        return Decision(
            vm_states=vm_states,
            vjob_states=dict(rjsp.vjob_states),
            metadata={"rjsp": rjsp},
        )
