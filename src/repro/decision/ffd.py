"""First-Fit Decreasing placement heuristic.

FFD is used twice in the paper:

* inside the Running Job Selection Problem (Section 3.2) to test whether the
  VMs of one more vjob fit on the cluster;
* as the baseline planner of the scalability evaluation (Section 5.1): a
  heuristic that computes the first viable configuration it finds — without
  trying to keep VMs where they are — and therefore produces reconfiguration
  plans that are on average ~95 % more expensive than Entropy's.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional, Sequence

from ..api.decision import Decision, stop_terminated_vms
from ..constraints import CandidateFilter, PlacementConstraint
from ..model.configuration import Configuration
from ..model.queue import VJobQueue
from ..model.vm import VirtualMachine, VMState

#: Constraint-awareness hook of the greedy packers: may VM (by name) go on
#: this node given the trial configuration built so far?
NodeFilter = Callable[[str, str, Configuration], bool]


def ffd_order(vms: Iterable[VirtualMachine]) -> list[VirtualMachine]:
    """Sort VMs by decreasing (CPU, memory) demand — the FFD ordering."""
    return sorted(vms, key=lambda vm: (vm.cpu_demand, vm.memory), reverse=True)


def ffd_place(
    configuration: Configuration,
    vms: Sequence[VirtualMachine],
    nodes: Optional[Sequence[str]] = None,
    node_filter: Optional[NodeFilter] = None,
) -> Optional[dict[str, str]]:
    """Place ``vms`` on the nodes of ``configuration`` with First-Fit
    Decreasing.

    The placement accounts for the VMs already running in ``configuration``
    and for the VMs placed earlier in this very call.  ``node_filter``
    (typically a :class:`~repro.constraints.CandidateFilter`) vetoes
    candidate nodes a placement constraint forbids.  Returns a mapping
    VM name -> node name, or ``None`` when at least one VM cannot be placed.
    The input configuration is left untouched.
    """
    trial = configuration.copy()
    node_names = list(nodes) if nodes is not None else list(trial.node_names)
    placement: dict[str, str] = {}
    for vm in ffd_order(vms):
        chosen = None
        for node in node_names:
            if not trial.can_host(node, vm):
                continue
            if node_filter is not None and not node_filter(vm.name, node, trial):
                continue
            chosen = node
            break
        if chosen is None:
            return None
        if trial.has_vm(vm.name):
            if trial.state_of(vm.name) is VMState.RUNNING:
                trial.migrate(vm.name, chosen)
            else:
                trial.set_running(vm.name, chosen)
        else:
            trial.add_vm(vm)
            trial.set_running(vm.name, chosen)
        placement[vm.name] = chosen
    return placement


def ffd_commit(
    trial: Configuration,
    vms: Sequence[VirtualMachine],
    node_filter: Optional[NodeFilter] = None,
) -> Optional[dict[str, str]]:
    """Place ``vms`` on ``trial`` with FFD and commit them as running.

    The shared place-then-commit step of the trial packings (RJSP feasibility
    test, FCFS admission).  Returns the placement, or ``None`` — with
    ``trial`` untouched — when at least one VM cannot be placed.
    """
    placement = ffd_place(trial, vms, node_filter=node_filter)
    if placement is None:
        return None
    for vm in vms:
        if not trial.has_vm(vm.name):
            trial.add_vm(vm)
        trial.set_running(vm.name, placement[vm.name])
    return placement


def ffd_target_configuration(
    current: Configuration,
    target_states: Mapping[str, VMState],
    constraints: Sequence[PlacementConstraint] = (),
) -> Optional[Configuration]:
    """Baseline target configuration computed with FFD from scratch.

    Every VM that must run is packed with FFD on an initially empty cluster,
    ignoring its current location — this is the "first completed viable
    configuration" behaviour of the baseline in Section 5.1 and it typically
    moves most of the running VMs.  ``constraints`` makes the packing
    constraint-aware through greedy candidate filtering (sound but greedy:
    FFD never backtracks out of a constraint dead end).  Returns ``None``
    when FFD fails to place every running VM (the baseline then has no
    solution).
    """
    states = {
        name: target_states.get(name, current.state_of(name))
        for name in current.vm_names
    }
    target = current.copy()
    # Empty the cluster first so FFD packs from scratch.
    for name in current.vm_names:
        if current.state_of(name) is VMState.RUNNING:
            target.set_waiting(name)

    node_filter = (
        CandidateFilter(constraints, reference=current) if constraints else None
    )
    must_run = [current.vm(name) for name, s in states.items() if s is VMState.RUNNING]
    placement = ffd_place(target, must_run, node_filter=node_filter)
    if placement is None:
        return None

    for name, state in states.items():
        if state is VMState.RUNNING:
            target.set_running(name, placement[name])
        elif state is VMState.SLEEPING:
            if current.state_of(name) is VMState.RUNNING:
                target.set_sleeping(name, current.location_of(name))
            elif current.state_of(name) is VMState.SLEEPING:
                target.set_sleeping(name, current.image_location_of(name))
            else:
                target.set_waiting(name)
        elif state is VMState.TERMINATED:
            target.set_terminated(name)
        else:
            target.set_waiting(name)
    return target


class FFDDecisionModule:
    """The First-Fit-Decreasing replacement planner as a pluggable policy.

    The Section 5.1 baseline: vjobs are selected exactly like the sample
    consolidation policy (the RJSP), but the target configuration is the
    first viable placement FFD finds when packing from scratch — without
    trying to keep VMs where they are — so the resulting reconfiguration
    plans are on average ~95 % more expensive than the CP optimizer's.  The
    explicit :attr:`~repro.api.decision.Decision.target` short-circuits the
    optimizer in the control loop.  Registered as ``"ffd"``.

    ``constraints`` (or the control loop's ``use_constraints`` hook) makes
    the packing constraint-aware: banned/fenced/spread-violating candidate
    nodes are filtered while the target is built.  When no constrained
    packing exists the module returns no target and the loop's optimizer —
    or the next round — takes over.
    """

    name = "ffd"

    def __init__(
        self, constraints: Sequence[PlacementConstraint] = ()
    ) -> None:
        self.constraints: tuple[PlacementConstraint, ...] = tuple(constraints)

    def use_constraints(
        self, constraints: Sequence[PlacementConstraint]
    ) -> None:
        """Control-loop hook: adopt (or replace, after a repair) the
        placement constraints to honour."""
        self.constraints = tuple(constraints)

    def decide(
        self,
        configuration: Configuration,
        queue: VJobQueue,
        demands: Optional[dict[str, int]] = None,
    ) -> Decision:
        # Imported here: rjsp imports helpers from this module.
        from .rjsp import select_running_vjobs

        rjsp = select_running_vjobs(
            configuration, queue, demands, constraints=self.constraints
        )
        vm_states = dict(rjsp.vm_states)
        stop_terminated_vms(configuration, queue, vm_states)
        target = ffd_target_configuration(
            configuration, vm_states, constraints=self.constraints
        )
        return Decision(
            vm_states=vm_states,
            vjob_states=dict(rjsp.vjob_states),
            target=target,
            metadata={"rjsp": rjsp},
        )
