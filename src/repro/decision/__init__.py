"""Decision modules: placement heuristics and scheduling policies.

Every policy implements the :class:`repro.api.DecisionModule` protocol and is
published in the registry (:mod:`repro.api.registry`) under its ``name``:
``"consolidation"``, ``"fcfs"``, ``"ffd"`` and ``"rjsp"``.
"""

from ..api.decision import Decision
from .consolidation import ConsolidationDecisionModule
from .fcfs import (
    BatchJob,
    FCFSDecisionModule,
    FCFSScheduler,
    JobAllocation,
    Schedule,
)
from .ffd import (
    FFDDecisionModule,
    ffd_commit,
    ffd_order,
    ffd_place,
    ffd_target_configuration,
)
from .rjsp import RJSPDecisionModule, RJSPResult, select_running_vjobs

__all__ = [
    "ConsolidationDecisionModule",
    "Decision",
    "BatchJob",
    "FCFSDecisionModule",
    "FCFSScheduler",
    "JobAllocation",
    "Schedule",
    "FFDDecisionModule",
    "ffd_commit",
    "ffd_order",
    "ffd_place",
    "ffd_target_configuration",
    "RJSPDecisionModule",
    "RJSPResult",
    "select_running_vjobs",
]
