"""Decision modules: placement heuristics and scheduling policies."""

from .consolidation import ConsolidationDecisionModule, Decision
from .fcfs import BatchJob, FCFSScheduler, JobAllocation, Schedule
from .ffd import ffd_order, ffd_place, ffd_target_configuration
from .rjsp import RJSPResult, select_running_vjobs

__all__ = [
    "ConsolidationDecisionModule",
    "Decision",
    "BatchJob",
    "FCFSScheduler",
    "JobAllocation",
    "Schedule",
    "ffd_order",
    "ffd_place",
    "ffd_target_configuration",
    "RJSPResult",
    "select_running_vjobs",
]
