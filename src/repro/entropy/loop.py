"""The Entropy control loop (Section 3.1) driving the simulated cluster.

The loop implementation now lives in :mod:`repro.api.loop` as the
policy-agnostic :class:`~repro.api.loop.ControlLoop`; this module keeps the
historical entry point: :class:`EntropySimulation` is the loop wired to the
paper's sample policy (dynamic consolidation, Section 3.2), producing the
data behind Figures 11 and 13 and the 150-minute completion time of
Section 5.2.

New code should prefer the :class:`~repro.api.scenario.Scenario` facade::

    from repro import Scenario

    result = Scenario(nodes=nodes, workloads=workloads, policy="consolidation").run()
"""

from __future__ import annotations

from typing import Optional, Sequence

from .. import config
from ..api.loop import ControlLoop
from ..api.results import ContextSwitchRecord, RunResult, UtilizationSample
from ..model.node import Node
from ..sim.faults import FaultInjector
from ..sim.hypervisor import DEFAULT_HYPERVISOR, HypervisorModel
from ..workloads.traces import VJobWorkload

#: Historical name of the structured run result.
SimulationResult = RunResult

__all__ = [
    "ContextSwitchRecord",
    "EntropySimulation",
    "RunResult",
    "SimulationResult",
    "UtilizationSample",
]


class EntropySimulation(ControlLoop):
    """The control loop driven by the dynamic-consolidation policy.

    Kept for backward compatibility with the original hard-wired API; it is
    exactly ``ControlLoop(policy="consolidation")``.
    """

    def __init__(
        self,
        nodes: Sequence[Node],
        workloads: Sequence[VJobWorkload],
        period: float = config.DECISION_PERIOD_S,
        optimizer_timeout: float = 10.0,
        use_optimizer: bool = True,
        hypervisor: HypervisorModel = DEFAULT_HYPERVISOR,
        monitoring_delay: float = config.MONITORING_DELAY_S,
        max_time: float = 24 * 3600.0,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        super().__init__(
            nodes=nodes,
            workloads=workloads,
            policy="consolidation",
            policy_options={"period": period},
            period=period,
            optimizer_timeout=optimizer_timeout,
            use_optimizer=use_optimizer,
            hypervisor=hypervisor,
            monitoring_delay=monitoring_delay,
            max_time=max_time,
            fault_injector=fault_injector,
        )
