"""The Entropy control loop (Section 3.1) driving the simulated cluster.

Entropy iterates: (i) observe the CPU and memory consumption of the running
VMs through the monitoring service, (ii) run the decision module to compute
the vjob states of the next iteration, (iii) plan the cluster-wide context
switch towards a cheap viable configuration, and (iv) execute it with the
drivers.  The loop then waits for the monitoring information to refresh before
iterating again.

:class:`EntropySimulation` runs that loop in simulated time against the
:mod:`repro.sim` substrate and the NASGrid-like workloads, producing the data
behind Figures 11 and 13 and the 150-minute completion time of Section 5.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from .. import config
from ..core.context_switch import ClusterContextSwitch
from ..core.cost import plan_cost
from ..decision.consolidation import ConsolidationDecisionModule, Decision
from ..model.node import Node
from ..model.queue import VJobQueue
from ..model.vjob import VJob, VJobState
from ..model.vm import VMState
from ..sim.cluster import SimulatedCluster
from ..sim.executor import PlanExecutor
from ..sim.hypervisor import DEFAULT_HYPERVISOR, HypervisorModel
from ..sim.monitoring import MonitoringService
from ..workloads.traces import VJobWorkload


@dataclass(frozen=True)
class ContextSwitchRecord:
    """One cluster-wide context switch performed during a run (Figure 11)."""

    time: float
    cost: int
    duration: float
    migrations: int
    runs: int
    stops: int
    suspends: int
    resumes: int
    local_resumes: int
    used_fallback: bool = False

    @property
    def action_count(self) -> int:
        return self.migrations + self.runs + self.stops + self.suspends + self.resumes


@dataclass(frozen=True)
class UtilizationSample:
    """One point of the Figure 13 utilization curves."""

    time: float
    cpu_demand_units: int
    cpu_used_units: int
    cpu_capacity_units: int
    memory_used_mb: int

    @property
    def cpu_fraction(self) -> float:
        if self.cpu_capacity_units == 0:
            return 0.0
        return self.cpu_used_units / self.cpu_capacity_units

    @property
    def cpu_demand_fraction(self) -> float:
        """Demanded CPU over capacity; can exceed 1 on an overloaded cluster,
        like the 29/22 peak of Section 5.2."""
        if self.cpu_capacity_units == 0:
            return 0.0
        return self.cpu_demand_units / self.cpu_capacity_units


@dataclass
class SimulationResult:
    """Everything measured during one Entropy run."""

    makespan: float
    switches: list[ContextSwitchRecord] = field(default_factory=list)
    utilization: list[UtilizationSample] = field(default_factory=list)
    completion_times: dict[str, float] = field(default_factory=dict)

    @property
    def average_switch_duration(self) -> float:
        significant = [s.duration for s in self.switches if s.action_count]
        if not significant:
            return 0.0
        return sum(significant) / len(significant)

    @property
    def switch_count(self) -> int:
        return sum(1 for s in self.switches if s.action_count)


class EntropySimulation:
    """Simulate the Entropy loop over a set of NASGrid-like vjobs."""

    def __init__(
        self,
        nodes: Sequence[Node],
        workloads: Sequence[VJobWorkload],
        period: float = config.DECISION_PERIOD_S,
        optimizer_timeout: float = 10.0,
        use_optimizer: bool = True,
        hypervisor: HypervisorModel = DEFAULT_HYPERVISOR,
        monitoring_delay: float = config.MONITORING_DELAY_S,
        max_time: float = 24 * 3600.0,
    ) -> None:
        self.workloads = list(workloads)
        self.period = period
        self.max_time = max_time
        self.hypervisor = hypervisor

        self.cluster = SimulatedCluster(nodes=nodes)
        self.queue = VJobQueue()
        self.progress: dict[str, float] = {}
        self._submitted: set[str] = set()

        for workload in self.workloads:
            self.progress[workload.vjob.name] = 0.0
            for vm in workload.vjob.vms:
                self.cluster.add_vm(vm)

        self.decision_module = ConsolidationDecisionModule(period=period)
        self.switcher = ClusterContextSwitch(
            optimizer_timeout=optimizer_timeout, use_optimizer=use_optimizer
        )
        self.executor = PlanExecutor(hypervisor=hypervisor)
        self.monitoring = MonitoringService(
            demand_source=self._demand_source, refresh_delay=monitoring_delay
        )

    # ------------------------------------------------------------------ #
    # workload plumbing                                                   #
    # ------------------------------------------------------------------ #

    def _workload(self, vjob_name: str) -> VJobWorkload:
        for workload in self.workloads:
            if workload.vjob.name == vjob_name:
                return workload
        raise KeyError(vjob_name)

    def _demand_source(self, _time: float) -> dict[str, int]:
        """Current CPU demand of every VM, derived from the vjob progress."""
        demands: dict[str, int] = {}
        for workload in self.workloads:
            progress = self.progress[workload.vjob.name]
            for vm_name, trace in workload.traces.items():
                demands[vm_name] = trace.demand_at(progress)
        return demands

    def _submit_pending(self, now: float) -> None:
        for workload in self.workloads:
            vjob = workload.vjob
            if vjob.name not in self._submitted and vjob.submitted_at <= now:
                self.queue.submit(vjob)
                self._submitted.add(vjob.name)

    def _vjob_of_vm(self) -> dict[str, str]:
        mapping: dict[str, str] = {}
        for workload in self.workloads:
            for vm in workload.vjob.vm_names:
                mapping[vm] = workload.vjob.name
        return mapping

    # ------------------------------------------------------------------ #
    # state synchronisation                                               #
    # ------------------------------------------------------------------ #

    def _sync_vjob_states(self) -> None:
        """Align the life-cycle state of every submitted vjob with the state
        of its VMs in the cluster configuration."""
        configuration = self.cluster.configuration
        for vjob in self.queue.ordered():
            if vjob.is_terminated:
                continue
            states = {configuration.state_of(vm) for vm in vjob.vm_names}
            if states == {VMState.TERMINATED}:
                vjob.state = VJobState.TERMINATED
            elif VMState.RUNNING in states:
                vjob.state = VJobState.RUNNING
            elif VMState.SLEEPING in states:
                vjob.state = VJobState.SLEEPING
            else:
                vjob.state = VJobState.WAITING

    def _mark_finished_vjobs(self, now: float, result: SimulationResult) -> None:
        """Vjobs whose traces are exhausted signal Entropy to stop them."""
        for workload in self.workloads:
            vjob = workload.vjob
            if vjob.is_terminated or vjob.name not in self._submitted:
                continue
            if vjob.state is VJobState.RUNNING and workload.is_finished(
                self.progress[vjob.name]
            ):
                vjob.terminate()
                result.completion_times.setdefault(vjob.name, now)

    # ------------------------------------------------------------------ #
    # main loop                                                           #
    # ------------------------------------------------------------------ #

    def run(self) -> SimulationResult:
        result = SimulationResult(makespan=0.0)
        now = 0.0
        vjob_of_vm = self._vjob_of_vm()

        while now < self.max_time:
            self._submit_pending(now)

            # (i) observe
            observation = self.monitoring.observe(now, self.cluster.configuration)
            for vm_name, demand in observation.cpu_demands.items():
                self.cluster.update_demand(vm_name, demand)

            # finished applications ask Entropy to stop their vjob
            self._mark_finished_vjobs(now, result)

            if self.queue.all_terminated() and len(self._submitted) == len(
                self.workloads
            ):
                break

            # (ii) decide
            decision = self.decision_module.decide(
                self.cluster.configuration, self.queue, observation.cpu_demands
            )

            # (iii) plan and (iv) execute if something must change
            switch_duration = 0.0
            involved_nodes: set[str] = set()
            if self._needs_switch(decision):
                report = self.switcher.compute(
                    self.cluster.configuration,
                    decision.vm_states,
                    vjob_of_vm=vjob_of_vm,
                    fallback_target=decision.fallback_target,
                )
                execution = self.executor.execute(
                    report.plan, self.cluster, start_time=now
                )
                switch_duration = execution.duration
                involved_nodes = execution.involved_nodes()
                result.switches.append(
                    self._record_switch(now, report, execution)
                )
                self.monitoring.notify_reconfiguration(now + switch_duration)
                self._sync_vjob_states()

            # sample utilization after the switch
            result.utilization.append(self._sample(now))

            # advance simulated time and the progress of the running vjobs
            step = max(self.period, switch_duration)
            self._advance_progress(step, switch_duration, involved_nodes)
            now += step

        result.makespan = (
            max(result.completion_times.values()) if result.completion_times else now
        )
        return result

    # ------------------------------------------------------------------ #
    # helpers                                                             #
    # ------------------------------------------------------------------ #

    def _needs_switch(self, decision: Decision) -> bool:
        configuration = self.cluster.configuration
        for vm_name, state in decision.vm_states.items():
            if configuration.state_of(vm_name) is not state:
                return True
        return not configuration.is_viable()

    def _record_switch(self, now, report, execution) -> ContextSwitchRecord:
        from ..core.actions import ActionKind, Resume

        local_resumes = sum(
            1
            for item in execution.actions
            if isinstance(item.action, Resume) and item.action.is_local
        )
        return ContextSwitchRecord(
            time=now,
            cost=plan_cost(report.plan).total,
            duration=execution.duration,
            migrations=execution.count(ActionKind.MIGRATE),
            runs=execution.count(ActionKind.RUN),
            stops=execution.count(ActionKind.STOP),
            suspends=execution.count(ActionKind.SUSPEND),
            resumes=execution.count(ActionKind.RESUME),
            local_resumes=local_resumes,
            used_fallback=report.used_fallback,
        )

    def _sample(self, now: float) -> UtilizationSample:
        configuration = self.cluster.configuration
        capacity = configuration.total_capacity()
        usage = configuration.total_usage()
        demand_units = 0
        for workload in self.workloads:
            vjob = workload.vjob
            if vjob.name not in self._submitted or vjob.is_terminated:
                continue
            progress = self.progress[vjob.name]
            demand_units += sum(
                trace.demand_at(progress) for trace in workload.traces.values()
            )
        return UtilizationSample(
            time=now,
            cpu_demand_units=demand_units,
            cpu_used_units=usage.cpu,
            cpu_capacity_units=capacity.cpu,
            memory_used_mb=usage.memory,
        )

    def _advance_progress(
        self, step: float, switch_duration: float, involved_nodes: set[str]
    ) -> None:
        """Advance the execution of the running vjobs by ``step`` seconds.

        Running VMs hosted on nodes touched by the context switch are slowed
        down during the switch window (Section 2.3 measured a 1.3-1.5x factor);
        the remaining part of the interval progresses at full speed.
        """
        configuration = self.cluster.configuration
        factor = config.INTERFERENCE_FACTOR_LOCAL
        for workload in self.workloads:
            vjob = workload.vjob
            if vjob.state is not VJobState.RUNNING:
                continue
            slowed = False
            if switch_duration > 0 and involved_nodes:
                for vm_name in vjob.vm_names:
                    if configuration.location_of(vm_name) in involved_nodes:
                        slowed = True
                        break
            if slowed:
                effective = (step - switch_duration) + switch_duration / factor
            else:
                effective = step
            self.progress[vjob.name] += effective
