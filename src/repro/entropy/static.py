"""Static allocation baseline (the FCFS run of Section 5.2).

The paper compares its dynamic consolidation policy against the usual static
allocation: each vjob books one processing unit per VM plus its memory for its
whole duration, and a FCFS scheduler (with EASY backfilling) decides when each
vjob starts.  The booked resources stay assigned for the whole slot even while
the NASGrid tasks leave most VMs idle, which is exactly the waste Figure 13
exposes and the reason the 9-vjob campaign needs ~250 minutes instead of ~150.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..api.results import RunResult, UtilizationSample
from ..decision.fcfs import BatchJob, FCFSScheduler, Schedule
from ..model.node import Node
from ..workloads.traces import VJobWorkload


@dataclass
class StaticRunResult(RunResult):
    """Outcome of a static-allocation (FCFS) run.

    A :class:`~repro.api.results.RunResult` (so the analysis helpers compare
    it directly with control-loop runs) extended with the analytic
    :class:`~repro.decision.fcfs.Schedule` behind the Figure 12 diagram.
    ``schedule`` is keyword-only: the base class owns the positional slots,
    so legacy positional construction fails loudly instead of silently
    mis-assigning fields.
    """

    schedule: Optional[Schedule] = field(default=None, kw_only=True)

    def __post_init__(self) -> None:
        # Catches legacy v1.0 positional construction (schedule first),
        # which would otherwise silently land a Schedule in `makespan`.
        if not isinstance(self.makespan, (int, float)):
            raise TypeError(
                "StaticRunResult fields moved to RunResult order in v1.1; "
                "construct with keywords: StaticRunResult(schedule=..., "
                "makespan=...)"
            )


class StaticAllocationSimulator:
    """Simulate the FCFS + static allocation baseline on the same workloads."""

    def __init__(
        self,
        nodes: Sequence[Node],
        workloads: Sequence[VJobWorkload],
        backfilling: str = "easy",
        sample_period: float = 60.0,
    ) -> None:
        self.nodes = list(nodes)
        self.workloads = list(workloads)
        self.backfilling = backfilling
        self.sample_period = sample_period

    # ------------------------------------------------------------------ #

    def _as_batch_jobs(self) -> list[BatchJob]:
        jobs = []
        for workload in self.workloads:
            vjob = workload.vjob
            jobs.append(
                BatchJob(
                    name=vjob.name,
                    cpus=workload.peak_cpu_demand,
                    memory=vjob.total_memory,
                    duration=workload.duration,
                    submit_time=vjob.submitted_at,
                )
            )
        return jobs

    def run(self) -> StaticRunResult:
        total_cpus = sum(node.cpu_capacity for node in self.nodes)
        total_memory = sum(node.memory_capacity for node in self.nodes)
        scheduler = FCFSScheduler(
            total_cpus=total_cpus,
            total_memory=total_memory,
            backfilling=self.backfilling,  # type: ignore[arg-type]
        )
        schedule = scheduler.schedule(self._as_batch_jobs())

        completion = {
            allocation.job.name: allocation.end for allocation in schedule.allocations
        }
        result = StaticRunResult(
            schedule=schedule,
            makespan=schedule.makespan,
            policy="static",
            completion_times=completion,
        )
        result.utilization = self._utilization_series(schedule, total_cpus)
        return result

    # ------------------------------------------------------------------ #

    def _utilization_series(
        self, schedule: Schedule, total_cpus: int
    ) -> list[UtilizationSample]:
        """Sample the *actual* CPU demand and the booked memory over time.

        Under static allocation the booked CPUs equal the vjob's VM count, but
        the NASGrid tasks only use a fraction of them at any instant; the
        utilization the monitoring observes is therefore the demand of the
        traces, while the memory of every allocated VM stays claimed.
        """
        samples: list[UtilizationSample] = []
        horizon = schedule.makespan
        time = 0.0
        while time <= horizon:
            demand_units = 0
            used_units = 0
            memory_mb = 0
            for allocation in schedule.allocations:
                if allocation.start <= time < allocation.end:
                    workload = self._workload(allocation.job.name)
                    progress = time - allocation.start
                    demands = workload.demands_at(progress)
                    demand_units += sum(demands.values())
                    used_units += sum(demands.values())
                    memory_mb += allocation.job.memory
            samples.append(
                UtilizationSample(
                    time=time,
                    cpu_demand_units=demand_units,
                    cpu_used_units=used_units,
                    cpu_capacity_units=total_cpus,
                    memory_used_mb=memory_mb,
                )
            )
            time += self.sample_period
        return samples

    def _workload(self, name: str) -> VJobWorkload:
        for workload in self.workloads:
            if workload.vjob.name == name:
                return workload
        raise KeyError(name)
