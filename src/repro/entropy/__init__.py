"""The Entropy control loop and the static-allocation baseline.

The loop itself now lives in :mod:`repro.api`; this package keeps the
historical entry points (:class:`EntropySimulation`, the consolidation-driven
loop) and the analytic FCFS baseline (:class:`StaticAllocationSimulator`).
"""

from .loop import (
    ContextSwitchRecord,
    EntropySimulation,
    RunResult,
    SimulationResult,
    UtilizationSample,
)
from .static import StaticAllocationSimulator, StaticRunResult

__all__ = [
    "ContextSwitchRecord",
    "EntropySimulation",
    "RunResult",
    "SimulationResult",
    "UtilizationSample",
    "StaticAllocationSimulator",
    "StaticRunResult",
]
