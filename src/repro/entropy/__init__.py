"""The Entropy control loop and the static-allocation baseline."""

from .loop import (
    ContextSwitchRecord,
    EntropySimulation,
    SimulationResult,
    UtilizationSample,
)
from .static import StaticAllocationSimulator, StaticRunResult

__all__ = [
    "ContextSwitchRecord",
    "EntropySimulation",
    "SimulationResult",
    "UtilizationSample",
    "StaticAllocationSimulator",
    "StaticRunResult",
]
