"""Base machinery of the declarative placement-constraint catalog.

Every catalog constraint (:mod:`repro.constraints.catalog`) has **three
faces**, mirroring how Entropy's successor line (BtrPlace) structures its
constraint system:

1. a **compiler** — the constraint contributes to the CP model built by
   :mod:`repro.core.optimizer`: unary relations shrink the domains of the
   assignment variables (:meth:`PlacementConstraint.allowed_nodes`), n-ary
   relations inject dedicated propagators
   (:meth:`PlacementConstraint.cp_constraints`);
2. a **checker** — the constraint validates a concrete
   :class:`~repro.model.configuration.Configuration`
   (:meth:`PlacementConstraint.is_satisfied_by`, with a human-readable
   :meth:`PlacementConstraint.explain`) and, for stateful relations such as
   ``Root``, a transition between two configurations
   (:meth:`PlacementConstraint.is_transition_satisfied`);
3. a **repair hook** — when a node dies mid-run the control loop offers every
   constraint the chance to adapt (:meth:`PlacementConstraint.on_node_failure`)
   before fault-driven replanning re-applies the catalog to the survivors.

Heuristic packers (FFD / FCFS) cannot run a CP search, so constraints also
expose a greedy **candidate filter** (:meth:`PlacementConstraint.allows`)
answering "may VM *v* go on node *n* given the placement built so far?" —
see :mod:`repro.constraints.filtering`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cp.constraints import Constraint as CPConstraint
    from ..cp.variables import IntVar
    from ..model.configuration import Configuration


class PlacementConstraint:
    """Base class of every catalog constraint.

    Subclasses override the faces they participate in; every default is the
    *neutral* behaviour (no domain restriction, no propagator, always
    satisfied, keep the constraint unchanged on node failure).
    """

    #: VMs the relation is scoped to; empty for node-scoped constraints
    #: (``MaxOnline`` / ``RunningCapacity`` watch every running VM).
    vms: Tuple[str, ...] = ()

    #: Relational constraints couple the placement of several VMs (or of
    #: every VM against a node set) and therefore anchor all the involved
    #: nodes into a *single* placement zone when the cluster is decomposed
    #: into independent subproblems (:mod:`repro.scale.partition`).  Unary
    #: relations (``Ban``, ``Fence``, ``Root``) restrict each VM
    #: independently and never force zones to merge on their own.
    relational: bool = False

    #: Minimum number of *placed* group members for the relation to actually
    #: couple them.  ``Spread``/``Gather``/``Among`` are vacuous with a
    #: single placed member; ``Lonely`` interferes with every other VM from
    #: one member on.
    relational_min_members: int = 2

    #: True when :meth:`allowed_nodes` returns the *same* restriction for
    #: every member VM (``Ban`` complements, ``Fence`` node sets, ``Among``
    #: group unions depend only on the constraint itself), letting the
    #: partitioner compute it once per decomposition instead of once per
    #: member.  Stateful per-VM restrictions (``Root`` pins the VM's own
    #: host) must leave this False.
    uniform_restriction: bool = False

    # -- compiler face ---------------------------------------------------------

    def allowed_nodes(
        self,
        vm_name: str,
        node_names: Sequence[str],
        configuration: Optional["Configuration"] = None,
    ) -> Optional[Set[str]]:
        """Nodes on which ``vm_name`` may run, or ``None`` when the constraint
        does not restrict that VM individually.

        ``configuration`` is the observed configuration the optimizer plans
        from; stateful relations (``Root``) need it to resolve "the current
        host".  Returning an empty set marks the VM as unplaceable.
        """
        return None

    def cp_constraints(
        self,
        variables: Mapping[str, "IntVar"],
        node_index: Mapping[str, int],
    ) -> List["CPConstraint"]:
        """Solver constraints over the assignment variables of the running
        VMs (empty when the relation is purely unary).

        ``variables`` maps every running VM to its assignment variable;
        ``node_index`` maps node names to the variable values standing for
        them.
        """
        return []

    # -- checker face ----------------------------------------------------------

    def is_satisfied_by(self, configuration: "Configuration") -> bool:
        """Check the relation on a concrete configuration."""
        raise NotImplementedError

    def explain(self, configuration: "Configuration") -> Optional[str]:
        """Human-readable account of the violation, ``None`` when satisfied."""
        if self.is_satisfied_by(configuration):
            return None
        return f"{self.label} is violated"

    def is_transition_satisfied(
        self, reference: "Configuration", state: "Configuration"
    ) -> bool:
        """Check the relation *between* two configurations.

        ``reference`` is the configuration the plan started from and
        ``state`` an intermediate or final state.  Only stateful relations
        (``Root``) override this; static relations are transition-neutral.
        """
        return True

    def explain_transition(
        self, reference: "Configuration", state: "Configuration"
    ) -> Optional[str]:
        if self.is_transition_satisfied(reference, state):
            return None
        return f"{self.label} is violated by the transition"

    # -- greedy candidate filter ----------------------------------------------

    def allows(
        self,
        vm_name: str,
        node_name: str,
        trial: "Configuration",
        reference: Optional["Configuration"] = None,
    ) -> bool:
        """May ``vm_name`` be placed on ``node_name`` given the partial
        placement already committed to ``trial``?

        Used by the heuristic packers (FFD / FCFS) to stay constraint-aware
        without a CP search; ``reference`` is the observed configuration (for
        ``Root``).  The default accepts every candidate.
        """
        return True

    # -- repair hook -----------------------------------------------------------

    def on_node_failure(self, node_name: str) -> Optional["PlacementConstraint"]:
        """The constraint to enforce after ``node_name`` died.

        Return ``self`` (the default) to keep enforcing the relation
        unchanged, an adjusted instance to adapt it to the surviving fleet
        (e.g. an elastic ``Fence`` dropping the dead node), or ``None`` to
        retire the relation entirely.
        """
        return self

    # -- shared helpers --------------------------------------------------------

    @property
    def label(self) -> str:
        """Stable display identifier used in violation records and metrics."""
        return repr(self)

    def _running_locations(self, configuration: "Configuration") -> List[str]:
        """Hosts of the group's running VMs (VMs absent from the
        configuration or not running are skipped)."""
        locations = []
        for vm_name in self.vms:
            if not configuration.has_vm(vm_name):
                continue
            node = configuration.location_of(vm_name)
            if node is not None:
                locations.append(node)
        return locations

    def __repr__(self) -> str:
        return f"{type(self).__name__}({', '.join(self.vms)})"


class VMGroupConstraint(PlacementConstraint):
    """A constraint scoped to an explicit, non-empty group of VMs.

    ``vms`` keeps the declaration order (labels, repr); ``vm_set`` is the
    frozen membership view used on hot paths — ``allowed_nodes`` runs once
    per (VM, constraint) pair in every CP compilation *and* in the
    partitioner, so membership must not scan a tuple.
    """

    def __init__(self, vms: Iterable[str]):
        self.vms = tuple(vms)
        if not self.vms:
            raise ValueError("a placement constraint needs at least one VM")
        self.vm_set: frozenset[str] = frozenset(self.vms)


class NodeSetConstraint(PlacementConstraint):
    """A constraint scoped to an explicit, non-empty set of nodes."""

    def __init__(self, nodes: Iterable[str]):
        self.nodes: frozenset[str] = frozenset(nodes)
        if not self.nodes:
            raise ValueError(
                f"{type(self).__name__} requires at least one node"
            )

    def _sorted_nodes(self) -> List[str]:
        return sorted(self.nodes)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({', '.join(self._sorted_nodes())})"
