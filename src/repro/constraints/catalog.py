"""The declarative placement-constraint catalog.

Nine relations cover the operational vocabulary the Entropy / BtrPlace line
of work exposes to users, each constraining where the *running* VMs may be
hosted (sleeping, waiting and terminated VMs are never restricted):

* :class:`Spread` — pairwise distinct hosts (high availability);
* :class:`Gather` — one shared host (latency / page sharing);
* :class:`Ban` — a node set the VMs must avoid (maintenance);
* :class:`Fence` — a node set the VMs may not leave (licensing, zones);
* :class:`Among` — the whole group inside a single one of several node
  groups (keep a vjob within one rack / fault domain);
* :class:`Root` — running VMs may not be migrated (pinned services);
* :class:`MaxOnline` — at most ``maximum`` nodes of a set may host anything
  (power budget, hot spares kept idle);
* :class:`RunningCapacity` — at most ``maximum`` VMs running on a node set
  (license counting, blast-radius caps);
* :class:`Lonely` — the group's hosts are exclusive: no outside VM may share
  them (noisy-neighbour / security isolation).

Every relation implements the three faces documented in
:mod:`repro.constraints.base`: CP compilation, configuration/plan checking
and the node-failure repair hook, plus the greedy candidate filter used by
the heuristic packers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .base import NodeSetConstraint, PlacementConstraint, VMGroupConstraint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cp.constraints import Constraint as CPConstraint
    from ..cp.variables import IntVar
    from ..model.configuration import Configuration


def _cp() -> Any:
    """The CP propagator module, imported on first *compilation*.

    The import is deferred so the catalog's checker face — the one the
    standalone verifier (:mod:`repro.instances.verifier`) and the plan
    checker rely on — never loads the solver: only building a CP model
    (``cp_constraints``) pays for it, and Python caches the module after
    the first call.
    """
    from ..cp import constraints as cp_constraints

    return cp_constraints


def _involved(
    vms: Sequence[str], variables: Mapping[str, "IntVar"]
) -> List["IntVar"]:
    """Assignment variables of the group's VMs that are part of the model
    (VMs that are not being placed have no variable)."""
    return [variables[vm] for vm in vms if vm in variables]


class Spread(VMGroupConstraint):
    """The running VMs of the group are hosted on pairwise distinct nodes.

    ``collocation_nodes`` (optional) lists nodes where collocation remains
    acceptable — e.g. a chassis with internal redundancy — compiled into an
    :class:`~repro.cp.constraints.AllDifferentExcept` propagator.
    """

    relational = True

    def __init__(self, vms: Iterable[str], collocation_nodes: Iterable[str] = ()):
        super().__init__(vms)
        self.collocation_nodes: frozenset[str] = frozenset(collocation_nodes)

    def cp_constraints(
        self,
        variables: Mapping[str, "IntVar"],
        node_index: Mapping[str, int],
    ) -> List[CPConstraint]:
        involved = _involved(self.vms, variables)
        if len(involved) < 2:
            return []
        cp = _cp()
        if self.collocation_nodes:
            excepted = {
                node_index[name]
                for name in self.collocation_nodes
                if name in node_index
            }
            return [cp.AllDifferentExcept(involved, excepted)]
        if len(involved) == 2:
            return [cp.NotEqual(involved[0], involved[1])]
        return [cp.AllDifferent(involved)]

    def is_satisfied_by(self, configuration: "Configuration") -> bool:
        locations = [
            node
            for node in self._running_locations(configuration)
            if node not in self.collocation_nodes
        ]
        return len(locations) == len(set(locations))

    def explain(self, configuration: "Configuration") -> Optional[str]:
        locations = [
            node
            for node in self._running_locations(configuration)
            if node not in self.collocation_nodes
        ]
        shared = sorted({n for n in locations if locations.count(n) > 1})
        if not shared:
            return None
        return f"{self.label}: nodes {shared} host several group VMs"

    def allows(
        self,
        vm_name: str,
        node_name: str,
        trial: "Configuration",
        reference: Optional["Configuration"] = None,
    ) -> bool:
        if vm_name not in self.vm_set or node_name in self.collocation_nodes:
            return True
        for other in self.vms:
            if other == vm_name or not trial.has_vm(other):
                continue
            if trial.location_of(other) == node_name:
                return False
        return True


class Gather(VMGroupConstraint):
    """The running VMs of the group share a single hosting node."""

    relational = True

    def cp_constraints(
        self,
        variables: Mapping[str, "IntVar"],
        node_index: Mapping[str, int],
    ) -> List[CPConstraint]:
        involved = _involved(self.vms, variables)
        if len(involved) < 2:
            return []
        return [_cp().AllEqual(involved)]

    def is_satisfied_by(self, configuration: "Configuration") -> bool:
        return len(set(self._running_locations(configuration))) <= 1

    def explain(self, configuration: "Configuration") -> Optional[str]:
        locations = sorted(set(self._running_locations(configuration)))
        if len(locations) <= 1:
            return None
        return f"{self.label}: group scattered over nodes {locations}"

    def allows(
        self,
        vm_name: str,
        node_name: str,
        trial: "Configuration",
        reference: Optional["Configuration"] = None,
    ) -> bool:
        if vm_name not in self.vm_set:
            return True
        for other in self.vms:
            if other == vm_name or not trial.has_vm(other):
                continue
            location = trial.location_of(other)
            if location is not None and location != node_name:
                return False
        return True


class Ban(VMGroupConstraint):
    """The VMs of the group may never run on the banned nodes."""

    uniform_restriction = True

    def __init__(self, vms: Iterable[str], nodes: Iterable[str]):
        super().__init__(vms)
        self.nodes: frozenset[str] = frozenset(nodes)
        if not self.nodes:
            raise ValueError("Ban requires at least one node")

    def allowed_nodes(
        self,
        vm_name: str,
        node_names: Sequence[str],
        configuration: Optional["Configuration"] = None,
    ) -> Optional[Set[str]]:
        if vm_name not in self.vm_set:
            return None
        return {n for n in node_names if n not in self.nodes}

    def is_satisfied_by(self, configuration: "Configuration") -> bool:
        return not any(
            node in self.nodes for node in self._running_locations(configuration)
        )

    def explain(self, configuration: "Configuration") -> Optional[str]:
        offending = sorted(
            {
                node
                for node in self._running_locations(configuration)
                if node in self.nodes
            }
        )
        if not offending:
            return None
        return f"{self.label}: banned nodes {offending} host group VMs"

    def allows(
        self,
        vm_name: str,
        node_name: str,
        trial: "Configuration",
        reference: Optional["Configuration"] = None,
    ) -> bool:
        return vm_name not in self.vm_set or node_name not in self.nodes

    def __repr__(self) -> str:
        return (
            f"Ban({', '.join(self.vms)} | {', '.join(sorted(self.nodes))})"
        )


class Fence(VMGroupConstraint):
    """The VMs of the group may only run inside the given node set.

    ``elastic=True`` opts into availability-over-intent repair: when a fence
    node dies, the surviving fence nodes take over, and when the whole fence
    is gone the constraint retires so the VMs can restart anywhere.  The
    default (strict) fence keeps its dead nodes — the VMs stay unplaceable
    until the fence is repaired, which is the conservative reading of the
    operator's intent.
    """

    uniform_restriction = True

    def __init__(self, vms: Iterable[str], nodes: Iterable[str], elastic: bool = False):
        super().__init__(vms)
        self.nodes: frozenset[str] = frozenset(nodes)
        if not self.nodes:
            raise ValueError("Fence requires at least one node")
        self.elastic = elastic

    def allowed_nodes(
        self,
        vm_name: str,
        node_names: Sequence[str],
        configuration: Optional["Configuration"] = None,
    ) -> Optional[Set[str]]:
        if vm_name not in self.vm_set:
            return None
        return {n for n in node_names if n in self.nodes}

    def is_satisfied_by(self, configuration: "Configuration") -> bool:
        return all(
            node in self.nodes for node in self._running_locations(configuration)
        )

    def explain(self, configuration: "Configuration") -> Optional[str]:
        outside = sorted(
            {
                node
                for node in self._running_locations(configuration)
                if node not in self.nodes
            }
        )
        if not outside:
            return None
        return f"{self.label}: group VMs escaped to nodes {outside}"

    def allows(
        self,
        vm_name: str,
        node_name: str,
        trial: "Configuration",
        reference: Optional["Configuration"] = None,
    ) -> bool:
        return vm_name not in self.vm_set or node_name in self.nodes

    def on_node_failure(self, node_name: str) -> Optional[PlacementConstraint]:
        if not self.elastic or node_name not in self.nodes:
            return self
        survivors = self.nodes - {node_name}
        if not survivors:
            return None
        return Fence(self.vms, survivors, elastic=True)

    def __repr__(self) -> str:
        return (
            f"Fence({', '.join(self.vms)} | {', '.join(sorted(self.nodes))})"
        )


class Among(VMGroupConstraint):
    """The running VMs of the group stay within a *single* one of the given
    node groups (e.g. one rack, one fault domain — whichever, but together)."""

    relational = True
    uniform_restriction = True

    def __init__(self, vms: Iterable[str], groups: Sequence[Iterable[str]]):
        super().__init__(vms)
        self.groups: Tuple[frozenset[str], ...] = tuple(
            frozenset(group) for group in groups
        )
        if not self.groups:
            raise ValueError("Among requires at least one node group")
        if any(not group for group in self.groups):
            raise ValueError("Among groups must be non-empty")

    def allowed_nodes(
        self,
        vm_name: str,
        node_names: Sequence[str],
        configuration: Optional["Configuration"] = None,
    ) -> Optional[Set[str]]:
        if vm_name not in self.vm_set:
            return None
        union: Set[str] = set()
        for group in self.groups:
            union |= group
        return {n for n in node_names if n in union}

    def cp_constraints(
        self,
        variables: Mapping[str, "IntVar"],
        node_index: Mapping[str, int],
    ) -> List[CPConstraint]:
        involved = _involved(self.vms, variables)
        if len(involved) < 2:
            return []
        mapped = [
            {node_index[name] for name in group if name in node_index}
            for group in self.groups
        ]
        mapped = [group for group in mapped if group]
        if len(mapped) < 2:
            # Zero or one live group: the unary union restriction already
            # captures the whole relation.
            return []
        return [_cp().Among(involved, mapped)]

    def is_satisfied_by(self, configuration: "Configuration") -> bool:
        locations = set(self._running_locations(configuration))
        if not locations:
            return True
        return any(locations <= group for group in self.groups)

    def explain(self, configuration: "Configuration") -> Optional[str]:
        if self.is_satisfied_by(configuration):
            return None
        locations = sorted(set(self._running_locations(configuration)))
        return f"{self.label}: hosts {locations} straddle the node groups"

    def allows(
        self,
        vm_name: str,
        node_name: str,
        trial: "Configuration",
        reference: Optional["Configuration"] = None,
    ) -> bool:
        if vm_name not in self.vm_set:
            return True
        placed = {
            trial.location_of(other)
            for other in self.vms
            if other != vm_name and trial.has_vm(other)
        }
        placed.discard(None)
        needed = {node_name, *placed}
        return any(needed <= group for group in self.groups)

    def __repr__(self) -> str:
        rendered = " / ".join(
            "{" + ", ".join(sorted(group)) + "}" for group in self.groups
        )
        return f"Among({', '.join(self.vms)} | {rendered})"


class Root(VMGroupConstraint):
    """The running VMs of the group may not be migrated: each stays on the
    node hosting it when planning starts.

    The relation is *stateful*: a standalone configuration can never violate
    it, but a plan (or a live run) does as soon as a pinned VM changes host
    while running.  A VM knocked back to Waiting by a crash is free to boot
    anywhere — the pin re-attaches to its new host, which is exactly the
    repair behaviour fault-driven replanning needs.
    """

    def allowed_nodes(
        self,
        vm_name: str,
        node_names: Sequence[str],
        configuration: Optional["Configuration"] = None,
    ) -> Optional[Set[str]]:
        if configuration is None or vm_name not in self.vm_set:
            return None
        if not configuration.has_vm(vm_name):
            return None
        location = configuration.location_of(vm_name)
        if location is None:
            return None
        return {location}

    def is_satisfied_by(self, configuration: "Configuration") -> bool:
        return True

    def is_transition_satisfied(
        self, reference: "Configuration", state: "Configuration"
    ) -> bool:
        return not self._moved(reference, state)

    def explain_transition(
        self, reference: "Configuration", state: "Configuration"
    ) -> Optional[str]:
        moved = self._moved(reference, state)
        if not moved:
            return None
        return f"{self.label}: pinned VMs {moved} were migrated"

    def _moved(
        self, reference: "Configuration", state: "Configuration"
    ) -> List[str]:
        moved = []
        for vm_name in self.vms:
            if not (reference.has_vm(vm_name) and state.has_vm(vm_name)):
                continue
            before = reference.location_of(vm_name)
            after = state.location_of(vm_name)
            if before is not None and after is not None and before != after:
                moved.append(vm_name)
        return moved

    def allows(
        self,
        vm_name: str,
        node_name: str,
        trial: "Configuration",
        reference: Optional["Configuration"] = None,
    ) -> bool:
        if reference is None or vm_name not in self.vm_set:
            return True
        if not reference.has_vm(vm_name):
            return True
        location = reference.location_of(vm_name)
        return location is None or location == node_name


class MaxOnline(NodeSetConstraint):
    """At most ``maximum`` nodes of the set may host running VMs; the others
    must stay empty (power capping, hot spares kept genuinely idle)."""

    relational = True

    def __init__(self, nodes: Iterable[str], maximum: int):
        super().__init__(nodes)
        if maximum < 0:
            raise ValueError("MaxOnline needs a non-negative maximum")
        self.maximum = maximum

    def cp_constraints(
        self,
        variables: Mapping[str, "IntVar"],
        node_index: Mapping[str, int],
    ) -> List[CPConstraint]:
        everyone = list(variables.values())
        watched = {node_index[n] for n in self.nodes if n in node_index}
        if not everyone or not watched:
            return []
        return [_cp().UsedValuesAtMost(everyone, watched, self.maximum)]

    def _used_nodes(
        self, configuration: "Configuration", ignoring: Optional[str] = None
    ) -> Set[str]:
        """Watched nodes currently hosting running VMs (``ignoring`` skips
        one VM's own contribution — a re-placement probe must not count the
        very VM being moved)."""
        return {
            node
            for vm, node in configuration.iter_placement()
            if node in self.nodes and vm != ignoring
        }

    def is_satisfied_by(self, configuration: "Configuration") -> bool:
        return len(self._used_nodes(configuration)) <= self.maximum

    def explain(self, configuration: "Configuration") -> Optional[str]:
        used = self._used_nodes(configuration)
        if len(used) <= self.maximum:
            return None
        return (
            f"{self.label}: {len(used)} nodes of the set are hosting VMs "
            f"({sorted(used)}), maximum is {self.maximum}"
        )

    def allows(
        self,
        vm_name: str,
        node_name: str,
        trial: "Configuration",
        reference: Optional["Configuration"] = None,
    ) -> bool:
        if node_name not in self.nodes:
            return True
        used = self._used_nodes(trial, ignoring=vm_name)
        return node_name in used or len(used) < self.maximum

    def __repr__(self) -> str:
        return (
            f"MaxOnline({', '.join(self._sorted_nodes())} <= {self.maximum})"
        )


class RunningCapacity(NodeSetConstraint):
    """At most ``maximum`` VMs may run on the node set overall (license
    seats, blast-radius caps)."""

    relational = True

    def __init__(self, nodes: Iterable[str], maximum: int):
        super().__init__(nodes)
        if maximum < 0:
            raise ValueError("RunningCapacity needs a non-negative maximum")
        self.maximum = maximum

    def cp_constraints(
        self,
        variables: Mapping[str, "IntVar"],
        node_index: Mapping[str, int],
    ) -> List[CPConstraint]:
        everyone = list(variables.values())
        watched = {node_index[n] for n in self.nodes if n in node_index}
        if not everyone or not watched:
            return []
        return [_cp().CountInValuesAtMost(everyone, watched, self.maximum)]

    def _running_count(
        self, configuration: "Configuration", ignoring: Optional[str] = None
    ) -> int:
        """Running VMs hosted on the watched set (``ignoring`` skips one
        VM's own contribution — see :meth:`MaxOnline._used_nodes`)."""
        return sum(
            1
            for vm, node in configuration.iter_placement()
            if node in self.nodes and vm != ignoring
        )

    def is_satisfied_by(self, configuration: "Configuration") -> bool:
        return self._running_count(configuration) <= self.maximum

    def explain(self, configuration: "Configuration") -> Optional[str]:
        count = self._running_count(configuration)
        if count <= self.maximum:
            return None
        return (
            f"{self.label}: {count} VMs run on the node set, "
            f"maximum is {self.maximum}"
        )

    def allows(
        self,
        vm_name: str,
        node_name: str,
        trial: "Configuration",
        reference: Optional["Configuration"] = None,
    ) -> bool:
        if node_name not in self.nodes:
            return True
        return self._running_count(trial, ignoring=vm_name) < self.maximum

    def __repr__(self) -> str:
        return (
            f"RunningCapacity({', '.join(self._sorted_nodes())} "
            f"<= {self.maximum})"
        )


class Lonely(VMGroupConstraint):
    """The group's hosting nodes are exclusive: no VM outside the group may
    run on a node hosting a group VM (noisy-neighbour / security isolation)."""

    relational = True
    relational_min_members = 1

    def cp_constraints(
        self,
        variables: Mapping[str, "IntVar"],
        node_index: Mapping[str, int],
    ) -> List[CPConstraint]:
        inside = _involved(self.vms, variables)
        members = set(self.vms)
        outside = [var for vm, var in variables.items() if vm not in members]
        if not inside or not outside:
            return []
        return [_cp().DisjointValues(inside, outside)]

    def _shared_nodes(self, configuration: "Configuration") -> Set[str]:
        members = set(self.vms)
        group_nodes = set(self._running_locations(configuration))
        other_nodes = {
            node
            for vm, node in configuration.iter_placement()
            if vm not in members
        }
        return group_nodes & other_nodes

    def is_satisfied_by(self, configuration: "Configuration") -> bool:
        return not self._shared_nodes(configuration)

    def explain(self, configuration: "Configuration") -> Optional[str]:
        shared = self._shared_nodes(configuration)
        if not shared:
            return None
        return (
            f"{self.label}: nodes {sorted(shared)} host both group and "
            "outside VMs"
        )

    def allows(
        self,
        vm_name: str,
        node_name: str,
        trial: "Configuration",
        reference: Optional["Configuration"] = None,
    ) -> bool:
        members = set(self.vms)
        hosted = {
            vm for vm, node in trial.iter_placement() if node == node_name
        }
        if vm_name in members:
            return all(vm in members for vm in hosted)
        return not (hosted & members)
