"""Independent checking of placement constraints, end to end.

The checker is the second face of the catalog: it never trusts the CP
compilation and re-validates constraints against concrete states —

* :func:`check_configuration` — one configuration, e.g. the optimizer's
  target or the live cluster after a switch;
* :func:`check_plan` — **every intermediate state** of a
  :class:`~repro.core.plan.ReconfigurationPlan` (continuous satisfaction at
  pool granularity: the state after each pool completes, plus the stateful
  transition checks such as ``Root``'s no-migrate pin against the plan's
  source);
* :func:`violated_constraints` — the historical boolean variant kept for the
  optimizer's fallback path (:mod:`repro.core.placement` re-exports it as
  ``check_constraints``).

The solver-side compilation and this checker are deliberately independent
implementations of the same semantics; the Hypothesis suite
(``tests/properties/test_constraint_properties.py``) holds them against each
other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence

from .base import PlacementConstraint

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a core import cycle)
    from ..core.plan import ReconfigurationPlan
    from ..model.configuration import Configuration


@dataclass(frozen=True)
class Violation:
    """One constraint broken by a configuration or a plan stage.

    ``stage`` is ``None`` for a standalone configuration check; for a plan it
    is the number of pools already applied (``1`` = after the first pool, and
    the last stage is the plan's final state).
    """

    constraint: str
    message: str
    stage: Optional[int] = None

    def __str__(self) -> str:
        prefix = "" if self.stage is None else f"[after pool {self.stage}] "
        return f"{prefix}{self.message}"


def violated_constraints(
    configuration: "Configuration",
    constraints: Sequence[PlacementConstraint],
) -> List[PlacementConstraint]:
    """The constraints violated by ``configuration`` (boolean face)."""
    return [c for c in constraints if not c.is_satisfied_by(configuration)]


def check_configuration(
    configuration: "Configuration",
    constraints: Sequence[PlacementConstraint],
    stage: Optional[int] = None,
) -> List[Violation]:
    """Validate one configuration; returns one :class:`Violation` per broken
    constraint (empty when everything holds)."""
    violations: List[Violation] = []
    for constraint in constraints:
        if constraint.is_satisfied_by(configuration):
            continue
        message = (
            constraint.explain(configuration) or f"{constraint.label} is violated"
        )
        violations.append(
            Violation(constraint=constraint.label, message=message, stage=stage)
        )
    return violations


def plan_stages(plan: "ReconfigurationPlan") -> Iterator["Configuration"]:
    """The source configuration followed by the state after each pool.

    Stages follow the shared pool end-state convention
    (:func:`repro.core.plan.apply_pool_effects`) without the feasibility
    validation of :meth:`~repro.core.plan.ReconfigurationPlan.apply` — the
    checker's job is constraint satisfaction, not feasibility.
    """
    from ..core.plan import apply_pool_effects  # deferred: core imports us

    current = plan.source.copy()
    yield current
    for pool in plan.pools:
        stage = current.copy()
        apply_pool_effects(stage, pool)
        current = stage
        yield current


def check_plan(
    plan: "ReconfigurationPlan",
    constraints: Sequence[PlacementConstraint],
    include_source: bool = False,
) -> List[Violation]:
    """Validate every intermediate state of ``plan`` (continuous
    satisfaction).

    Stage ``k`` (``k >= 1``) is the configuration once the first ``k`` pools
    completed; stateful relations are additionally checked as transitions
    from the plan's source.  ``include_source`` also reports the violations
    already present *before* the plan runs — off by default, because a plan
    whose purpose is to repair a violation necessarily starts violated.
    """
    if not constraints:
        return []
    violations: List[Violation] = []
    stages = iter(plan_stages(plan))
    source = next(stages)
    if include_source:
        violations.extend(check_configuration(source, constraints, stage=0))
    for stage_index, state in enumerate(stages, start=1):
        violations.extend(
            check_configuration(state, constraints, stage=stage_index)
        )
        for constraint in constraints:
            if constraint.is_transition_satisfied(source, state):
                continue
            message = (
                constraint.explain_transition(source, state)
                or f"{constraint.label} is violated by the transition"
            )
            violations.append(
                Violation(
                    constraint=constraint.label,
                    message=message,
                    stage=stage_index,
                )
            )
    return violations
