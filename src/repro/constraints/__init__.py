"""Declarative placement constraints, compiled into the CP core and checked
end to end.

The subsystem has three faces (see :mod:`repro.constraints.base`):

1. **compile** — each relation contributes unary domain restrictions and
   dedicated propagators to the optimizer's CP model
   (:mod:`repro.core.optimizer`);
2. **check** — an independent checker validates configurations and every
   intermediate state of a reconfiguration plan
   (:mod:`repro.constraints.checker`), wired into the planner, the executor
   and the control loop;
3. **repair** — on a node failure the control loop offers every constraint a
   repair hook before replanning the crashed vjobs onto the survivors.

Quickstart::

    from repro import Scenario
    from repro.constraints import Ban, Spread

    result = (
        Scenario(nodes=nodes, workloads=workloads, policy="consolidation")
        .with_constraints(Spread(["db.0", "db.1"]), Ban(["db.0"], ["node-3"]))
        .run()
    )
    print(result.constraint_violations)  # per-constraint violation timeline

The full catalog reference lives in ``docs/SCENARIOS.md``.
"""

from .base import NodeSetConstraint, PlacementConstraint, VMGroupConstraint
from .catalog import (
    Among,
    Ban,
    Fence,
    Gather,
    Lonely,
    MaxOnline,
    Root,
    RunningCapacity,
    Spread,
)
from .checker import (
    Violation,
    check_configuration,
    check_plan,
    plan_stages,
    violated_constraints,
)
from .filtering import CandidateFilter

#: Every relation of the catalog, in documentation order.
CATALOG = (
    Spread,
    Gather,
    Ban,
    Fence,
    Among,
    Root,
    MaxOnline,
    RunningCapacity,
    Lonely,
)

__all__ = [
    "PlacementConstraint",
    "VMGroupConstraint",
    "NodeSetConstraint",
    "Spread",
    "Gather",
    "Ban",
    "Fence",
    "Among",
    "Root",
    "MaxOnline",
    "RunningCapacity",
    "Lonely",
    "Violation",
    "check_configuration",
    "check_plan",
    "plan_stages",
    "violated_constraints",
    "CandidateFilter",
    "CATALOG",
]
