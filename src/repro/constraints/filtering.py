"""Greedy candidate filtering — constraint awareness for heuristic packers.

The CP optimizer enforces the catalog through compiled propagators, but the
FFD and FCFS decision modules place VMs greedily, one node probe at a time.
:class:`CandidateFilter` adapts a constraint set to that probe loop: it
answers "may this VM go on this node, given the placement committed so far?"
by delegating to each constraint's :meth:`~repro.constraints.base
.PlacementConstraint.allows` face.

The filter is *incomplete* by construction (a greedy packer cannot backtrack
out of a dead end the way the solver does), but it is *sound*: every
placement it accepts satisfies the constraints it was built from, which is
what keeps the FFD fallback targets and the FCFS admission trials honest.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Tuple

from .base import PlacementConstraint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..model.configuration import Configuration


class CandidateFilter:
    """Constraint-aware node filtering for greedy placement loops."""

    def __init__(
        self,
        constraints: Sequence[PlacementConstraint],
        reference: Optional["Configuration"] = None,
    ):
        self._constraints: Tuple[PlacementConstraint, ...] = tuple(constraints)
        #: Observed configuration, needed by stateful relations (``Root``).
        self._reference = reference

    @property
    def constraints(self) -> Tuple[PlacementConstraint, ...]:
        return self._constraints

    def with_reference(
        self, reference: Optional["Configuration"]
    ) -> "CandidateFilter":
        """The same filter bound to another observed configuration."""
        return CandidateFilter(self._constraints, reference)

    def __bool__(self) -> bool:
        return bool(self._constraints)

    def __call__(
        self, vm_name: str, node_name: str, trial: "Configuration"
    ) -> bool:
        """May ``vm_name`` be placed on ``node_name`` in ``trial``?"""
        return all(
            constraint.allows(vm_name, node_name, trial, self._reference)
            for constraint in self._constraints
        )
