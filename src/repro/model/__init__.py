"""Cluster model: nodes, VMs, vjobs, configurations and their viability."""

from .columns import BACKEND_ENV, LoadColumns, numpy_enabled
from .configuration import Configuration, ViabilityViolation
from .errors import (
    DuplicateElementError,
    ExecutionError,
    InconsistencyError,
    InvalidStateTransition,
    ModelError,
    NonViableConfigurationError,
    NoPivotAvailableError,
    PlanningError,
    ReproError,
    SolverError,
    UnknownNodeError,
    UnknownVMError,
)
from .node import Node, NodeRole, make_working_nodes
from .reference import NaiveConfiguration
from .queue import VJobQueue
from .resources import ResourceVector, ZERO
from .vjob import VJob, VJobState, index_vms_by_vjob
from .vm import VirtualMachine, VMImage, VMState

__all__ = [
    "BACKEND_ENV",
    "LoadColumns",
    "numpy_enabled",
    "Configuration",
    "NaiveConfiguration",
    "ViabilityViolation",
    "DuplicateElementError",
    "ExecutionError",
    "InconsistencyError",
    "InvalidStateTransition",
    "ModelError",
    "NonViableConfigurationError",
    "NoPivotAvailableError",
    "PlanningError",
    "ReproError",
    "SolverError",
    "UnknownNodeError",
    "UnknownVMError",
    "Node",
    "NodeRole",
    "make_working_nodes",
    "VJobQueue",
    "ResourceVector",
    "ZERO",
    "VJob",
    "VJobState",
    "index_vms_by_vjob",
    "VirtualMachine",
    "VMImage",
    "VMState",
]
