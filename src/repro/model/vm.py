"""Virtual machines.

A VM is the unit the cluster-wide context switch acts upon: it can be run,
stopped, migrated, suspended to disk and resumed.  Its *demand* is what the
viability constraint of Section 3.2 checks against node capacities: the memory
allocated to the VM and the number of processing units it currently needs
(an entire unit while the embedded task computes, zero otherwise).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from .resources import ResourceVector


class VMState(enum.Enum):
    """Individual state of a VM (the vjob state is derived from its VMs)."""

    WAITING = "waiting"      #: defined but never started
    RUNNING = "running"      #: active on a working node
    SLEEPING = "sleeping"    #: suspended to disk
    TERMINATED = "terminated"


@dataclass(frozen=True)
class VirtualMachine:
    """An immutable description of a VM.

    Parameters
    ----------
    name:
        Unique identifier.
    memory:
        Memory allocated to the VM in MB; this drives the cost model of
        Table 1 and the duration of migrate/suspend/resume actions.
    cpu_demand:
        Number of processing units the VM currently requires (0 when idle,
        typically 1 while its NASGrid task computes).
    vjob:
        Name of the vjob the VM belongs to (empty for standalone VMs).
    """

    name: str
    memory: int
    cpu_demand: int = 0
    vjob: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a VM requires a non-empty name")
        if self.memory <= 0:
            raise ValueError(f"VM {self.name!r}: memory must be positive")
        if self.cpu_demand < 0:
            raise ValueError(f"VM {self.name!r}: cpu_demand must be non-negative")

    @property
    def demand(self) -> ResourceVector:
        """Resource demand of the VM while it is running."""
        return ResourceVector(self.cpu_demand, self.memory)

    def with_cpu_demand(self, cpu_demand: int) -> "VirtualMachine":
        """Return a copy of the VM with an updated CPU demand."""
        return replace(self, cpu_demand=cpu_demand)

    def __str__(self) -> str:
        return self.name


@dataclass
class VMImage:
    """The persistent image produced by a ``suspend`` action.

    The location matters: resuming on the node that holds the image is a
    *local* resume, resuming anywhere else requires moving the image first and
    costs twice as much (Table 1).
    """

    vm_name: str
    node_name: str
    size_mb: int
    created_at: float = field(default=0.0)

    def is_local_to(self, node_name: str) -> bool:
        return self.node_name == node_name
