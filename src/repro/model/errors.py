"""Exceptions raised by the cluster model and the planning layers."""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class ModelError(ReproError):
    """Invalid manipulation of the cluster model."""


class UnknownVMError(ModelError):
    """A VM referenced by name is not part of the configuration."""

    def __init__(self, name: str):
        super().__init__(f"unknown VM {name!r}")
        self.name = name


class UnknownNodeError(ModelError):
    """A node referenced by name is not part of the configuration."""

    def __init__(self, name: str):
        super().__init__(f"unknown node {name!r}")
        self.name = name


class DuplicateElementError(ModelError):
    """A VM or node with the same name is already registered."""


class InvalidStateTransition(ModelError):
    """A vjob or VM was asked to perform an illegal life-cycle transition."""

    def __init__(self, subject: str, current: str, requested: str):
        super().__init__(
            f"{subject}: illegal transition from {current!r} to {requested!r}"
        )
        self.subject = subject
        self.current = current
        self.requested = requested


class NonViableConfigurationError(ReproError):
    """A configuration violates a node CPU or memory capacity."""


class PlanningError(ReproError):
    """The reconfiguration planner could not build a feasible plan."""


class NoPivotAvailableError(PlanningError):
    """A cycle of inter-dependent migrations cannot be broken: no node can act
    as a pivot for any VM of the cycle."""


class SolverError(ReproError):
    """The constraint solver was used incorrectly."""


class InconsistencyError(SolverError):
    """Constraint propagation wiped out a variable domain."""


class ExecutionError(ReproError):
    """A driver failed to apply an action on the (simulated) cluster."""
