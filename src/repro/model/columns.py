"""Columnar per-node load/capacity storage with O(changed) dirty tracking.

:class:`LoadColumns` is the indexed core behind
:class:`~repro.model.configuration.Configuration`: node names are interned
into dense integer slots, and the per-node CPU/memory usage and capacity live
in parallel growable columns (numpy arrays when numpy is importable, plain
Python lists otherwise — the pure-python fallback keeps the model layer
dependency-free).  Every mutation is an O(1) slot update that also records
the slot in a *dirty set*; the viability check then has two faces:

* :meth:`overloaded_full` — scan every live slot (vectorized under numpy)
  and resynchronize the cached overloaded set;
* :meth:`overloaded_dirty` — O(changed): re-examine only the dirty slots,
  update the cached overloaded set, and return it.

Both faces return the same answer by construction — the Hypothesis suite
(``tests/properties/test_configuration_equivalence.py``) holds them against
each other and against the retained naive dict-walk oracle
(:class:`repro.model.reference.NaiveConfiguration`).

Slots are never reused: a dropped node tombstones its slot (capacity and
usage zeroed, removed from the name map and the cached sets) and a node
re-added under the same name gets a fresh, strictly larger slot.  Slot order
therefore always matches the configuration's node-registration order, which
is what keeps the incremental violation list byte-identical to the full
scan's.

Set ``REPRO_MODEL_BACKEND=python`` to force the list backend even when numpy
is installed (exercised by the differential tests)."""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Set, Tuple

try:  # pragma: no cover - exercised via both backends in the test-suite
    import numpy as _np
except Exception:  # pragma: no cover - numpy is a declared dependency
    _np = None  # type: ignore[assignment]

#: Environment switch forcing the pure-python backend (differential tests
#: run the suite under both; operators can set it to rule numpy out when
#: debugging).
BACKEND_ENV = "REPRO_MODEL_BACKEND"

#: Initial slot capacity of a fresh column set; doubled on demand so interning
#: a 50k-node fleet costs O(n) amortized.
_INITIAL_CAPACITY = 16


def numpy_enabled() -> bool:
    """True when the numpy backend is active (importable and not disabled
    via ``REPRO_MODEL_BACKEND=python``)."""
    return _np is not None and os.environ.get(BACKEND_ENV, "") != "python"


class LoadColumns:
    """Interned per-node load/capacity columns plus dirty/overload caches."""

    __slots__ = (
        "_numpy",
        "_index",
        "_names",
        "_size",
        "_cpu_usage",
        "_mem_usage",
        "_cpu_cap",
        "_mem_cap",
        "_alive",
        "dirty",
        "_overloaded",
        "_total_usage_cpu",
        "_total_usage_mem",
        "_total_cap_cpu",
        "_total_cap_mem",
    )

    def __init__(self) -> None:
        self._numpy = numpy_enabled()
        #: node name -> slot (live nodes only; tombstoned slots are unmapped).
        self._index: Dict[str, int] = {}
        #: slot -> node name (tombstoned slots keep the stale name but are
        #: never reported: they fail the alive mask).
        self._names: List[str] = []
        self._size = 0
        if self._numpy:
            self._cpu_usage = _np.zeros(_INITIAL_CAPACITY, dtype=_np.int64)
            self._mem_usage = _np.zeros(_INITIAL_CAPACITY, dtype=_np.int64)
            self._cpu_cap = _np.zeros(_INITIAL_CAPACITY, dtype=_np.int64)
            self._mem_cap = _np.zeros(_INITIAL_CAPACITY, dtype=_np.int64)
            self._alive = _np.zeros(_INITIAL_CAPACITY, dtype=bool)
        else:
            self._cpu_usage: List[int] = []  # type: ignore[no-redef]
            self._mem_usage: List[int] = []  # type: ignore[no-redef]
            self._cpu_cap: List[int] = []  # type: ignore[no-redef]
            self._mem_cap: List[int] = []  # type: ignore[no-redef]
            self._alive: List[bool] = []  # type: ignore[no-redef]
        #: Slots whose load changed since the last viability scan.
        self.dirty: Set[int] = set()
        #: Slots known to exceed their capacity (exact after every scan).
        self._overloaded: Set[int] = set()
        self._total_usage_cpu = 0
        self._total_usage_mem = 0
        self._total_cap_cpu = 0
        self._total_cap_mem = 0

    # ------------------------------------------------------------------ #
    # interning                                                           #
    # ------------------------------------------------------------------ #

    def _grow(self) -> None:
        if not self._numpy:
            return
        capacity = len(self._cpu_usage)
        if self._size < capacity:
            return
        for name in ("_cpu_usage", "_mem_usage", "_cpu_cap", "_mem_cap"):
            old = getattr(self, name)
            fresh = _np.zeros(capacity * 2, dtype=_np.int64)
            fresh[:capacity] = old
            setattr(self, name, fresh)
        alive = _np.zeros(capacity * 2, dtype=bool)
        alive[:capacity] = self._alive
        self._alive = alive

    def add(self, name: str, cpu_capacity: int, memory_capacity: int) -> int:
        """Intern a node: assign it the next slot and record its capacity.

        The fresh slot is marked dirty so the next incremental scan examines
        it — a zero-capacity node is overloaded by a single busy VM."""
        slot = self._size
        self._grow()
        if self._numpy:
            self._cpu_usage[slot] = 0
            self._mem_usage[slot] = 0
            self._cpu_cap[slot] = cpu_capacity
            self._mem_cap[slot] = memory_capacity
            self._alive[slot] = True
        else:
            self._cpu_usage.append(0)
            self._mem_usage.append(0)
            self._cpu_cap.append(cpu_capacity)
            self._mem_cap.append(memory_capacity)
            self._alive.append(True)
        self._size += 1
        self._index[name] = slot
        self._names.append(name)
        self._total_cap_cpu += cpu_capacity
        self._total_cap_mem += memory_capacity
        self.dirty.add(slot)
        return slot

    def drop(self, name: str) -> None:
        """Tombstone a node's slot: unmap the name, zero its columns and
        evict it from the dirty/overloaded caches so nothing stale survives
        a later re-add of the same name (which gets a *fresh* slot)."""
        slot = self._index.pop(name)
        self._total_cap_cpu -= int(self._cpu_cap[slot])
        self._total_cap_mem -= int(self._mem_cap[slot])
        self._total_usage_cpu -= int(self._cpu_usage[slot])
        self._total_usage_mem -= int(self._mem_usage[slot])
        self._cpu_usage[slot] = 0
        self._mem_usage[slot] = 0
        self._cpu_cap[slot] = 0
        self._mem_cap[slot] = 0
        self._alive[slot] = False
        self.dirty.discard(slot)
        self._overloaded.discard(slot)

    def slot(self, name: str) -> int:
        return self._index[name]

    def name_of(self, slot: int) -> str:
        return self._names[slot]

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self._index)

    # ------------------------------------------------------------------ #
    # loads                                                               #
    # ------------------------------------------------------------------ #

    def add_load(self, name: str, cpu: int, memory: int) -> None:
        """Apply a load delta to a node and mark it dirty."""
        slot = self._index[name]
        self._cpu_usage[slot] += cpu
        self._mem_usage[slot] += memory
        self._total_usage_cpu += cpu
        self._total_usage_mem += memory
        self.dirty.add(slot)

    def usage(self, name: str) -> Tuple[int, int]:
        slot = self._index[name]
        return (int(self._cpu_usage[slot]), int(self._mem_usage[slot]))

    def capacity(self, name: str) -> Tuple[int, int]:
        slot = self._index[name]
        return (int(self._cpu_cap[slot]), int(self._mem_cap[slot]))

    def free(self, name: str) -> Tuple[int, int]:
        slot = self._index[name]
        return (
            int(self._cpu_cap[slot]) - int(self._cpu_usage[slot]),
            int(self._mem_cap[slot]) - int(self._mem_usage[slot]),
        )

    def total_usage(self) -> Tuple[int, int]:
        return (self._total_usage_cpu, self._total_usage_mem)

    def total_capacity(self) -> Tuple[int, int]:
        return (self._total_cap_cpu, self._total_cap_mem)

    # ------------------------------------------------------------------ #
    # viability                                                           #
    # ------------------------------------------------------------------ #

    def _is_overloaded(self, slot: int) -> bool:
        return bool(
            self._alive[slot]
            and (
                self._cpu_usage[slot] > self._cpu_cap[slot]
                or self._mem_usage[slot] > self._mem_cap[slot]
            )
        )

    def overloaded_full(self) -> List[int]:
        """Every overloaded live slot, in slot (= registration) order.

        Resynchronizes the cached overloaded set and clears the dirty set —
        a full scan subsumes any pending incremental work."""
        if self._numpy and self._size:
            used = slice(0, self._size)
            mask = self._alive[used] & (
                (self._cpu_usage[used] > self._cpu_cap[used])
                | (self._mem_usage[used] > self._mem_cap[used])
            )
            slots = [int(s) for s in _np.nonzero(mask)[0]]
        else:
            slots = [s for s in range(self._size) if self._is_overloaded(s)]
        self._overloaded = set(slots)
        self.dirty.clear()
        return slots

    def overloaded_dirty(self) -> List[int]:
        """The same list as :meth:`overloaded_full`, computed by re-examining
        only the slots touched since the previous scan (O(changed) plus the
        size of the answer)."""
        for slot in self.dirty:
            if self._is_overloaded(slot):
                self._overloaded.add(slot)
            else:
                self._overloaded.discard(slot)
        self.dirty.clear()
        return sorted(self._overloaded)

    # ------------------------------------------------------------------ #
    # copies                                                              #
    # ------------------------------------------------------------------ #

    def copy(self) -> "LoadColumns":
        clone = LoadColumns.__new__(LoadColumns)
        clone._numpy = self._numpy
        clone._index = dict(self._index)
        clone._names = list(self._names)
        clone._size = self._size
        if self._numpy:
            clone._cpu_usage = self._cpu_usage.copy()
            clone._mem_usage = self._mem_usage.copy()
            clone._cpu_cap = self._cpu_cap.copy()
            clone._mem_cap = self._mem_cap.copy()
            clone._alive = self._alive.copy()
        else:
            clone._cpu_usage = list(self._cpu_usage)
            clone._mem_usage = list(self._mem_usage)
            clone._cpu_cap = list(self._cpu_cap)
            clone._mem_cap = list(self._mem_cap)
            clone._alive = list(self._alive)
        clone.dirty = set(self.dirty)
        clone._overloaded = set(self._overloaded)
        clone._total_usage_cpu = self._total_usage_cpu
        clone._total_usage_mem = self._total_usage_mem
        clone._total_cap_cpu = self._total_cap_cpu
        clone._total_cap_mem = self._total_cap_mem
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        backend = "numpy" if self._numpy else "python"
        return (
            f"<LoadColumns nodes={len(self._index)} slots={self._size} "
            f"dirty={len(self.dirty)} backend={backend}>"
        )
