"""Cluster configurations.

A *configuration* is the central data structure of the paper: a mapping of VMs
to nodes together with the state of each VM.  A configuration is *viable*
(Section 3.2) when every running VM has access to a sufficient amount of memory
and processing units on its host node.  Waiting and sleeping VMs do not consume
node resources; sleeping VMs only remember the node that holds their suspend
image because a resume on that node is cheaper (Table 1).
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional

from .errors import (
    DuplicateElementError,
    ModelError,
    NonViableConfigurationError,
    UnknownNodeError,
    UnknownVMError,
)
from .node import Node
from .resources import ResourceVector
from .vm import VirtualMachine, VMState


@dataclass(frozen=True)
class ViabilityViolation:
    """One overloaded node in a non-viable configuration."""

    node: str
    capacity: ResourceVector
    usage: ResourceVector

    @property
    def cpu_excess(self) -> int:
        return max(0, self.usage.cpu - self.capacity.cpu)

    @property
    def memory_excess(self) -> int:
        return max(0, self.usage.memory - self.capacity.memory)

    def __str__(self) -> str:
        return (
            f"node {self.node}: usage {self.usage.as_tuple()} exceeds "
            f"capacity {self.capacity.as_tuple()}"
        )


class Configuration:
    """A mapping of VMs to nodes plus the state of every VM.

    The class is mutable — decision modules and planners build configurations
    incrementally — but exposes :meth:`copy` so temporary configurations can be
    derived cheaply, mirroring the iterative constructions of Sections 3.2
    and 4.1.
    """

    def __init__(
        self,
        nodes: Iterable[Node] = (),
        vms: Iterable[VirtualMachine] = (),
    ) -> None:
        self._nodes: dict[str, Node] = {}
        self._vms: dict[str, VirtualMachine] = {}
        #: VM name -> hosting node name, only for RUNNING VMs.
        self._placement: dict[str, str] = {}
        #: VM name -> node name holding the suspend image, for SLEEPING VMs.
        self._images: dict[str, str] = {}
        #: Explicit state of every VM.
        self._states: dict[str, VMState] = {}
        for node in nodes:
            self.add_node(node)
        for vm in vms:
            self.add_vm(vm)

    # ------------------------------------------------------------------ #
    # population                                                          #
    # ------------------------------------------------------------------ #

    def add_node(self, node: Node) -> None:
        if node.name in self._nodes:
            raise DuplicateElementError(f"node {node.name!r} already registered")
        self._nodes[node.name] = node

    def add_vm(self, vm: VirtualMachine, state: VMState = VMState.WAITING) -> None:
        if vm.name in self._vms:
            raise DuplicateElementError(f"VM {vm.name!r} already registered")
        self._vms[vm.name] = vm
        self._states[vm.name] = state

    def replace_vm(self, vm: VirtualMachine) -> None:
        """Update the description of a VM (e.g. a new CPU demand) without
        touching its placement or state."""
        if vm.name not in self._vms:
            raise UnknownVMError(vm.name)
        self._vms[vm.name] = vm

    def remove_node(self, name: str) -> Node:
        """Evict a node from the configuration (e.g. a crash or a drain).

        The node must be empty: no VM may be running on it and no suspend
        image may live on it — displace or kill those first (see
        :func:`repro.sim.faults.evict_node` for the crash semantics).  Returns
        the removed :class:`~repro.model.node.Node` so it can be re-added
        later (a repaired node rejoining the fleet).
        """
        node = self.node(name)
        placed = [vm for vm, host in self._placement.items() if host == name]
        imaged = [vm for vm, host in self._images.items() if host == name]
        if placed or imaged:
            raise ModelError(
                f"node {name!r} is not empty: running VMs {sorted(placed)} / "
                f"suspend images {sorted(imaged)} must be displaced before "
                "the node can be removed"
            )
        del self._nodes[name]
        return node

    # ------------------------------------------------------------------ #
    # lookups                                                             #
    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> tuple[Node, ...]:
        return tuple(self._nodes.values())

    @property
    def node_names(self) -> tuple[str, ...]:
        return tuple(self._nodes)

    @property
    def vms(self) -> tuple[VirtualMachine, ...]:
        return tuple(self._vms.values())

    @property
    def vm_names(self) -> tuple[str, ...]:
        return tuple(self._vms)

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise UnknownNodeError(name) from None

    def vm(self, name: str) -> VirtualMachine:
        try:
            return self._vms[name]
        except KeyError:
            raise UnknownVMError(name) from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def has_vm(self, name: str) -> bool:
        return name in self._vms

    def state_of(self, vm_name: str) -> VMState:
        if vm_name not in self._vms:
            raise UnknownVMError(vm_name)
        return self._states[vm_name]

    def location_of(self, vm_name: str) -> Optional[str]:
        """Node hosting a running VM, or ``None`` if the VM is not running."""
        if vm_name not in self._vms:
            raise UnknownVMError(vm_name)
        return self._placement.get(vm_name)

    def image_location_of(self, vm_name: str) -> Optional[str]:
        """Node holding the suspend image of a sleeping VM, if any."""
        if vm_name not in self._vms:
            raise UnknownVMError(vm_name)
        return self._images.get(vm_name)

    def running_vms(self) -> tuple[str, ...]:
        return tuple(
            name for name, state in self._states.items() if state is VMState.RUNNING
        )

    def sleeping_vms(self) -> tuple[str, ...]:
        return tuple(
            name for name, state in self._states.items() if state is VMState.SLEEPING
        )

    def waiting_vms(self) -> tuple[str, ...]:
        return tuple(
            name for name, state in self._states.items() if state is VMState.WAITING
        )

    def terminated_vms(self) -> tuple[str, ...]:
        return tuple(
            name
            for name, state in self._states.items()
            if state is VMState.TERMINATED
        )

    def vms_on(self, node_name: str) -> tuple[str, ...]:
        """Names of the VMs currently running on ``node_name``."""
        if node_name not in self._nodes:
            raise UnknownNodeError(node_name)
        return tuple(
            vm for vm, node in self._placement.items() if node == node_name
        )

    def placement(self) -> Mapping[str, str]:
        """Read-only view of the running VM -> node mapping."""
        return dict(self._placement)

    def states(self) -> dict[str, "VMState"]:
        """Read-only copy of the VM -> life-cycle state mapping (one bulk
        copy instead of per-VM :meth:`state_of` calls on hot paths)."""
        return dict(self._states)

    def iter_placement(self) -> Iterator[tuple[str, str]]:
        """Iterate (running VM, hosting node) pairs without copying — for
        hot read-only checks (e.g. greedy constraint filtering)."""
        return iter(self._placement.items())

    # ------------------------------------------------------------------ #
    # state changes                                                       #
    # ------------------------------------------------------------------ #

    def set_running(self, vm_name: str, node_name: str) -> None:
        """Place a VM in the RUNNING state on ``node_name``."""
        self.vm(vm_name)
        self.node(node_name)
        self._states[vm_name] = VMState.RUNNING
        self._placement[vm_name] = node_name
        self._images.pop(vm_name, None)

    def set_sleeping(self, vm_name: str, image_node: Optional[str] = None) -> None:
        """Suspend a VM; its image stays on ``image_node`` (defaults to the
        node it was running on)."""
        self.vm(vm_name)
        if image_node is None:
            image_node = self._placement.get(vm_name)
        if image_node is not None:
            self.node(image_node)
            self._images[vm_name] = image_node
        self._states[vm_name] = VMState.SLEEPING
        self._placement.pop(vm_name, None)

    def set_waiting(self, vm_name: str) -> None:
        self.vm(vm_name)
        self._states[vm_name] = VMState.WAITING
        self._placement.pop(vm_name, None)
        self._images.pop(vm_name, None)

    def set_terminated(self, vm_name: str) -> None:
        self.vm(vm_name)
        self._states[vm_name] = VMState.TERMINATED
        self._placement.pop(vm_name, None)
        self._images.pop(vm_name, None)

    def migrate(self, vm_name: str, destination: str) -> None:
        """Move a running VM to ``destination`` (state unchanged)."""
        if self.state_of(vm_name) is not VMState.RUNNING:
            raise NonViableConfigurationError(
                f"VM {vm_name!r} is not running and cannot be migrated"
            )
        self.node(destination)
        self._placement[vm_name] = destination

    # ------------------------------------------------------------------ #
    # resource accounting & viability                                     #
    # ------------------------------------------------------------------ #

    def usage_of(self, node_name: str) -> ResourceVector:
        """Aggregate demand of the running VMs hosted on ``node_name``."""
        self.node(node_name)
        return ResourceVector.total(
            self._vms[vm].demand
            for vm, node in self._placement.items()
            if node == node_name
        )

    def free_capacity(self, node_name: str) -> ResourceVector:
        """Remaining capacity of ``node_name`` (may be negative if
        overloaded)."""
        return self._nodes[node_name].capacity - self.usage_of(node_name)

    def can_host(self, node_name: str, vm: VirtualMachine) -> bool:
        """True when ``node_name`` has room for ``vm`` on both dimensions."""
        return vm.demand.fits_in(self.free_capacity(node_name))

    def total_usage(self) -> ResourceVector:
        return ResourceVector.total(
            self._vms[vm].demand for vm in self._placement
        )

    def total_capacity(self) -> ResourceVector:
        return ResourceVector.total(node.capacity for node in self._nodes.values())

    def viability_violations(self) -> list[ViabilityViolation]:
        """Nodes whose capacity is exceeded by their running VMs.

        Accumulated in a single pass over the placement (not per-node
        ``usage_of`` scans, which would be quadratic): viability is checked
        every round by the constraint watchdog and the service observer, so
        this path stays O(VMs + nodes).
        """
        cpu_usage: dict[str, int] = {}
        memory_usage: dict[str, int] = {}
        for vm_name, node_name in self._placement.items():
            vm = self._vms[vm_name]
            cpu_usage[node_name] = cpu_usage.get(node_name, 0) + vm.cpu_demand
            memory_usage[node_name] = (
                memory_usage.get(node_name, 0) + vm.memory
            )
        violations = []
        for node in self._nodes.values():
            cpu = cpu_usage.get(node.name, 0)
            memory = memory_usage.get(node.name, 0)
            if cpu > node.cpu_capacity or memory > node.memory_capacity:
                violations.append(
                    ViabilityViolation(
                        node=node.name,
                        capacity=node.capacity,
                        usage=ResourceVector(cpu, memory),
                    )
                )
        return violations

    def is_viable(self) -> bool:
        """A configuration is viable when no node is overloaded (Section 3.2)."""
        return not self.viability_violations()

    def check_viable(self) -> None:
        violations = self.viability_violations()
        if violations:
            details = "; ".join(str(v) for v in violations)
            raise NonViableConfigurationError(details)

    # ------------------------------------------------------------------ #
    # copies & comparisons                                                #
    # ------------------------------------------------------------------ #

    def copy(self) -> "Configuration":
        clone = Configuration()
        clone._nodes = dict(self._nodes)
        clone._vms = dict(self._vms)
        clone._placement = dict(self._placement)
        clone._images = dict(self._images)
        clone._states = dict(self._states)
        return clone

    def same_assignment(self, other: "Configuration") -> bool:
        """True when both configurations give the same state and location to
        every VM."""
        if set(self._vms) != set(other._vms):
            return False
        for name in self._vms:
            if self._states[name] is not other._states[name]:
                return False
            if self._placement.get(name) != other._placement.get(name):
                return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return (
            set(self._nodes) == set(other._nodes)
            and self.same_assignment(other)
        )

    def __hash__(self) -> int:  # pragma: no cover - configurations are mutable
        raise TypeError("Configuration objects are mutable and unhashable")

    def __deepcopy__(self, memo: dict) -> "Configuration":
        return self.copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        running = len(self._placement)
        return (
            f"<Configuration nodes={len(self._nodes)} vms={len(self._vms)} "
            f"running={running} sleeping={len(self._images)}>"
        )

    # ------------------------------------------------------------------ #
    # iteration helpers                                                   #
    # ------------------------------------------------------------------ #

    def iter_running(self) -> Iterator[tuple[VirtualMachine, Node]]:
        """Iterate over (VM, hosting node) pairs for running VMs."""
        for vm_name, node_name in self._placement.items():
            yield self._vms[vm_name], self._nodes[node_name]
