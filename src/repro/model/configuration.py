"""Cluster configurations.

A *configuration* is the central data structure of the paper: a mapping of VMs
to nodes together with the state of each VM.  A configuration is *viable*
(Section 3.2) when every running VM has access to a sufficient amount of memory
and processing units on its host node.  Waiting and sleeping VMs do not consume
node resources; sleeping VMs only remember the node that holds their suspend
image because a resume on that node is cheaper (Table 1).

Since PR 10 the class is *indexed* for datacenter-tier fleets: node and VM
names are interned, per-node loads and capacities live in columnar storage
(:class:`~repro.model.columns.LoadColumns` — numpy-backed with a pure-python
fallback), and every node carries its running-set and suspend-image indices.
State mutators maintain the loads incrementally and record the touched nodes
in a dirty set, so

* :meth:`usage_of` / :meth:`free_capacity` / :meth:`can_host` /
  :meth:`total_usage` / :meth:`total_capacity` are O(1),
* :meth:`vms_on` / :meth:`images_on` are O(answer),
* :meth:`viability_violations` with ``only_dirty=True`` is O(changed) — it
  re-examines only the nodes mutated since the previous scan and returns the
  *complete* current violation list, identical to the full scan.

The naive dict-walk implementations are retained on
:class:`repro.model.reference.NaiveConfiguration` as the differential-test
oracle (``tests/properties/test_configuration_equivalence.py`` drives both in
lockstep under random mutation sequences).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Optional, Set

from .columns import LoadColumns
from .errors import (
    DuplicateElementError,
    ModelError,
    NonViableConfigurationError,
    UnknownNodeError,
    UnknownVMError,
)
from .node import Node
from .resources import ResourceVector
from .vm import VirtualMachine, VMState


@dataclass(frozen=True)
class ViabilityViolation:
    """One overloaded node in a non-viable configuration."""

    node: str
    capacity: ResourceVector
    usage: ResourceVector

    @property
    def cpu_excess(self) -> int:
        return max(0, self.usage.cpu - self.capacity.cpu)

    @property
    def memory_excess(self) -> int:
        return max(0, self.usage.memory - self.capacity.memory)

    def __str__(self) -> str:
        return (
            f"node {self.node}: usage {self.usage.as_tuple()} exceeds "
            f"capacity {self.capacity.as_tuple()}"
        )


class Configuration:
    """A mapping of VMs to nodes plus the state of every VM.

    The class is mutable — decision modules and planners build configurations
    incrementally — but exposes :meth:`copy` so temporary configurations can be
    derived cheaply, mirroring the iterative constructions of Sections 3.2
    and 4.1.
    """

    def __init__(
        self,
        nodes: Iterable[Node] = (),
        vms: Iterable[VirtualMachine] = (),
    ) -> None:
        self._nodes: dict[str, Node] = {}
        self._vms: dict[str, VirtualMachine] = {}
        #: VM name -> hosting node name, only for RUNNING VMs.
        self._placement: dict[str, str] = {}
        #: VM name -> node name holding the suspend image, for SLEEPING VMs.
        self._images: dict[str, str] = {}
        #: Explicit state of every VM.
        self._states: dict[str, VMState] = {}
        #: Interned VM ids: name -> registration rank (VMs are never
        #: unregistered, so the rank is stable for the configuration's life).
        self._vm_index: dict[str, int] = {}
        #: Per-node columnar loads/capacities with dirty tracking.
        self._columns = LoadColumns()
        #: node name -> names of the VMs currently RUNNING on it.
        self._members: Dict[str, Set[str]] = {}
        #: node name -> names of the sleeping VMs whose image it holds.
        self._image_members: Dict[str, Set[str]] = {}
        #: VM name -> placement rank: the order in which the VM *entered* the
        #: placement map (migrations keep the rank, like a dict value update
        #: keeps the key position).  :meth:`vms_on` sorts by it so the
        #: per-node index reproduces the historical dict-walk order exactly.
        self._placement_rank: dict[str, int] = {}
        self._rank_counter = 0
        for node in nodes:
            self.add_node(node)
        for vm in vms:
            self.add_vm(vm)

    # ------------------------------------------------------------------ #
    # population                                                          #
    # ------------------------------------------------------------------ #

    def add_node(self, node: Node) -> None:
        if node.name in self._nodes:
            raise DuplicateElementError(f"node {node.name!r} already registered")
        self._nodes[node.name] = node
        self._columns.add(node.name, node.cpu_capacity, node.memory_capacity)
        self._members[node.name] = set()
        self._image_members[node.name] = set()

    def add_vm(self, vm: VirtualMachine, state: VMState = VMState.WAITING) -> None:
        if vm.name in self._vms:
            raise DuplicateElementError(f"VM {vm.name!r} already registered")
        self._vm_index[vm.name] = len(self._vms)
        self._vms[vm.name] = vm
        self._states[vm.name] = state

    def replace_vm(self, vm: VirtualMachine) -> None:
        """Update the description of a VM (e.g. a new CPU demand) without
        touching its placement or state."""
        if vm.name not in self._vms:
            raise UnknownVMError(vm.name)
        host = self._placement.get(vm.name)
        if host is not None:
            old = self._vms[vm.name]
            delta_cpu = vm.cpu_demand - old.cpu_demand
            delta_mem = vm.memory - old.memory
            if delta_cpu or delta_mem:
                self._columns.add_load(host, delta_cpu, delta_mem)
        self._vms[vm.name] = vm

    def remove_node(self, name: str) -> Node:
        """Evict a node from the configuration (e.g. a crash or a drain).

        The node must be empty: no VM may be running on it and no suspend
        image may live on it — displace or kill those first (see
        :func:`repro.sim.faults.evict_node` for the crash semantics).  Returns
        the removed :class:`~repro.model.node.Node` so it can be re-added
        later (a repaired node rejoining the fleet).

        Removal drops every cached index of the node — its column slot is
        tombstoned and it leaves the dirty and overloaded caches — so a node
        re-added under the same name (possibly with a different capacity)
        starts from a clean slate and incremental viability never reports a
        stale load.
        """
        node = self.node(name)
        placed = self._members[name]
        imaged = self._image_members[name]
        if placed or imaged:
            raise ModelError(
                f"node {name!r} is not empty: running VMs {sorted(placed)} / "
                f"suspend images {sorted(imaged)} must be displaced before "
                "the node can be removed"
            )
        del self._nodes[name]
        del self._members[name]
        del self._image_members[name]
        self._columns.drop(name)
        return node

    # ------------------------------------------------------------------ #
    # lookups                                                             #
    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> tuple[Node, ...]:
        return tuple(self._nodes.values())

    @property
    def node_names(self) -> tuple[str, ...]:
        return tuple(self._nodes)

    @property
    def vms(self) -> tuple[VirtualMachine, ...]:
        return tuple(self._vms.values())

    @property
    def vm_names(self) -> tuple[str, ...]:
        return tuple(self._vms)

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise UnknownNodeError(name) from None

    def vm(self, name: str) -> VirtualMachine:
        try:
            return self._vms[name]
        except KeyError:
            raise UnknownVMError(name) from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def has_vm(self, name: str) -> bool:
        return name in self._vms

    def node_index(self, name: str) -> int:
        """Interned id of a node: its column slot.  Slots are assigned in
        registration order and never reused, so sorting names by slot
        reproduces the registration order in O(k log k) instead of an
        O(fleet) scan of :attr:`node_names`."""
        if name not in self._nodes:
            raise UnknownNodeError(name)
        return self._columns.slot(name)

    def vm_index(self, name: str) -> int:
        """Interned id of a VM (registration rank, never reused)."""
        try:
            return self._vm_index[name]
        except KeyError:
            raise UnknownVMError(name) from None

    def state_of(self, vm_name: str) -> VMState:
        if vm_name not in self._vms:
            raise UnknownVMError(vm_name)
        return self._states[vm_name]

    def location_of(self, vm_name: str) -> Optional[str]:
        """Node hosting a running VM, or ``None`` if the VM is not running."""
        if vm_name not in self._vms:
            raise UnknownVMError(vm_name)
        return self._placement.get(vm_name)

    def image_location_of(self, vm_name: str) -> Optional[str]:
        """Node holding the suspend image of a sleeping VM, if any."""
        if vm_name not in self._vms:
            raise UnknownVMError(vm_name)
        return self._images.get(vm_name)

    def running_vms(self) -> tuple[str, ...]:
        return tuple(
            name for name, state in self._states.items() if state is VMState.RUNNING
        )

    def sleeping_vms(self) -> tuple[str, ...]:
        return tuple(
            name for name, state in self._states.items() if state is VMState.SLEEPING
        )

    def waiting_vms(self) -> tuple[str, ...]:
        return tuple(
            name for name, state in self._states.items() if state is VMState.WAITING
        )

    def terminated_vms(self) -> tuple[str, ...]:
        return tuple(
            name
            for name, state in self._states.items()
            if state is VMState.TERMINATED
        )

    def vms_on(self, node_name: str) -> tuple[str, ...]:
        """Names of the VMs currently running on ``node_name``.

        Served from the per-node running-set index in O(k log k) for k
        hosted VMs; the placement rank keeps the historical order (the
        placement map's insertion order filtered to the node)."""
        if node_name not in self._nodes:
            raise UnknownNodeError(node_name)
        return tuple(
            sorted(self._members[node_name], key=self._placement_rank.__getitem__)
        )

    def images_on(self, node_name: str) -> tuple[str, ...]:
        """Names of the sleeping VMs whose suspend image ``node_name`` holds,
        in VM-registration order (O(answer), from the per-node index)."""
        if node_name not in self._nodes:
            raise UnknownNodeError(node_name)
        return tuple(
            sorted(self._image_members[node_name], key=self._vm_index.__getitem__)
        )

    def placement(self) -> Mapping[str, str]:
        """Read-only view of the running VM -> node mapping."""
        return dict(self._placement)

    def states(self) -> dict[str, "VMState"]:
        """Read-only copy of the VM -> life-cycle state mapping (one bulk
        copy instead of per-VM :meth:`state_of` calls on hot paths)."""
        return dict(self._states)

    def iter_placement(self) -> Iterator[tuple[str, str]]:
        """Iterate (running VM, hosting node) pairs without copying — for
        hot read-only checks (e.g. greedy constraint filtering)."""
        return iter(self._placement.items())

    # ------------------------------------------------------------------ #
    # state changes                                                       #
    # ------------------------------------------------------------------ #

    def _unplace(self, vm_name: str) -> None:
        """Drop a VM from the placement map and its host's indices."""
        host = self._placement.pop(vm_name, None)
        if host is None:
            return
        vm = self._vms[vm_name]
        self._members[host].discard(vm_name)
        self._columns.add_load(host, -vm.cpu_demand, -vm.memory)
        del self._placement_rank[vm_name]

    def _drop_image(self, vm_name: str) -> None:
        host = self._images.pop(vm_name, None)
        if host is not None:
            self._image_members[host].discard(vm_name)

    def set_running(self, vm_name: str, node_name: str) -> None:
        """Place a VM in the RUNNING state on ``node_name``."""
        vm = self.vm(vm_name)
        self.node(node_name)
        previous = self._placement.get(vm_name)
        if previous is None:
            self._placement[vm_name] = node_name
            self._placement_rank[vm_name] = self._rank_counter
            self._rank_counter += 1
            self._members[node_name].add(vm_name)
            self._columns.add_load(node_name, vm.cpu_demand, vm.memory)
        elif previous != node_name:
            self._placement[vm_name] = node_name
            self._members[previous].discard(vm_name)
            self._members[node_name].add(vm_name)
            self._columns.add_load(previous, -vm.cpu_demand, -vm.memory)
            self._columns.add_load(node_name, vm.cpu_demand, vm.memory)
        self._states[vm_name] = VMState.RUNNING
        self._drop_image(vm_name)

    def set_sleeping(self, vm_name: str, image_node: Optional[str] = None) -> None:
        """Suspend a VM; its image stays on ``image_node`` (defaults to the
        node it was running on)."""
        self.vm(vm_name)
        if image_node is None:
            image_node = self._placement.get(vm_name)
        if image_node is not None:
            self.node(image_node)
            self._drop_image(vm_name)
            self._images[vm_name] = image_node
            self._image_members[image_node].add(vm_name)
        self._states[vm_name] = VMState.SLEEPING
        self._unplace(vm_name)

    def set_waiting(self, vm_name: str) -> None:
        self.vm(vm_name)
        self._states[vm_name] = VMState.WAITING
        self._unplace(vm_name)
        self._drop_image(vm_name)

    def set_terminated(self, vm_name: str) -> None:
        self.vm(vm_name)
        self._states[vm_name] = VMState.TERMINATED
        self._unplace(vm_name)
        self._drop_image(vm_name)

    def migrate(self, vm_name: str, destination: str) -> None:
        """Move a running VM to ``destination`` (state unchanged)."""
        if self.state_of(vm_name) is not VMState.RUNNING:
            raise NonViableConfigurationError(
                f"VM {vm_name!r} is not running and cannot be migrated"
            )
        self.node(destination)
        source = self._placement[vm_name]
        if source == destination:
            return
        vm = self._vms[vm_name]
        self._placement[vm_name] = destination
        self._members[source].discard(vm_name)
        self._members[destination].add(vm_name)
        self._columns.add_load(source, -vm.cpu_demand, -vm.memory)
        self._columns.add_load(destination, vm.cpu_demand, vm.memory)

    # ------------------------------------------------------------------ #
    # resource accounting & viability                                     #
    # ------------------------------------------------------------------ #

    def usage_of(self, node_name: str) -> ResourceVector:
        """Aggregate demand of the running VMs hosted on ``node_name``
        (O(1) — served from the per-node load columns)."""
        self.node(node_name)
        return ResourceVector(*self._columns.usage(node_name))

    def free_capacity(self, node_name: str) -> ResourceVector:
        """Remaining capacity of ``node_name`` (may be negative if
        overloaded).  O(1)."""
        if node_name not in self._nodes:
            # Historical contract: a plain KeyError, unlike usage_of.
            raise KeyError(node_name)
        return ResourceVector(*self._columns.free(node_name))

    def can_host(self, node_name: str, vm: VirtualMachine) -> bool:
        """True when ``node_name`` has room for ``vm`` on both dimensions."""
        return vm.demand.fits_in(self.free_capacity(node_name))

    def total_usage(self) -> ResourceVector:
        return ResourceVector(*self._columns.total_usage())

    def total_capacity(self) -> ResourceVector:
        return ResourceVector(*self._columns.total_capacity())

    def dirty_nodes(self) -> tuple[str, ...]:
        """Nodes whose load changed since the last viability scan, in
        registration order (observability hook — consuming the dirty set is
        what :meth:`viability_violations` with ``only_dirty=True`` does)."""
        return tuple(
            sorted(
                (self._columns.name_of(slot) for slot in self._columns.dirty),
                key=self._columns.slot,
            )
        )

    def viability_violations(
        self, only_dirty: bool = False
    ) -> list[ViabilityViolation]:
        """Nodes whose capacity is exceeded by their running VMs.

        Both faces return the complete, current violation list:

        * ``only_dirty=False`` — scan every node's load column (vectorized
          under numpy) and resynchronize the overload cache;
        * ``only_dirty=True`` — O(changed): re-examine only the nodes whose
          load was mutated since the previous scan and serve the rest from
          the cache.  This is what the control loop's observe phase and the
          sim engine consume every round.
        """
        if only_dirty:
            slots = self._columns.overloaded_dirty()
        else:
            slots = self._columns.overloaded_full()
        violations = []
        for slot in slots:
            name = self._columns.name_of(slot)
            cpu, memory = self._columns.usage(name)
            violations.append(
                ViabilityViolation(
                    node=name,
                    capacity=self._nodes[name].capacity,
                    usage=ResourceVector(cpu, memory),
                )
            )
        return violations

    def is_viable(self) -> bool:
        """A configuration is viable when no node is overloaded (Section 3.2)."""
        return not self.viability_violations(only_dirty=True)

    def check_viable(self) -> None:
        violations = self.viability_violations(only_dirty=True)
        if violations:
            details = "; ".join(str(v) for v in violations)
            raise NonViableConfigurationError(details)

    # ------------------------------------------------------------------ #
    # copies & comparisons                                                #
    # ------------------------------------------------------------------ #

    def copy(self) -> "Configuration":
        clone = type(self)()
        clone._nodes = dict(self._nodes)
        clone._vms = dict(self._vms)
        clone._placement = dict(self._placement)
        clone._images = dict(self._images)
        clone._states = dict(self._states)
        clone._vm_index = dict(self._vm_index)
        clone._columns = self._columns.copy()
        clone._members = {node: set(vms) for node, vms in self._members.items()}
        clone._image_members = {
            node: set(vms) for node, vms in self._image_members.items()
        }
        clone._placement_rank = dict(self._placement_rank)
        clone._rank_counter = self._rank_counter
        return clone

    def same_assignment(self, other: "Configuration") -> bool:
        """True when both configurations give the same state and location to
        every VM."""
        if set(self._vms) != set(other._vms):
            return False
        for name in self._vms:
            if self._states[name] is not other._states[name]:
                return False
            if self._placement.get(name) != other._placement.get(name):
                return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return (
            set(self._nodes) == set(other._nodes)
            and self.same_assignment(other)
        )

    def __hash__(self) -> int:  # pragma: no cover - configurations are mutable
        raise TypeError("Configuration objects are mutable and unhashable")

    def __deepcopy__(self, memo: dict) -> "Configuration":
        return self.copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        running = len(self._placement)
        return (
            f"<Configuration nodes={len(self._nodes)} vms={len(self._vms)} "
            f"running={running} sleeping={len(self._images)}>"
        )

    # ------------------------------------------------------------------ #
    # iteration helpers                                                   #
    # ------------------------------------------------------------------ #

    def iter_running(self) -> Iterator[tuple[VirtualMachine, Node]]:
        """Iterate over (VM, hosting node) pairs for running VMs."""
        for vm_name, node_name in self._placement.items():
            yield self._vms[vm_name], self._nodes[node_name]
