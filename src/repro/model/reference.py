"""Naive reference implementation of the hot Configuration reads.

:class:`NaiveConfiguration` preserves the pre-PR-10 O(fleet) dict-walk
implementations of every read that the indexed :class:`Configuration` now
serves from its columnar caches.  It is the *oracle* of the differential test
harness: the Hypothesis suite in
``tests/properties/test_configuration_equivalence.py`` drives an indexed
configuration and a naive one in lockstep through random mutation sequences
and asserts the answers never diverge, and the scale benchmark
(``benchmarks/bench_model_scale.py``) times both paths to prove the speedup
claimed in PERFORMANCE.md.

The class inherits every *mutator* unchanged — state transitions are not what
the refactor touched — and overrides only the reads, recomputing each answer
from the placement/state dicts exactly like the historical code did.  Nothing
in the production stack should instantiate it.
"""

from __future__ import annotations

from .configuration import Configuration, ViabilityViolation
from .resources import ResourceVector


class NaiveConfiguration(Configuration):
    """A Configuration whose reads re-walk the placement dicts (the pre-index
    semantics, retained as the differential-testing oracle)."""

    def vms_on(self, node_name: str) -> tuple[str, ...]:
        self.node(node_name)
        return tuple(
            vm for vm, node in self._placement.items() if node == node_name
        )

    def images_on(self, node_name: str) -> tuple[str, ...]:
        # The historical computation (pre-PR-10 ``evict_node``): filter the
        # sleeping VMs — i.e. VM registration order — by image location.
        self.node(node_name)
        return tuple(
            vm
            for vm in self.sleeping_vms()
            if self._images.get(vm) == node_name
        )

    def usage_of(self, node_name: str) -> ResourceVector:
        self.node(node_name)
        return ResourceVector.total(
            self._vms[vm].demand
            for vm, node in self._placement.items()
            if node == node_name
        )

    def free_capacity(self, node_name: str) -> ResourceVector:
        return self._nodes[node_name].capacity - self.usage_of(node_name)

    def total_usage(self) -> ResourceVector:
        return ResourceVector.total(
            self._vms[vm].demand for vm in self._placement
        )

    def total_capacity(self) -> ResourceVector:
        return ResourceVector.total(node.capacity for node in self._nodes.values())

    def viability_violations(
        self, only_dirty: bool = False
    ) -> list[ViabilityViolation]:
        """Single full pass over the placement; ``only_dirty`` is accepted
        for interface compatibility but there is nothing incremental here."""
        del only_dirty
        cpu_usage: dict[str, int] = {}
        memory_usage: dict[str, int] = {}
        for vm_name, node_name in self._placement.items():
            vm = self._vms[vm_name]
            cpu_usage[node_name] = cpu_usage.get(node_name, 0) + vm.cpu_demand
            memory_usage[node_name] = (
                memory_usage.get(node_name, 0) + vm.memory
            )
        violations = []
        for node in self._nodes.values():
            cpu = cpu_usage.get(node.name, 0)
            memory = memory_usage.get(node.name, 0)
            if cpu > node.cpu_capacity or memory > node.memory_capacity:
                violations.append(
                    ViabilityViolation(
                        node=node.name,
                        capacity=node.capacity,
                        usage=ResourceVector(cpu, memory),
                    )
                )
        return violations
