"""Virtualized jobs (vjobs) and their life cycle (Section 2.2, Figure 2).

A vjob is a job encapsulated into one or several VMs.  The scheduler acts at
the vjob granularity: all the VMs of a vjob are run, suspended or resumed
together (the *consistency* requirement of Section 4.1), while migrations act
on individual VMs and do not change the vjob state.

Life cycle::

    Waiting --run--> Running --suspend--> Sleeping --resume--> Running
       Running --stop--> Terminated
    Ready = {Waiting, Sleeping}   (the runnable vjobs)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .errors import InvalidStateTransition
from .resources import ResourceVector
from .vm import VirtualMachine


class VJobState(enum.Enum):
    """States of the vjob life cycle (Figure 2)."""

    WAITING = "waiting"
    RUNNING = "running"
    SLEEPING = "sleeping"
    TERMINATED = "terminated"

    @property
    def is_ready(self) -> bool:
        """The *Ready* pseudo-state groups the runnable vjobs."""
        return self in (VJobState.WAITING, VJobState.SLEEPING)


#: Allowed transitions of the life cycle.  ``migrate`` does not appear here
#: because it never changes the vjob state.
_ALLOWED_TRANSITIONS: dict[VJobState, frozenset[VJobState]] = {
    VJobState.WAITING: frozenset({VJobState.RUNNING, VJobState.TERMINATED}),
    VJobState.RUNNING: frozenset({VJobState.SLEEPING, VJobState.TERMINATED}),
    VJobState.SLEEPING: frozenset({VJobState.RUNNING, VJobState.TERMINATED}),
    VJobState.TERMINATED: frozenset(),
}


@dataclass
class VJob:
    """A virtualized job.

    Parameters
    ----------
    name:
        Unique identifier of the vjob.
    vms:
        The VMs that compose the vjob (9 or 18 in the paper's experiments).
    priority:
        Submission rank used by the FCFS queue (lower = earlier = higher
        priority).
    submitted_at:
        Submission time (seconds); used by the schedulers and the simulator.
    """

    name: str
    vms: Sequence[VirtualMachine]
    priority: int = 0
    submitted_at: float = 0.0
    state: VJobState = field(default=VJobState.WAITING)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a vjob requires a non-empty name")
        self.vms = tuple(self.vms)
        if not self.vms:
            raise ValueError(f"vjob {self.name!r} requires at least one VM")
        for vm in self.vms:
            if vm.vjob and vm.vjob != self.name:
                raise ValueError(
                    f"VM {vm.name!r} is tagged for vjob {vm.vjob!r}, "
                    f"not {self.name!r}"
                )

    # -- derived views -------------------------------------------------------

    @property
    def vm_names(self) -> tuple[str, ...]:
        return tuple(vm.name for vm in self.vms)

    @property
    def total_demand(self) -> ResourceVector:
        """Aggregate demand of the vjob when all its VMs are running."""
        return ResourceVector.total(vm.demand for vm in self.vms)

    @property
    def total_memory(self) -> int:
        return sum(vm.memory for vm in self.vms)

    @property
    def is_ready(self) -> bool:
        return self.state.is_ready

    @property
    def is_running(self) -> bool:
        return self.state is VJobState.RUNNING

    @property
    def is_terminated(self) -> bool:
        return self.state is VJobState.TERMINATED

    # -- life cycle ----------------------------------------------------------

    def _transition(self, target: VJobState) -> None:
        allowed = _ALLOWED_TRANSITIONS[self.state]
        if target not in allowed:
            raise InvalidStateTransition(
                subject=f"vjob {self.name}",
                current=self.state.value,
                requested=target.value,
            )
        self.state = target

    def run(self) -> None:
        """Waiting -> Running (the ``run`` action on every VM)."""
        if self.state is not VJobState.WAITING:
            raise InvalidStateTransition(
                subject=f"vjob {self.name}",
                current=self.state.value,
                requested=VJobState.RUNNING.value,
            )
        self._transition(VJobState.RUNNING)

    def suspend(self) -> None:
        """Running -> Sleeping (the ``suspend`` action on every VM)."""
        self._transition(VJobState.SLEEPING)

    def resume(self) -> None:
        """Sleeping -> Running (the ``resume`` action on every VM)."""
        if self.state is not VJobState.SLEEPING:
            raise InvalidStateTransition(
                subject=f"vjob {self.name}",
                current=self.state.value,
                requested=VJobState.RUNNING.value,
            )
        self._transition(VJobState.RUNNING)

    def terminate(self) -> None:
        """Any non-terminated state -> Terminated (the ``stop`` action)."""
        self._transition(VJobState.TERMINATED)

    # -- misc -----------------------------------------------------------------

    def __str__(self) -> str:
        return f"{self.name}[{self.state.value}]"


def index_vms_by_vjob(vjobs: Iterable[VJob]) -> dict[str, str]:
    """Return a mapping VM name -> vjob name for a collection of vjobs."""
    mapping: dict[str, str] = {}
    for vjob in vjobs:
        for vm in vjob.vms:
            mapping[vm.name] = vjob.name
    return mapping
