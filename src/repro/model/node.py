"""Working, storage and service nodes of the cluster (Section 3.1).

Only working nodes can host VMs; storage nodes serve the virtual disks and the
service nodes run the monitoring head and the Entropy service.  The planner
and the decision modules only reason about working nodes, the other roles are
kept so the simulated substrate mirrors the paper's architecture.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .resources import ResourceVector


class NodeRole(enum.Enum):
    """Role of a node in the cluster architecture of Figure 4."""

    WORKING = "working"
    STORAGE = "storage"
    SERVICE = "service"


@dataclass(frozen=True)
class Node:
    """A physical node.

    Parameters
    ----------
    name:
        Unique identifier (host name).
    cpu_capacity:
        Number of processing units available to guest VMs.
    memory_capacity:
        Memory (MB) available to guest VMs, Domain-0 already excluded.
    role:
        Architectural role; only :attr:`NodeRole.WORKING` nodes host VMs.
    """

    name: str
    cpu_capacity: int = 2
    memory_capacity: int = 3584
    role: NodeRole = field(default=NodeRole.WORKING)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a node requires a non-empty name")
        if self.cpu_capacity < 0 or self.memory_capacity < 0:
            raise ValueError(f"node {self.name!r}: capacities must be non-negative")

    @property
    def capacity(self) -> ResourceVector:
        """Total resource capacity offered to guest VMs."""
        return ResourceVector(self.cpu_capacity, self.memory_capacity)

    @property
    def is_working_node(self) -> bool:
        return self.role is NodeRole.WORKING

    def __str__(self) -> str:
        return self.name


def make_working_nodes(
    count: int,
    cpu_capacity: int = 2,
    memory_capacity: int = 3584,
    prefix: str = "node",
) -> list[Node]:
    """Build ``count`` homogeneous working nodes named ``<prefix>-<i>``."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return [
        Node(
            name=f"{prefix}-{index}",
            cpu_capacity=cpu_capacity,
            memory_capacity=memory_capacity,
        )
        for index in range(count)
    ]
