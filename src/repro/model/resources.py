"""Resource vectors used throughout the cluster model.

The paper considers two resource dimensions (Section 3.2): the number of
processing units a VM demands and the amount of memory it is allocated.  The
viable-configuration problem is therefore a 2-dimensional vector bin-packing
problem.  :class:`ResourceVector` is a small immutable value type that keeps
the two dimensions together and supports the arithmetic the packing code needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True, order=False)
class ResourceVector:
    """An immutable (cpu, memory) pair.

    ``cpu`` counts processing units (the paper allocates entire cores to
    computing VMs) and ``memory`` is expressed in MB.
    """

    cpu: int = 0
    memory: int = 0

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(self.cpu + other.cpu, self.memory + other.memory)

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(self.cpu - other.cpu, self.memory - other.memory)

    def __mul__(self, factor: int) -> "ResourceVector":
        return ResourceVector(self.cpu * factor, self.memory * factor)

    __rmul__ = __mul__

    def __neg__(self) -> "ResourceVector":
        return ResourceVector(-self.cpu, -self.memory)

    # -- comparisons --------------------------------------------------------

    def fits_in(self, capacity: "ResourceVector") -> bool:
        """Return True when this demand fits inside ``capacity`` on both
        dimensions."""
        return self.cpu <= capacity.cpu and self.memory <= capacity.memory

    def dominates(self, other: "ResourceVector") -> bool:
        """Return True when this vector is at least as large as ``other`` on
        every dimension."""
        return self.cpu >= other.cpu and self.memory >= other.memory

    def is_non_negative(self) -> bool:
        return self.cpu >= 0 and self.memory >= 0

    def is_zero(self) -> bool:
        return self.cpu == 0 and self.memory == 0

    # -- helpers ------------------------------------------------------------

    def as_tuple(self) -> tuple[int, int]:
        return (self.cpu, self.memory)

    def __iter__(self) -> Iterator[int]:
        yield self.cpu
        yield self.memory

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ResourceVector(cpu={self.cpu}, memory={self.memory})"

    @staticmethod
    def total(vectors: Iterable["ResourceVector"]) -> "ResourceVector":
        """Sum an iterable of resource vectors."""
        acc = ResourceVector()
        for vector in vectors:
            acc = acc + vector
        return acc


#: A zero demand, used for idle/sleeping VMs which do not consume CPU.
ZERO = ResourceVector(0, 0)
