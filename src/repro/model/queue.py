"""FCFS submission queue of vjobs (Section 3.2).

The sample decision module relies on the queue provided by the FCFS policy:
vjobs are ordered by descending priority, i.e. by submission order.  Because
running vjobs may have to be re-evaluated when resources are freed, the whole
queue (running + ready vjobs) is considered at every decision round.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from .errors import DuplicateElementError, ModelError
from .vjob import VJob, VJobState


class VJobQueue:
    """An ordered collection of vjobs.

    The iteration order is the *priority order* used by the Running Job
    Selection Problem: ascending ``(priority, submitted_at, insertion rank)``.
    Terminated vjobs stay in the queue (so statistics can be computed) but are
    excluded from :meth:`pending`.
    """

    def __init__(self, vjobs: Iterable[VJob] = ()) -> None:
        self._vjobs: dict[str, VJob] = {}
        self._rank: dict[str, int] = {}
        self._counter = 0
        for vjob in vjobs:
            self.submit(vjob)

    # -- mutation ------------------------------------------------------------

    def submit(self, vjob: VJob) -> None:
        if vjob.name in self._vjobs:
            raise DuplicateElementError(f"vjob {vjob.name!r} already submitted")
        self._vjobs[vjob.name] = vjob
        self._rank[vjob.name] = self._counter
        self._counter += 1

    def remove(self, name: str) -> VJob:
        try:
            vjob = self._vjobs.pop(name)
        except KeyError:
            raise ModelError(f"unknown vjob {name!r}") from None
        self._rank.pop(name, None)
        return vjob

    # -- lookups ---------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._vjobs

    def __len__(self) -> int:
        return len(self._vjobs)

    def get(self, name: str) -> VJob:
        try:
            return self._vjobs[name]
        except KeyError:
            raise ModelError(f"unknown vjob {name!r}") from None

    def vjob_of_vm(self, vm_name: str) -> Optional[VJob]:
        for vjob in self._vjobs.values():
            if vm_name in vjob.vm_names:
                return vjob
        return None

    def _sort_key(self, vjob: VJob) -> tuple:
        return (vjob.priority, vjob.submitted_at, self._rank[vjob.name])

    def ordered(self) -> list[VJob]:
        """Every vjob in priority order, terminated ones included."""
        return sorted(self._vjobs.values(), key=self._sort_key)

    def pending(self) -> list[VJob]:
        """Non-terminated vjobs in priority order — the queue the RJSP scans."""
        return [vjob for vjob in self.ordered() if not vjob.is_terminated]

    def ready(self) -> list[VJob]:
        """Ready (waiting or sleeping) vjobs in priority order."""
        return [vjob for vjob in self.ordered() if vjob.is_ready]

    def running(self) -> list[VJob]:
        return [vjob for vjob in self.ordered() if vjob.state is VJobState.RUNNING]

    def terminated(self) -> list[VJob]:
        return [vjob for vjob in self.ordered() if vjob.is_terminated]

    def all_terminated(self) -> bool:
        return all(vjob.is_terminated for vjob in self._vjobs.values())

    def __iter__(self) -> Iterator[VJob]:
        return iter(self.ordered())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        states = {}
        for vjob in self._vjobs.values():
            states[vjob.state.value] = states.get(vjob.state.value, 0) + 1
        return f"<VJobQueue {len(self._vjobs)} vjobs {states}>"
