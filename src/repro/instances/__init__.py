"""The standalone benchmark suite: versioned instances, verifier, floors.

Three faces, in the astro-reason / BtrPlace lineage where the checker is
independent of the compiler:

* **instances** (:mod:`repro.instances.format`, :mod:`~repro.instances.ingest`)
  — fleet + vjobs + constraints + faults + seed as one canonical JSON
  document with a schema version and a content fingerprint; lossless round
  trips, cluster-trace CSV ingestion and capture of generated scenarios;
* **verifier** (:mod:`repro.instances.verifier`, the ``repro-verify``
  entry point) — scores any submitted plan or assignment against an
  instance using only the independent checker pipeline and the Table 1
  cost model, never the optimizer;
* **baseline floors** (:mod:`repro.instances.pack`,
  :mod:`repro.instances.baselines`) — a committed instance pack plus the
  scoreboard of every stock policy over it, the floors any submitted
  method must beat.

Exports resolve lazily (PEP 562): importing the format or the verifier
never loads the optimizer — ``baselines``/``pack`` helpers pull the
control loop only when actually called.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - static-analysis / IDE resolution only
    from .baselines import (
        BASELINE_POLICIES,
        baseline_scoreboard,
        floor_violations,
        load_scoreboard,
        scoreboard_to_json,
    )
    from .format import (
        FORMAT_NAME,
        SCHEMA_VERSION,
        Instance,
        InstanceFormatError,
        canonical_json,
        constraint_from_dict,
        constraint_to_dict,
        fingerprint_of,
        instance_from_dict,
        instance_to_json,
        load_instance,
        save_instance,
    )
    from .ingest import (
        instance_from_generated,
        instance_from_trace_csv,
        populated_instance_from_trace_csv,
        read_trace_rows,
        workloads_from_trace_rows,
    )
    from .pack import (
        PACK_DIR,
        SCOREBOARD_PATH,
        build_pack,
        load_pack_instance,
        pack_instance_names,
        write_pack,
    )
    from .verifier import (
        SubmissionError,
        VerificationReport,
        verify_submission,
    )

#: Export name -> defining submodule, resolved on first attribute access.
_EXPORTS = {
    "FORMAT_NAME": "format",
    "SCHEMA_VERSION": "format",
    "Instance": "format",
    "InstanceFormatError": "format",
    "canonical_json": "format",
    "constraint_from_dict": "format",
    "constraint_to_dict": "format",
    "fingerprint_of": "format",
    "instance_from_dict": "format",
    "instance_to_json": "format",
    "load_instance": "format",
    "save_instance": "format",
    "SubmissionError": "verifier",
    "VerificationReport": "verifier",
    "verify_submission": "verifier",
    "instance_from_generated": "ingest",
    "instance_from_trace_csv": "ingest",
    "populated_instance_from_trace_csv": "ingest",
    "read_trace_rows": "ingest",
    "workloads_from_trace_rows": "ingest",
    "PACK_DIR": "pack",
    "SCOREBOARD_PATH": "pack",
    "build_pack": "pack",
    "load_pack_instance": "pack",
    "pack_instance_names": "pack",
    "write_pack": "pack",
    "BASELINE_POLICIES": "baselines",
    "baseline_scoreboard": "baselines",
    "floor_violations": "baselines",
    "load_scoreboard": "baselines",
    "scoreboard_to_json": "baselines",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(importlib.import_module(f".{module_name}", __name__), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
