"""The versioned problem-instance format.

An *instance* is everything a solver needs to reproduce one experiment —
fleet, vjobs (with their demand traces), initial VM states and placement,
placement constraints, fault schedule and seed — serialized to a single
canonical JSON document.  The document carries a ``schema_version`` and a
content ``fingerprint`` (SHA-256 over the canonical serialization), so a
scoreboard entry can prove which exact problem it was scored against and CI
can detect silent drift of a committed pack.

Canonical form: ``json.dumps(..., sort_keys=True, separators=(",", ":"))``
over :meth:`Instance.to_dict`.  Saving, loading and saving again is
byte-identical (the property suite holds this), because every unordered
collection — constraint VM sets, node sets, ``Among`` groups — is serialized
sorted, and because :func:`save_instance` always emits the canonical bytes.

The module deliberately imports only the model, the constraint catalog, the
fault schedule and the trace types: loading an instance never touches the CP
solver or the optimizer, which is what keeps the standalone verifier
(:mod:`repro.instances.verifier`) method-independent.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence

from ..constraints import (
    Among,
    Ban,
    Fence,
    Gather,
    Lonely,
    MaxOnline,
    PlacementConstraint,
    Root,
    RunningCapacity,
    Spread,
)
from ..model.configuration import Configuration
from ..model.node import Node, NodeRole
from ..model.queue import VJobQueue
from ..model.vjob import VJob, VJobState
from ..model.vm import VirtualMachine, VMState
from ..sim.faults import FaultEvent, FaultKind, FaultSchedule
from ..workloads.traces import DemandTrace, Phase, VJobWorkload

#: Document marker: every instance file starts with ``"format": FORMAT_NAME``.
FORMAT_NAME = "repro-instance"
#: Current schema version; :func:`instance_from_dict` refuses any other.
SCHEMA_VERSION = 1


class InstanceFormatError(ValueError):
    """A document that is not a valid instance of the current schema.

    ``code`` is a stable machine-readable identifier (the CLI surfaces it in
    its structured error report): ``not-an-instance``,
    ``schema-version-mismatch``, ``invalid-field``, ``unknown-constraint``,
    ``fingerprint-mismatch``.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


def _require(payload: Mapping[str, Any], key: str, context: str) -> Any:
    if key not in payload:
        raise InstanceFormatError(
            "invalid-field", f"{context}: missing required field {key!r}"
        )
    return payload[key]


# --------------------------------------------------------------------- #
# the instance                                                           #
# --------------------------------------------------------------------- #


@dataclass
class Instance:
    """One versioned, self-contained problem instance.

    ``states``, ``placement`` and ``images`` describe the *initial* VM
    states: ``states`` only lists VMs that do not start Waiting,
    ``placement`` maps every initially-running VM to its host and ``images``
    maps every initially-sleeping VM to the node holding its suspend image.
    An all-waiting instance (the shipped pack) leaves all three empty —
    exactly the shape the control loop requires to run the instance as a
    scenario.
    """

    name: str
    seed: int
    nodes: tuple[Node, ...]
    workloads: tuple[VJobWorkload, ...]
    constraints: tuple[PlacementConstraint, ...] = ()
    faults: Optional[FaultSchedule] = None
    states: Mapping[str, VMState] = field(default_factory=dict)
    placement: Mapping[str, str] = field(default_factory=dict)
    images: Mapping[str, str] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        self.nodes = tuple(self.nodes)
        self.workloads = tuple(self.workloads)
        self.constraints = tuple(self.constraints)
        known_vms = {
            vm.name for w in self.workloads for vm in w.vjob.vms
        }
        known_nodes = {node.name for node in self.nodes}
        for vm_name in {*self.states, *self.placement, *self.images}:
            if vm_name not in known_vms:
                raise InstanceFormatError(
                    "invalid-field",
                    f"instance {self.name!r}: initial state names unknown "
                    f"VM {vm_name!r}",
                )
        for vm_name, node_name in {**self.placement, **self.images}.items():
            if node_name not in known_nodes:
                raise InstanceFormatError(
                    "invalid-field",
                    f"instance {self.name!r}: VM {vm_name!r} is mapped to "
                    f"unknown node {node_name!r}",
                )

    # -- derived views --------------------------------------------------- #

    @property
    def vm_count(self) -> int:
        return sum(len(w.vjob.vms) for w in self.workloads)

    def state_of(self, vm_name: str) -> VMState:
        return self.states.get(vm_name, VMState.WAITING)

    def configuration(self) -> Configuration:
        """A fresh :class:`~repro.model.configuration.Configuration` of the
        instance's initial state.  VMs are applied in sorted-name order so
        the built configuration is identical no matter how the instance was
        produced (authored, generated or loaded)."""
        configuration = Configuration(nodes=self.nodes)
        for workload in self.workloads:
            for vm in workload.vjob.vms:
                configuration.add_vm(vm)
        for vm_name in sorted(
            vm.name for w in self.workloads for vm in w.vjob.vms
        ):
            state = self.state_of(vm_name)
            if state is VMState.RUNNING:
                configuration.set_running(vm_name, self.placement[vm_name])
            elif state is VMState.SLEEPING:
                configuration.set_sleeping(
                    vm_name, self.images.get(vm_name)
                )
            elif state is VMState.TERMINATED:
                configuration.set_terminated(vm_name)
        return configuration

    def queue(self) -> VJobQueue:
        """A fresh submission queue over the instance's vjobs."""
        queue = VJobQueue()
        for workload in self.workloads:
            queue.submit(workload.vjob)
        return queue

    def fresh_workloads(self) -> list[VJobWorkload]:
        """Deep, independent copies of the workloads.

        A control-loop run mutates vjob state, so every
        :meth:`scenario` build hands out fresh objects and the instance
        itself stays pristine.
        """
        return [_workload_from_dict(_workload_to_dict(w)) for w in self.workloads]

    def scenario(self, **options: Any) -> Any:
        """Build a runnable :class:`~repro.api.scenario.Scenario` over this
        instance (fresh workloads, the instance's faults and constraints).

        The import is deferred on purpose: the scenario facade pulls the
        control loop and the optimizer, which the verifier path must never
        load.  Keyword ``options`` are forwarded to ``Scenario``.
        """
        from ..api.scenario import Scenario  # deferred: optimizer-heavy

        if any(self.state_of(vm) is not VMState.WAITING
               for w in self.workloads for vm in (v.name for v in w.vjob.vms)):
            raise InstanceFormatError(
                "invalid-field",
                f"instance {self.name!r} has non-waiting initial VM states "
                "and cannot run as a scenario (the control loop starts from "
                "an all-waiting queue); use the verifier instead",
            )
        options.setdefault("faults", self.faults)
        options.setdefault("constraints", self.constraints)
        return Scenario(
            nodes=list(self.nodes),
            workloads=self.fresh_workloads(),
            **options,
        )

    # -- serialization ---------------------------------------------------- #

    def to_dict(self) -> dict[str, Any]:
        """The JSON-safe document *without* its fingerprint (the fingerprint
        is computed over exactly this shape)."""
        return {
            "format": FORMAT_NAME,
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "nodes": [_node_to_dict(node) for node in self.nodes],
            "vjobs": [_workload_to_dict(w) for w in self.workloads],
            "initial": {
                "states": {
                    vm: state.value
                    for vm, state in sorted(self.states.items())
                    if state is not VMState.WAITING
                },
                "placement": dict(sorted(self.placement.items())),
                "images": dict(sorted(self.images.items())),
            },
            "constraints": [
                constraint_to_dict(c) for c in self.constraints
            ],
            "faults": _faults_to_dict(self.faults),
        }

    @property
    def fingerprint(self) -> str:
        return fingerprint_of(self.to_dict())

    def document(self) -> dict[str, Any]:
        """The full document including the content fingerprint."""
        data = self.to_dict()
        data["fingerprint"] = fingerprint_of(data)
        return data


# --------------------------------------------------------------------- #
# canonical JSON + fingerprint                                           #
# --------------------------------------------------------------------- #


def canonical_json(data: Mapping[str, Any]) -> str:
    """The canonical serialization fingerprints are computed over."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def fingerprint_of(data: Mapping[str, Any]) -> str:
    """``sha256:<hex>`` over the canonical JSON of ``data`` (any
    ``fingerprint`` field is excluded first, so fingerprinting is
    idempotent)."""
    body = {k: v for k, v in data.items() if k != "fingerprint"}
    digest = hashlib.sha256(canonical_json(body).encode("ascii")).hexdigest()
    return f"sha256:{digest}"


# --------------------------------------------------------------------- #
# component codecs                                                       #
# --------------------------------------------------------------------- #


def _node_to_dict(node: Node) -> dict[str, Any]:
    return {
        "name": node.name,
        "cpu_capacity": node.cpu_capacity,
        "memory_capacity": node.memory_capacity,
        "role": node.role.value,
    }


def _node_from_dict(payload: Mapping[str, Any]) -> Node:
    try:
        role = NodeRole(payload.get("role", NodeRole.WORKING.value))
    except ValueError:
        raise InstanceFormatError(
            "invalid-field", f"node: unknown role {payload.get('role')!r}"
        ) from None
    return Node(
        name=_require(payload, "name", "node"),
        cpu_capacity=int(_require(payload, "cpu_capacity", "node")),
        memory_capacity=int(_require(payload, "memory_capacity", "node")),
        role=role,
    )


def _workload_to_dict(workload: VJobWorkload) -> dict[str, Any]:
    vjob = workload.vjob
    return {
        "name": vjob.name,
        "priority": vjob.priority,
        "submitted_at": vjob.submitted_at,
        "vms": [
            {
                "name": vm.name,
                "memory": vm.memory,
                "cpu_demand": vm.cpu_demand,
            }
            for vm in vjob.vms
        ],
        "traces": {
            name: [[phase.duration, phase.cpu_demand] for phase in trace.phases]
            for name, trace in sorted(workload.traces.items())
        },
    }


def _workload_from_dict(payload: Mapping[str, Any]) -> VJobWorkload:
    name = _require(payload, "name", "vjob")
    vms = []
    for vm_spec in _require(payload, "vms", f"vjob {name!r}"):
        vms.append(
            VirtualMachine(
                name=_require(vm_spec, "name", f"vjob {name!r} VM"),
                memory=int(_require(vm_spec, "memory", f"vjob {name!r} VM")),
                cpu_demand=int(vm_spec.get("cpu_demand", 0)),
                vjob=name,
            )
        )
    vjob = VJob(
        name=name,
        vms=vms,
        priority=int(payload.get("priority", 0)),
        submitted_at=float(payload.get("submitted_at", 0.0)),
    )
    traces: dict[str, DemandTrace] = {}
    for vm_name, segments in _require(payload, "traces", f"vjob {name!r}").items():
        phases = []
        for segment in segments:
            if not isinstance(segment, (list, tuple)) or len(segment) != 2:
                raise InstanceFormatError(
                    "invalid-field",
                    f"vjob {name!r}: trace segments are "
                    f"[duration, cpu_demand] pairs, got {segment!r}",
                )
            phases.append(
                Phase(duration=float(segment[0]), cpu_demand=int(segment[1]))
            )
        traces[vm_name] = DemandTrace(phases)
    try:
        return VJobWorkload(vjob=vjob, traces=traces)
    except ValueError as exc:
        raise InstanceFormatError("invalid-field", f"vjob {name!r}: {exc}") from None


#: Constraint kind -> (class, encoder).  Decoding dispatches on the same
#: kind strings; the sorted-list encoding is what makes round trips
#: byte-stable despite the frozensets underneath.
def constraint_to_dict(constraint: PlacementConstraint) -> dict[str, Any]:
    """One catalog constraint as a JSON-safe dict (``kind`` + its sets,
    every set sorted)."""
    if isinstance(constraint, Spread):
        return {
            "kind": "spread",
            "vms": sorted(constraint.vm_set),
            "collocation_nodes": sorted(constraint.collocation_nodes),
        }
    if isinstance(constraint, Gather):
        return {"kind": "gather", "vms": sorted(constraint.vm_set)}
    if isinstance(constraint, Ban):
        return {
            "kind": "ban",
            "vms": sorted(constraint.vm_set),
            "nodes": sorted(constraint.nodes),
        }
    if isinstance(constraint, Fence):
        return {
            "kind": "fence",
            "vms": sorted(constraint.vm_set),
            "nodes": sorted(constraint.nodes),
            "elastic": constraint.elastic,
        }
    if isinstance(constraint, Among):
        return {
            "kind": "among",
            "vms": sorted(constraint.vm_set),
            "groups": sorted(sorted(group) for group in constraint.groups),
        }
    if isinstance(constraint, Root):
        return {"kind": "root", "vms": sorted(constraint.vm_set)}
    if isinstance(constraint, Lonely):
        return {"kind": "lonely", "vms": sorted(constraint.vm_set)}
    if isinstance(constraint, MaxOnline):
        return {
            "kind": "max_online",
            "nodes": sorted(constraint.nodes),
            "maximum": constraint.maximum,
        }
    if isinstance(constraint, RunningCapacity):
        return {
            "kind": "running_capacity",
            "nodes": sorted(constraint.nodes),
            "maximum": constraint.maximum,
        }
    raise InstanceFormatError(
        "unknown-constraint",
        f"constraint {type(constraint).__name__!r} has no instance encoding",
    )


def constraint_from_dict(payload: Mapping[str, Any]) -> PlacementConstraint:
    """Inverse of :func:`constraint_to_dict`; raises
    :class:`InstanceFormatError` (code ``unknown-constraint``) on an
    unrecognized ``kind``."""
    kind = _require(payload, "kind", "constraint")
    try:
        if kind == "spread":
            return Spread(
                _require(payload, "vms", "spread"),
                collocation_nodes=payload.get("collocation_nodes", ()),
            )
        if kind == "gather":
            return Gather(_require(payload, "vms", "gather"))
        if kind == "ban":
            return Ban(
                _require(payload, "vms", "ban"),
                _require(payload, "nodes", "ban"),
            )
        if kind == "fence":
            return Fence(
                _require(payload, "vms", "fence"),
                _require(payload, "nodes", "fence"),
                elastic=bool(payload.get("elastic", False)),
            )
        if kind == "among":
            return Among(
                _require(payload, "vms", "among"),
                _require(payload, "groups", "among"),
            )
        if kind == "root":
            return Root(_require(payload, "vms", "root"))
        if kind == "lonely":
            return Lonely(_require(payload, "vms", "lonely"))
        if kind == "max_online":
            return MaxOnline(
                _require(payload, "nodes", "max_online"),
                int(_require(payload, "maximum", "max_online")),
            )
        if kind == "running_capacity":
            return RunningCapacity(
                _require(payload, "nodes", "running_capacity"),
                int(_require(payload, "maximum", "running_capacity")),
            )
    except InstanceFormatError:
        raise
    except ValueError as exc:
        raise InstanceFormatError(
            "invalid-field", f"constraint {kind!r}: {exc}"
        ) from None
    raise InstanceFormatError(
        "unknown-constraint", f"constraint: unknown kind {kind!r}"
    )


def _faults_to_dict(schedule: Optional[FaultSchedule]) -> Optional[dict[str, Any]]:
    if schedule is None:
        return None
    events = []
    for event in schedule.events:
        data: dict[str, Any] = {
            "time": event.time,
            "kind": event.kind.value,
            "target": event.target,
        }
        if event.kind is FaultKind.NODE_SLOWDOWN:
            data["factor"] = event.factor
            data["duration"] = event.duration
        events.append(data)
    return {
        "seed": schedule.seed,
        "migration_failure_rate": schedule.migration_failure_rate,
        "events": events,
    }


def _faults_from_dict(
    payload: Optional[Mapping[str, Any]],
) -> Optional[FaultSchedule]:
    if payload is None:
        return None
    events = []
    for spec in payload.get("events", ()):
        kind_value = _require(spec, "kind", "fault event")
        try:
            kind = FaultKind(kind_value)
        except ValueError:
            raise InstanceFormatError(
                "invalid-field", f"fault event: unknown kind {kind_value!r}"
            ) from None
        events.append(
            FaultEvent(
                time=float(_require(spec, "time", "fault event")),
                kind=kind,
                target=_require(spec, "target", "fault event"),
                factor=float(spec.get("factor", 1.0)),
                duration=float(spec.get("duration", 0.0)),
            )
        )
    return FaultSchedule(
        events=events,
        migration_failure_rate=float(payload.get("migration_failure_rate", 0.0)),
        seed=int(payload.get("seed", 0)),
    )


# --------------------------------------------------------------------- #
# the document codec                                                     #
# --------------------------------------------------------------------- #


def instance_from_dict(payload: Mapping[str, Any]) -> Instance:
    """Build an :class:`Instance` from its document form.

    Validates the format marker and the schema version first (codes
    ``not-an-instance`` / ``schema-version-mismatch``), then every
    component; a present ``fingerprint`` field is *not* checked here —
    :func:`load_instance` owns that policy.
    """
    if not isinstance(payload, Mapping) or payload.get("format") != FORMAT_NAME:
        raise InstanceFormatError(
            "not-an-instance",
            f"document is not a {FORMAT_NAME!r} instance "
            f"(format={payload.get('format')!r})"
            if isinstance(payload, Mapping)
            else "document is not a JSON object",
        )
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise InstanceFormatError(
            "schema-version-mismatch",
            f"instance schema version {version!r} is not supported "
            f"(expected {SCHEMA_VERSION})",
        )
    workloads = [
        _workload_from_dict(spec)
        for spec in _require(payload, "vjobs", "instance")
    ]
    initial = payload.get("initial", {})
    states = {}
    for vm_name, value in initial.get("states", {}).items():
        try:
            states[vm_name] = VMState(value)
        except ValueError:
            raise InstanceFormatError(
                "invalid-field",
                f"initial state of {vm_name!r}: unknown state {value!r}",
            ) from None
    _align_vjob_states(workloads, states)
    try:
        return Instance(
            name=_require(payload, "name", "instance"),
            description=payload.get("description", ""),
            seed=int(_require(payload, "seed", "instance")),
            nodes=tuple(
                _node_from_dict(spec)
                for spec in _require(payload, "nodes", "instance")
            ),
            workloads=tuple(workloads),
            constraints=tuple(
                constraint_from_dict(spec)
                for spec in payload.get("constraints", ())
            ),
            faults=_faults_from_dict(payload.get("faults")),
            states=states,
            placement=dict(initial.get("placement", {})),
            images=dict(initial.get("images", {})),
        )
    except InstanceFormatError:
        raise
    except (TypeError, ValueError) as exc:
        raise InstanceFormatError("invalid-field", f"instance: {exc}") from None


def _align_vjob_states(
    workloads: Sequence[VJobWorkload], states: Mapping[str, VMState]
) -> None:
    """Walk each vjob's life cycle to match its VMs' initial states (all the
    VMs of a vjob share a state — the Section 4.1 consistency requirement)."""
    for workload in workloads:
        vm_states = {states.get(vm, VMState.WAITING) for vm in workload.vjob.vm_names}
        if len(vm_states) > 1:
            raise InstanceFormatError(
                "invalid-field",
                f"vjob {workload.vjob.name!r}: its VMs disagree on the "
                f"initial state ({sorted(s.value for s in vm_states)}); "
                "vjob consistency requires one state per vjob",
            )
        state = vm_states.pop()
        if state is VMState.RUNNING:
            workload.vjob.run()
        elif state is VMState.SLEEPING:
            workload.vjob.run()
            workload.vjob.suspend()
        elif state is VMState.TERMINATED:
            workload.vjob.terminate()


def instance_to_json(instance: Instance, indent: Optional[int] = None) -> str:
    """The instance document (fingerprint included) as a JSON string.

    ``indent=None`` gives the canonical compact bytes that
    :func:`save_instance` writes; any indentation keeps ``sort_keys`` so the
    output is still deterministic.
    """
    document = instance.document()
    if indent is None:
        return canonical_json(document)
    return json.dumps(document, sort_keys=True, indent=indent)


def save_instance(instance: Instance, path: str | Path) -> str:
    """Write the canonical document to ``path``; returns the fingerprint."""
    document = instance.document()
    Path(path).write_text(canonical_json(document) + "\n")
    return document["fingerprint"]


def load_instance(path: str | Path, verify_fingerprint: bool = True) -> Instance:
    """Load an instance file, checking its embedded fingerprint.

    A missing fingerprint is accepted (hand-authored files); a *wrong* one
    raises ``fingerprint-mismatch`` unless ``verify_fingerprint`` is off —
    a tampered or hand-edited pack must not score silently.
    """
    text = Path(path).read_text()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise InstanceFormatError(
            "malformed-json", f"{path}: not valid JSON ({exc})"
        ) from None
    instance = instance_from_dict(payload)
    claimed = payload.get("fingerprint")
    if verify_fingerprint and claimed is not None:
        actual = instance.fingerprint
        if claimed != actual:
            raise InstanceFormatError(
                "fingerprint-mismatch",
                f"{path}: document claims fingerprint {claimed} but its "
                f"content hashes to {actual}",
            )
    return instance
