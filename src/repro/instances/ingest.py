"""Real-world-derived instances: cluster-trace CSV ingestion.

The paper's generator (:class:`~repro.workloads.generator.
TraceConfigurationGenerator`) draws synthetic Section 5.1 scenarios; this
module feeds it *measured* rows instead, so instances can be derived from
cluster-trace-style data (one CSV row per VM)::

    vjob,vm,memory_mb,phases,priority,submitted_at
    render,render.vm0,1024,120:1;60:0;240:1,0,0.0
    render,render.vm1,512,300:1,0,0.0
    db,db.vm0,2048,600:1,1,30.0

``phases`` is a ``;``-separated list of ``duration:cpu_demand`` segments —
exactly the :class:`~repro.workloads.traces.DemandTrace` shape.  The
``priority`` and ``submitted_at`` columns are optional and default to the
row order and ``0.0``.

Two entry points:

* :func:`instance_from_trace_csv` — all-waiting instance over a fleet you
  describe (the shape the control loop runs directly);
* :func:`instance_from_generated` — capture any
  :class:`~repro.workloads.generator.GeneratedScenario` (including one whose
  initial placement was drawn by
  :meth:`~repro.workloads.generator.TraceConfigurationGenerator.populate`
  over trace-derived workloads) as a verifiable instance with running and
  sleeping VMs.
"""

from __future__ import annotations

import csv
import random
from pathlib import Path
from typing import Iterable, Mapping, Optional, Sequence, Union

from ..constraints import PlacementConstraint
from ..model.node import Node, make_working_nodes
from ..model.vjob import VJob
from ..model.vm import VirtualMachine, VMState
from ..sim.faults import FaultSchedule
from ..workloads.generator import GeneratedScenario, TraceConfigurationGenerator
from ..workloads.traces import DemandTrace, Phase, VJobWorkload
from .format import Instance, InstanceFormatError

#: The columns :func:`read_trace_rows` requires on every row.
REQUIRED_COLUMNS = ("vjob", "vm", "memory_mb", "phases")


def _parse_phases(spec: str, context: str) -> DemandTrace:
    phases = []
    for segment in spec.split(";"):
        segment = segment.strip()
        if not segment:
            continue
        parts = segment.split(":")
        if len(parts) != 2:
            raise InstanceFormatError(
                "invalid-field",
                f"{context}: phase segment {segment!r} is not "
                "'duration:cpu_demand'",
            )
        try:
            phases.append(
                Phase(duration=float(parts[0]), cpu_demand=int(parts[1]))
            )
        except ValueError as exc:
            raise InstanceFormatError(
                "invalid-field", f"{context}: {exc}"
            ) from None
    if not phases:
        raise InstanceFormatError(
            "invalid-field", f"{context}: at least one phase is required"
        )
    return DemandTrace(phases)


def read_trace_rows(
    source: Union[str, Path, Iterable[str]],
) -> list[dict[str, str]]:
    """Parse cluster-trace CSV rows (a path or an iterable of lines).

    Validates the header and returns plain dict rows; workload assembly is
    :func:`workloads_from_trace_rows`' job.
    """
    if isinstance(source, (str, Path)):
        lines: Iterable[str] = Path(source).read_text().splitlines()
    else:
        lines = source
    reader = csv.DictReader(lines)
    if reader.fieldnames is None:
        raise InstanceFormatError("invalid-field", "trace CSV: empty input")
    missing = [c for c in REQUIRED_COLUMNS if c not in reader.fieldnames]
    if missing:
        raise InstanceFormatError(
            "invalid-field",
            f"trace CSV: missing required columns {missing} "
            f"(got {reader.fieldnames})",
        )
    return list(reader)


def workloads_from_trace_rows(
    rows: Sequence[Mapping[str, str]],
) -> list[VJobWorkload]:
    """Group trace rows by vjob and assemble one workload per vjob.

    Rows of one vjob may be scattered through the file; the vjob's
    ``priority``/``submitted_at`` come from its first row, and the initial
    CPU demand of each VM is its first trace phase's demand (matching the
    synthetic generator).
    """
    order: list[str] = []
    grouped: dict[str, list[Mapping[str, str]]] = {}
    for row in rows:
        vjob_name = (row.get("vjob") or "").strip()
        if not vjob_name:
            raise InstanceFormatError(
                "invalid-field", f"trace CSV: row without a vjob name: {row}"
            )
        if vjob_name not in grouped:
            order.append(vjob_name)
        grouped.setdefault(vjob_name, []).append(row)

    workloads = []
    for index, vjob_name in enumerate(order):
        vms = []
        traces: dict[str, DemandTrace] = {}
        first = grouped[vjob_name][0]
        for row in grouped[vjob_name]:
            vm_name = (row.get("vm") or "").strip()
            if not vm_name:
                raise InstanceFormatError(
                    "invalid-field",
                    f"trace CSV: vjob {vjob_name!r} row without a VM name",
                )
            trace = _parse_phases(
                row["phases"], f"trace CSV: VM {vm_name!r}"
            )
            try:
                memory = int(row["memory_mb"])
            except ValueError:
                raise InstanceFormatError(
                    "invalid-field",
                    f"trace CSV: VM {vm_name!r}: memory_mb must be an "
                    f"integer, got {row['memory_mb']!r}",
                ) from None
            vms.append(
                VirtualMachine(
                    name=vm_name,
                    memory=memory,
                    cpu_demand=trace.phases[0].cpu_demand,
                    vjob=vjob_name,
                )
            )
            traces[vm_name] = trace
        vjob = VJob(
            name=vjob_name,
            vms=vms,
            priority=int(first.get("priority") or index),
            submitted_at=float(first.get("submitted_at") or 0.0),
        )
        workloads.append(VJobWorkload(vjob=vjob, traces=traces))
    return workloads


def instance_from_trace_csv(
    source: Union[str, Path, Iterable[str]],
    name: str,
    seed: int = 0,
    nodes: Optional[Sequence[Node]] = None,
    node_count: int = 8,
    node_cpu: int = 2,
    node_memory: int = 3584,
    constraints: Sequence[PlacementConstraint] = (),
    faults: Optional[FaultSchedule] = None,
    description: str = "",
) -> Instance:
    """Build an all-waiting instance from cluster-trace CSV rows.

    Without explicit ``nodes`` a homogeneous fleet of ``node_count`` working
    nodes is built (the Section 5.1 defaults).  The result runs directly as
    a scenario and verifies like any other instance.
    """
    workloads = workloads_from_trace_rows(read_trace_rows(source))
    fleet = (
        tuple(nodes)
        if nodes is not None
        else tuple(
            make_working_nodes(
                node_count, cpu_capacity=node_cpu, memory_capacity=node_memory
            )
        )
    )
    return Instance(
        name=name,
        description=description,
        seed=seed,
        nodes=fleet,
        workloads=tuple(workloads),
        constraints=tuple(constraints),
        faults=faults,
    )


def populated_instance_from_trace_csv(
    source: Union[str, Path, Iterable[str]],
    name: str,
    seed: int = 0,
    node_count: int = 8,
    node_cpu: int = 2,
    node_memory: int = 3584,
    constraints: Sequence[PlacementConstraint] = (),
    faults: Optional[FaultSchedule] = None,
    description: str = "",
) -> Instance:
    """Trace-derived instance whose *initial placement* is drawn by the
    Section 5.1 generator.

    The trace rows provide the vjobs; the
    :class:`~repro.workloads.generator.TraceConfigurationGenerator` then
    draws each vjob's initial state (running / sleeping / waiting) and a
    memory-only placement from ``seed`` via its public
    :meth:`~repro.workloads.generator.TraceConfigurationGenerator.populate`
    face — the verifier-oriented shape (plans must fix the CPU overloads the
    placement allows)."""
    from ..model.configuration import Configuration
    from ..model.queue import VJobQueue

    workloads = workloads_from_trace_rows(read_trace_rows(source))
    generator = TraceConfigurationGenerator(
        node_count=node_count,
        node_cpu=node_cpu,
        node_memory=node_memory,
        seed=seed,
    )
    nodes = make_working_nodes(
        node_count, cpu_capacity=node_cpu, memory_capacity=node_memory
    )
    configuration = Configuration(nodes=nodes)
    queue = VJobQueue()
    for workload in workloads:
        queue.submit(workload.vjob)
    generator.populate(configuration, workloads, rng=random.Random(seed))
    generated = GeneratedScenario(
        configuration=configuration, queue=queue, workloads=workloads
    )
    return instance_from_generated(
        generated,
        name=name,
        seed=seed,
        constraints=constraints,
        faults=faults,
        description=description,
    )


def instance_from_generated(
    generated: GeneratedScenario,
    name: str,
    seed: int,
    constraints: Sequence[PlacementConstraint] = (),
    faults: Optional[FaultSchedule] = None,
    description: str = "",
) -> Instance:
    """Capture a generated scenario — fleet, vjobs, *and* its drawn initial
    states/placement — as a versioned instance."""
    configuration = generated.configuration
    states: dict[str, VMState] = {}
    placement: dict[str, str] = {}
    images: dict[str, str] = {}
    for vm in configuration.vm_names:
        state = configuration.state_of(vm)
        if state is not VMState.WAITING:
            states[vm] = state
        if state is VMState.RUNNING:
            location = configuration.location_of(vm)
            assert location is not None
            placement[vm] = location
        elif state is VMState.SLEEPING:
            image = configuration.image_location_of(vm)
            if image is not None:
                images[vm] = image
    return Instance(
        name=name,
        description=description,
        seed=seed,
        nodes=tuple(configuration.nodes),
        workloads=tuple(generated.workloads),
        constraints=tuple(constraints),
        faults=faults,
        states=states,
        placement=placement,
        images=images,
    )
