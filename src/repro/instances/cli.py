"""``repro-verify``: score a submitted plan against an instance file.

Usage::

    repro-verify INSTANCE.json SUBMISSION.json [--report out.json] [--quiet]
    repro-verify INSTANCE.json --fingerprint

Exit status:

* ``0`` — the submission was scored and **passed** (feasible, viable, no
  constraint violation at any stage);
* ``1`` — the submission was scored and **failed**; the report says why;
* ``2`` — the submission (or the instance) could not be scored at all:
  malformed JSON, schema-version mismatch, truncated plan, unknown
  constraint/VM/node...  A structured error report
  ``{"error": {"code": ..., "message": ...}}`` is printed so drivers can
  dispatch on the stable ``code``.

The full scored report is printed as deterministic JSON (sorted keys) on
stdout, or written to ``--report`` with only a one-line verdict on stdout.
The verifier never imports the optimizer — see
:mod:`repro.instances.verifier`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Optional, Sequence

from .format import InstanceFormatError, load_instance
from .verifier import SubmissionError, verify_submission

#: CLI exit codes (also used by ``tools/verify_smoke.py``).
EXIT_PASSED = 0
EXIT_FAILED = 1
EXIT_ERROR = 2


def _emit(data: Any, stream: Any = None) -> None:
    print(json.dumps(data, sort_keys=True, indent=2), file=stream or sys.stdout)


def _error(code: str, message: str) -> int:
    _emit({"error": {"code": code, "message": message}})
    return EXIT_ERROR


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description=(
            "Score a submitted reconfiguration plan or assignment against a "
            "versioned problem instance, using only the independent checker "
            "pipeline (never the optimizer)."
        ),
    )
    parser.add_argument("instance", help="path to the instance JSON document")
    parser.add_argument(
        "submission",
        nargs="?",
        help="path to the submission JSON (a 'plan' or an 'assignment')",
    )
    parser.add_argument(
        "--fingerprint",
        action="store_true",
        help="print the instance's content fingerprint and exit",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        help="write the full JSON report here instead of stdout",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="only the verdict line (implies nothing about the exit status)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    try:
        instance = load_instance(args.instance)
    except FileNotFoundError:
        return _error("missing-file", f"instance file not found: {args.instance}")
    except InstanceFormatError as exc:
        return _error(exc.code, exc.message)

    if args.fingerprint:
        print(instance.fingerprint)
        return EXIT_PASSED

    if args.submission is None:
        return _error(
            "malformed-submission",
            "a submission file is required (or pass --fingerprint)",
        )
    try:
        submission = json.loads(Path(args.submission).read_text())
    except FileNotFoundError:
        return _error(
            "missing-file", f"submission file not found: {args.submission}"
        )
    except json.JSONDecodeError as exc:
        return _error(
            "malformed-json", f"{args.submission}: not valid JSON ({exc})"
        )

    try:
        report = verify_submission(instance, submission)
    except SubmissionError as exc:
        return _error(exc.code, exc.message)
    except InstanceFormatError as exc:
        return _error(exc.code, exc.message)

    payload = report.to_dict()
    if args.report:
        Path(args.report).write_text(
            json.dumps(payload, sort_keys=True, indent=2) + "\n"
        )
    verdict = "PASSED" if report.passed else "FAILED"
    if args.report or args.quiet:
        print(
            f"{verdict} {report.instance}: cost={report.switch_cost} "
            f"migrations={report.migrations} "
            f"violations={len(report.constraint_violations)}"
        )
    else:
        _emit(payload)
    return EXIT_PASSED if report.passed else EXIT_FAILED


if __name__ == "__main__":  # pragma: no cover - exercised via the entry point
    raise SystemExit(main())
