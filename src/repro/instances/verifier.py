"""The standalone, method-independent plan verifier.

:func:`verify_submission` scores a submitted reconfiguration *plan* or
target *assignment* against an :class:`~repro.instances.format.Instance`
using only the independent pipeline — the constraint checker
(:mod:`repro.constraints.checker`), configuration viability
(:meth:`~repro.model.configuration.Configuration.viability_violations`)
and the Table 1 cost model (:mod:`repro.core.cost`).  The CP solver and the
optimizer are never imported: a test holds ``repro.cp`` and
``repro.core.optimizer`` out of ``sys.modules`` across a verification, so a
submission produced by *any* method (this repo's optimizer, another solver,
a hand-written plan) is judged by the same referee.

Two submission shapes are accepted:

``{"plan": {"pools": [[{action}, ...], ...]}}``
    Ordered pools of parallel actions (the audit-log serialization).  The
    verifier replays the pools against the instance's initial
    configuration, checking feasibility pool by pool, continuous constraint
    satisfaction at every pool boundary, final viability, and the full
    Table 1 cost (local costs plus delay costs; the makespan is the sum of
    the pool costs).

``{"assignment": {"placement": {vm: node, ...}}}``
    A target placement only.  Every listed VM must end Running on its node;
    unlisted VMs keep their initial state.  The verifier checks viability
    and constraints on the target and charges the Table 1 *lower bound* to
    reach it (migrate = Dm, local resume = Dm, remote resume = 2·Dm,
    run/stop = 0).

Malformed submissions raise :class:`SubmissionError` with a stable machine
code; the CLI maps those to exit status 2 and a structured JSON report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from ..constraints.checker import Violation, check_configuration, check_plan, plan_stages
from ..core.actions import Action, ActionKind, Migrate, Resume, Run, Stop, Suspend
from ..core.cost import plan_cost
from ..core.plan import Pool, ReconfigurationPlan
from ..model.configuration import Configuration
from ..model.errors import PlanningError, ReproError
from ..model.vm import VMState
from .format import Instance

#: Document marker for submission files (optional but recommended).
SUBMISSION_FORMAT = "repro-submission"


class SubmissionError(Exception):
    """A submission that cannot be scored at all.

    ``code`` is stable and machine-readable: ``malformed-submission``,
    ``truncated-plan``, ``unknown-action``, ``unknown-vm``,
    ``unknown-node``, ``instance-mismatch``.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message

    def to_dict(self) -> dict[str, Any]:
        return {"error": {"code": self.code, "message": self.message}}


@dataclass(frozen=True)
class VerificationReport:
    """The scored verdict on one submission.

    ``passed`` is the headline: the submission is feasible, every
    intermediate and final state is viable, and no placement constraint is
    broken at any stage.  The cost fields always report Table 1 numbers so
    scoreboards can compare submissions that *pass* by cost.
    """

    instance: str
    fingerprint: str
    kind: str
    feasible: bool
    infeasibility: Optional[str]
    viability_violations: tuple[str, ...]
    constraint_violations: tuple[Violation, ...]
    actions: int
    migrations: int
    switch_cost: int
    minimum_cost: int
    makespan: int
    metadata: Mapping[str, Any] = field(default_factory=dict)

    @property
    def viable(self) -> bool:
        return not self.viability_violations

    @property
    def passed(self) -> bool:
        return self.feasible and self.viable and not self.constraint_violations

    def to_dict(self) -> dict[str, Any]:
        """The JSON report the CLI emits (deterministic under
        ``sort_keys``)."""
        return {
            "instance": self.instance,
            "fingerprint": self.fingerprint,
            "kind": self.kind,
            "passed": self.passed,
            "feasible": self.feasible,
            "infeasibility": self.infeasibility,
            "viable": self.viable,
            "viability_violations": list(self.viability_violations),
            "constraint_violations": [
                {
                    "constraint": v.constraint,
                    "message": v.message,
                    "stage": v.stage,
                }
                for v in self.constraint_violations
            ],
            "actions": self.actions,
            "migrations": self.migrations,
            "switch_cost": self.switch_cost,
            "minimum_cost": self.minimum_cost,
            "makespan": self.makespan,
            **({"metadata": dict(self.metadata)} if self.metadata else {}),
        }


# --------------------------------------------------------------------- #
# submission decoding                                                    #
# --------------------------------------------------------------------- #


def _require(payload: Mapping[str, Any], key: str, context: str) -> Any:
    if not isinstance(payload, Mapping) or key not in payload:
        raise SubmissionError(
            "truncated-plan", f"{context}: missing required field {key!r}"
        )
    return payload[key]


def _action_from_dict(payload: Mapping[str, Any], context: str) -> Action:
    kind = _require(payload, "kind", context)
    vm = _require(payload, "vm", context)
    if kind == "run":
        return Run(vm=vm, node=_require(payload, "node", f"{context} run"))
    if kind == "stop":
        return Stop(vm=vm, node=_require(payload, "node", f"{context} stop"))
    if kind == "suspend":
        return Suspend(
            vm=vm, node=_require(payload, "node", f"{context} suspend")
        )
    if kind == "migrate":
        return Migrate(
            vm=vm,
            source_node=_require(payload, "source", f"{context} migrate"),
            destination_node=_require(
                payload, "destination", f"{context} migrate"
            ),
        )
    if kind == "resume":
        return Resume(
            vm=vm,
            image_node=payload.get("image_node"),
            destination_node=_require(
                payload, "destination", f"{context} resume"
            ),
        )
    raise SubmissionError(
        "unknown-action", f"{context}: unknown action kind {kind!r}"
    )


def _decode_plan(
    payload: Mapping[str, Any], source: Configuration
) -> ReconfigurationPlan:
    pools_spec = _require(payload, "pools", "plan")
    if not isinstance(pools_spec, (list, tuple)):
        raise SubmissionError(
            "truncated-plan", "plan: 'pools' must be a list of action lists"
        )
    plan = ReconfigurationPlan(source=source)
    for index, pool_spec in enumerate(pools_spec):
        if not isinstance(pool_spec, (list, tuple)):
            raise SubmissionError(
                "truncated-plan",
                f"plan pool {index}: expected a list of actions, "
                f"got {type(pool_spec).__name__}",
            )
        pool = Pool()
        for action_spec in pool_spec:
            action = _action_from_dict(action_spec, f"plan pool {index}")
            _check_action_references(action, source, f"plan pool {index}")
            pool.add(action)
        plan.append_pool(pool)
    return plan


def _check_action_references(
    action: Action, configuration: Configuration, context: str
) -> None:
    if not configuration.has_vm(action.vm):
        raise SubmissionError(
            "unknown-vm", f"{context}: action names unknown VM {action.vm!r}"
        )
    for node in (action.destination(), action.source()):
        if node is not None and not configuration.has_node(node):
            raise SubmissionError(
                "unknown-node",
                f"{context}: action {action} names unknown node {node!r}",
            )


# --------------------------------------------------------------------- #
# verification                                                           #
# --------------------------------------------------------------------- #


def verify_submission(
    instance: Instance, submission: Mapping[str, Any]
) -> VerificationReport:
    """Score ``submission`` against ``instance``; see the module docstring
    for the accepted shapes.  Raises :class:`SubmissionError` when the
    submission cannot be scored, returns a report (possibly failing)
    otherwise."""
    if not isinstance(submission, Mapping):
        raise SubmissionError(
            "malformed-submission", "a submission must be a JSON object"
        )
    declared = submission.get("format")
    if declared is not None and declared != SUBMISSION_FORMAT:
        raise SubmissionError(
            "malformed-submission",
            f"submission format {declared!r} is not {SUBMISSION_FORMAT!r}",
        )
    claimed = submission.get("instance")
    if claimed is not None and claimed not in (
        instance.name,
        instance.fingerprint,
    ):
        raise SubmissionError(
            "instance-mismatch",
            f"submission targets instance {claimed!r}, not "
            f"{instance.name!r} ({instance.fingerprint})",
        )
    if "plan" in submission:
        return _verify_plan(instance, submission["plan"])
    if "assignment" in submission:
        return _verify_assignment(instance, submission["assignment"])
    raise SubmissionError(
        "malformed-submission",
        "a submission carries either a 'plan' or an 'assignment'",
    )


def _verify_plan(
    instance: Instance, payload: Mapping[str, Any]
) -> VerificationReport:
    source = instance.configuration()
    plan = _decode_plan(payload, source)

    feasible = True
    infeasibility: Optional[str] = None
    try:
        plan.apply()
    except PlanningError as exc:
        feasible = False
        infeasibility = str(exc)

    # Constraint satisfaction and viability walk the pool effects without
    # the feasibility gate, so a failing plan still gets a full diagnosis —
    # unless an action is outright inapplicable (run on a non-waiting VM,
    # resume of a running one), in which case the walk itself stops.
    viability: list[str] = []
    constraint_violations: tuple[Violation, ...] = ()
    try:
        for stage_index, stage in enumerate(plan_stages(plan)):
            for violation in stage.viability_violations():
                viability.append(f"[after pool {stage_index}] {violation}")
        constraint_violations = tuple(
            check_plan(plan, instance.constraints, include_source=False)
        )
    except ReproError as exc:
        feasible = False
        if infeasibility is None:
            infeasibility = str(exc)

    costs = plan_cost(plan)
    return VerificationReport(
        instance=instance.name,
        fingerprint=instance.fingerprint,
        kind="plan",
        feasible=feasible,
        infeasibility=infeasibility,
        viability_violations=tuple(viability),
        constraint_violations=constraint_violations,
        actions=plan.action_count(),
        migrations=plan.count(ActionKind.MIGRATE),
        switch_cost=costs.total,
        minimum_cost=costs.local_total,
        makespan=sum(costs.pool_costs),
        metadata={"pools": len(plan.pools)},
    )


def _verify_assignment(
    instance: Instance, payload: Mapping[str, Any]
) -> VerificationReport:
    placement = _require(payload, "placement", "assignment")
    if not isinstance(placement, Mapping):
        raise SubmissionError(
            "malformed-submission",
            "assignment: 'placement' must map VM names to node names",
        )
    source = instance.configuration()
    target = instance.configuration()
    cost = 0
    migrations = 0
    actions = 0
    for vm_name in sorted(placement):
        node_name = placement[vm_name]
        if not target.has_vm(vm_name):
            raise SubmissionError(
                "unknown-vm", f"assignment places unknown VM {vm_name!r}"
            )
        if not target.has_node(node_name):
            raise SubmissionError(
                "unknown-node",
                f"assignment places {vm_name!r} on unknown node {node_name!r}",
            )
        state = source.state_of(vm_name)
        memory = source.vm(vm_name).memory
        if state is VMState.RUNNING:
            if source.location_of(vm_name) != node_name:
                cost += memory  # Table 1: migrate = Dm(vm)
                migrations += 1
                actions += 1
        elif state is VMState.SLEEPING:
            image = source.image_location_of(vm_name)
            cost += memory if image == node_name else 2 * memory
            actions += 1
        else:
            actions += 1  # run = 0 cost
        target.set_running(vm_name, node_name)

    viability = tuple(str(v) for v in target.viability_violations())
    constraint_violations = tuple(
        check_configuration(target, instance.constraints)
    )
    for constraint in instance.constraints:
        if constraint.is_transition_satisfied(source, target):
            continue
        message = (
            constraint.explain_transition(source, target)
            or f"{constraint.label} is violated by the transition"
        )
        constraint_violations += (
            Violation(constraint=constraint.label, message=message),
        )
    return VerificationReport(
        instance=instance.name,
        fingerprint=instance.fingerprint,
        kind="assignment",
        feasible=True,
        infeasibility=None,
        viability_violations=viability,
        constraint_violations=constraint_violations,
        actions=actions,
        migrations=migrations,
        switch_cost=cost,
        minimum_cost=cost,
        makespan=cost,
        metadata={},
    )
