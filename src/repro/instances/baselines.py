"""Baseline floors: score every stock policy over the shipped pack.

The scoreboard runs FFD, FCFS (+EASY backfilling), RJSP, dynamic
consolidation and the partitioned engine over every pack instance through
:mod:`repro.scale.campaign` and flattens the results into one canonical
JSON document, committed next to the pack
(:data:`repro.instances.pack.SCOREBOARD_PATH`).  These numbers are the
*floors* any submitted method must beat; the golden test additionally
asserts the paper's headline ordering — consolidation beats the static
FFD/FCFS floors on the pack (the ~40% completion-time claim, in miniature).

Every run is deterministic: seeded instances, a generous optimizer timeout
(the solver finishes exhaustively, so wall-clock jitter cannot change
plans) and no wall-clock fields in the scoreboard.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence, TYPE_CHECKING

from .format import fingerprint_of
from .pack import load_pack_instance, pack_instance_names

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.scenario import Scenario
    from ..scale.campaign import CampaignPoint

#: The scored policies.  ``partitioned`` is the consolidation policy solved
#: by the partitioned engine (``Scenario(engine="partitioned")``).
BASELINE_POLICIES = ("ffd", "fcfs", "rjsp", "consolidation", "partitioned")

#: Generous enough that the CP solve always completes exhaustively on the
#: pack's problem sizes — what keeps the scoreboard byte-stable (same
#: convention as tests/integration/test_golden_plans.py).
OPTIMIZER_TIMEOUT_S = 30.0

SCOREBOARD_FORMAT = "repro-scoreboard"
SCOREBOARD_SCHEMA_VERSION = 1

#: The deterministic subset of :meth:`RunResult.summary` the scoreboard
#: keeps (``runtime_seconds`` and other wall-clock fields are excluded).
SCORE_KEYS = (
    "makespan",
    "switches",
    "total_switch_cost",
    "migrations",
    "fallback_switches",
    "faults_injected",
    "sla_violations",
    "lost_vjobs",
    "constraint_violations",
    "planning_failures",
)


def scenario_for_point(point: "CampaignPoint") -> "Scenario":
    """Campaign factory: the instance name rides the point's opaque
    ``faults`` label, the policy axis carries the baseline name.
    Module-level so process-pool executors can pickle it."""
    instance = load_pack_instance(point.faults)
    policy, engine = (
        ("consolidation", "partitioned")
        if point.policy == "partitioned"
        else (point.policy, "event")
    )
    return instance.scenario(
        policy=policy,
        engine=engine,
        optimizer_timeout=OPTIMIZER_TIMEOUT_S,
    )


def baseline_scoreboard(
    instances: Optional[Sequence[str]] = None,
    policies: Sequence[str] = BASELINE_POLICIES,
    store_path: Optional[str | Path] = None,
    executor: str = "serial",
    max_workers: Optional[int] = None,
) -> dict[str, Any]:
    """Run the baseline grid and build the scoreboard document.

    ``executor="serial"`` is the default because the partitioned engine
    spawns its own worker pool per solve; pass ``"process"`` to spread the
    grid itself over processes instead.
    """
    from ..scale.campaign import CampaignSpec, run_campaign

    names = list(instances) if instances is not None else pack_instance_names()
    spec = CampaignSpec(
        scenario_factory=scenario_for_point,
        policies=tuple(policies),
        fleet_sizes=(1,),  # the instance fixes the fleet; one grid cell
        fault_labels=tuple(names),
    )
    campaign = run_campaign(
        spec,
        store_path=store_path,
        executor=executor,
        max_workers=max_workers,
    )
    board: dict[str, Any] = {
        "format": SCOREBOARD_FORMAT,
        "schema_version": SCOREBOARD_SCHEMA_VERSION,
        "optimizer_timeout": OPTIMIZER_TIMEOUT_S,
        "instances": {},
    }
    for name in names:
        instance = load_pack_instance(name)
        board["instances"][name] = {
            "fingerprint": instance.fingerprint,
            "nodes": len(instance.nodes),
            "vms": instance.vm_count,
            "policies": {},
        }
    for record in campaign.records:
        name = str(record["faults"])
        policy = str(record["policy"])
        if name not in board["instances"]:
            continue
        board["instances"][name]["policies"][policy] = {
            key: record[key] for key in SCORE_KEYS if key in record
        }
    board["fingerprint"] = fingerprint_of(board)
    return board


def scoreboard_to_json(board: Mapping[str, Any]) -> str:
    """Deterministic pretty serialization (what the golden file commits)."""
    return json.dumps(board, sort_keys=True, indent=2) + "\n"


def load_scoreboard(path: str | Path) -> dict[str, Any]:
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or data.get("format") != SCOREBOARD_FORMAT:
        raise ValueError(f"{path}: not a {SCOREBOARD_FORMAT!r} document")
    return data


def floor_violations(board: Mapping[str, Any]) -> list[str]:
    """Check the headline ordering on a scoreboard: on every instance the
    consolidation makespan must not exceed the FFD and FCFS floors, and it
    must be strictly better in aggregate.  Returns human-readable problems
    (empty when the floors hold)."""
    problems: list[str] = []
    totals = {"consolidation": 0.0, "ffd": 0.0, "fcfs": 0.0}
    for name, entry in sorted(board.get("instances", {}).items()):
        policies = entry.get("policies", {})
        spans = {
            policy: float(policies[policy]["makespan"])
            for policy in ("consolidation", "ffd", "fcfs")
            if policy in policies
        }
        if len(spans) < 3:
            problems.append(
                f"{name}: missing baseline rows "
                f"(have {sorted(policies)})"
            )
            continue
        for static in ("ffd", "fcfs"):
            if spans["consolidation"] > spans[static]:
                problems.append(
                    f"{name}: consolidation makespan {spans['consolidation']}"
                    f" exceeds the {static} floor {spans[static]}"
                )
        for policy, value in spans.items():
            totals[policy] += value
    if not board.get("instances"):
        problems.append("scoreboard has no instances")
    for static in ("ffd", "fcfs"):
        if totals["consolidation"] >= totals[static] and not problems:
            problems.append(
                f"consolidation does not strictly beat {static} in aggregate "
                f"({totals['consolidation']} vs {totals[static]})"
            )
    return problems
