"""The shipped instance pack: small/medium problems committed as goldens.

The pack is built deterministically from seeds (:func:`build_pack`) and
committed as canonical JSON under ``src/repro/instances/pack/`` — package
data, so an installed ``repro-verify`` can score against it without a
checkout.  ``tests/integration/test_instance_pack.py`` holds the committed
files byte-for-byte against :func:`build_pack` (regen with
``REPRO_UPDATE_GOLDENS=1``), and the CI ``verify-smoke`` job re-fingerprints
the pack on every push so silent drift cannot land.

Tiers:

* ``small-*`` — a handful of vjobs on 5–6 nodes; seconds to solve, used by
  the property suite and the CLI tests as well;
* ``medium-*`` — a constrained, faulty mix that exercises the catalog and
  the fault schedule.

Every pack instance is all-waiting (empty initial placement): that is the
shape the control loop runs, so the same file feeds both the baseline
scoreboard (:mod:`repro.instances.baselines`) and the standalone verifier.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Optional, Sequence

from ..constraints import Fence, RunningCapacity, Spread
from ..model.node import make_working_nodes
from ..model.vjob import VJob
from ..model.vm import VirtualMachine
from ..sim.faults import FaultSchedule, random_fault_schedule
from ..workloads.traces import DemandTrace, Phase, VJobWorkload
from .format import Instance, InstanceFormatError, load_instance

#: Directory holding the committed pack (package data).
PACK_DIR = Path(__file__).resolve().parent / "pack"
#: The committed baseline scoreboard lives next to the instances.
SCOREBOARD_PATH = PACK_DIR / "scoreboard.json"


def _vjob_workload(
    name: str,
    vm_count: int,
    memory: Sequence[int],
    segments: Sequence[tuple[float, int]],
    priority: int,
    rng: random.Random,
    jitter: float = 0.15,
    submitted_at: float = 0.0,
) -> VJobWorkload:
    """One vjob whose VMs all follow ``segments`` with per-VM jitter on the
    durations (drawn from ``rng``, so the pack stays seed-deterministic)."""
    vms = []
    traces: dict[str, DemandTrace] = {}
    for index in range(vm_count):
        vm_name = f"{name}.vm{index}"
        phases = [
            Phase(
                duration=round(
                    duration * (1.0 + rng.uniform(-jitter, jitter)), 1
                ),
                cpu_demand=demand,
            )
            for duration, demand in segments
        ]
        trace = DemandTrace(phases)
        vms.append(
            VirtualMachine(
                name=vm_name,
                memory=memory[index % len(memory)],
                cpu_demand=trace.phases[0].cpu_demand,
                vjob=name,
            )
        )
        traces[vm_name] = trace
    vjob = VJob(
        name=name, vms=vms, priority=priority, submitted_at=submitted_at
    )
    return VJobWorkload(vjob=vjob, traces=traces)


def _small_mix(seed: int = 11) -> Instance:
    """Capacity-pressured mix: peak demand exceeds the fleet's 10 CPUs, the
    idle phases leave headroom a consolidating policy can exploit."""
    rng = random.Random(seed)
    workloads = [
        _vjob_workload(
            f"mix{i}",
            vm_count=3,
            memory=(512, 768, 1024),
            segments=((420.0, 1), (180.0, 0), (420.0, 1)),
            priority=i,
            rng=rng,
        )
        for i in range(4)
    ]
    return Instance(
        name="small-mix",
        description=(
            "4 vjobs x 3 VMs with alternating compute/idle phases on "
            "5 dual-core nodes; peak demand 12 CPUs vs 10 available"
        ),
        seed=seed,
        nodes=tuple(make_working_nodes(5, cpu_capacity=2, memory_capacity=3584)),
        workloads=tuple(workloads),
    )


def _small_spread(seed: int = 23) -> Instance:
    """The small mix under placement relations: one replica set spread,
    one licensed vjob fenced to half the fleet."""
    rng = random.Random(seed)
    workloads = [
        _vjob_workload(
            f"svc{i}",
            vm_count=3,
            memory=(768, 512, 512),
            segments=((360.0, 1), (240.0, 0), (360.0, 1)),
            priority=i,
            rng=rng,
        )
        for i in range(5)
    ]
    constraints = (
        Spread([f"svc0.vm{j}" for j in range(3)]),
        Fence(
            [f"svc1.vm{j}" for j in range(3)],
            [f"node-{j}" for j in range(3)],
        ),
    )
    return Instance(
        name="small-spread",
        description=(
            "5 vjobs x 3 VMs on 6 dual-core nodes; svc0 spread across "
            "distinct hosts, svc1 fenced to nodes 0-2"
        ),
        seed=seed,
        nodes=tuple(make_working_nodes(6, cpu_capacity=2, memory_capacity=3584)),
        workloads=tuple(workloads),
        constraints=constraints,
    )


def _medium_faulty(seed: int = 47) -> Instance:
    """Medium tier: a bigger constrained mix under a seeded fault schedule
    (one node slowed down mid-run)."""
    rng = random.Random(seed)
    shapes = ((3, (512, 1024)), (4, (768, 512)), (3, (1024, 512)),
              (4, (512, 512)), (6, (512, 768)), (4, (1024, 768)))
    workloads = []
    for index, (vm_count, memory) in enumerate(shapes):
        workloads.append(
            _vjob_workload(
                f"job{index}",
                vm_count=vm_count,
                memory=memory,
                segments=((420.0, 1), (360.0, 0), (420.0, 1), (240.0, 0)),
                priority=index,
                rng=rng,
            )
        )
    node_names = [f"node-{i}" for i in range(8)]
    faults = random_fault_schedule(
        node_names,
        horizon=3600.0,
        seed=seed,
        slowdown_rate_per_hour=0.35,
        slowdown_factor=2.0,
        slowdown_duration=600.0,
    )
    constraints = (
        Fence(
            [f"job5.vm{j}" for j in range(4)],
            [f"node-{j}" for j in range(6)],
        ),
        RunningCapacity([f"node-{j}" for j in range(3)], maximum=10),
    )
    return Instance(
        name="medium-faulty",
        description=(
            "6 vjobs / 24 VMs on 8 dual-core nodes with a fenced vjob, a "
            "running-capacity cap on nodes 0-2, and seeded slowdown faults"
        ),
        seed=seed,
        nodes=tuple(
            make_working_nodes(8, cpu_capacity=2, memory_capacity=3584)
        ),
        workloads=tuple(workloads),
        constraints=constraints,
        faults=faults,
    )


def build_pack() -> tuple[Instance, ...]:
    """The shipped instances, rebuilt from their seeds (deterministic)."""
    return (_small_mix(), _small_spread(), _medium_faulty())


def pack_instance_names() -> list[str]:
    """Names of the committed pack instances (sorted)."""
    return sorted(
        path.stem
        for path in PACK_DIR.glob("*.json")
        if path.name != SCOREBOARD_PATH.name
    )


def load_pack_instance(name: str) -> Instance:
    """Load one committed pack instance by name (fingerprint-checked)."""
    path = PACK_DIR / f"{name}.json"
    if not path.exists():
        raise InstanceFormatError(
            "missing-file",
            f"no pack instance named {name!r} "
            f"(available: {pack_instance_names()})",
        )
    return load_instance(path)


def write_pack(directory: Optional[Path] = None) -> dict[str, str]:
    """Write the built pack to ``directory`` (default: the package's pack
    dir); returns name -> fingerprint.  This is the golden-regen path."""
    from .format import save_instance

    target = Path(directory) if directory is not None else PACK_DIR
    target.mkdir(parents=True, exist_ok=True)
    return {
        instance.name: save_instance(instance, target / f"{instance.name}.json")
        for instance in build_pack()
    }
