#!/usr/bin/env python
"""Handling an overloaded cluster with suspends, migrations and resumes.

Classic dynamic consolidation only migrates VMs and breaks down when the
running vjobs demand more processing units than the cluster owns.  The
cluster-wide context switch also suspends the lowest-priority vjobs and resumes
them later, which keeps every node viable at all times.  This example builds an
overload on purpose (the demand jumps from idle to 6 processing units on a
4-CPU cluster) and shows the sequence of context switches the control loop
(``repro.Scenario`` with the ``"consolidation"`` policy) performs to absorb it
and to catch up once the high-priority work completes.

Run with::

    python examples/overload_recovery.py
"""

from __future__ import annotations

from repro import Scenario
from repro.analysis.report import format_seconds, series
from repro.model import VJob, VirtualMachine, make_working_nodes
from repro.workloads import VJobWorkload, alternating_trace


def phased_vjob(name: str, vm_count: int, idle: float, busy: float, priority: int) -> VJobWorkload:
    """A vjob whose VMs idle for ``idle`` seconds then compute for ``busy``."""
    vms = [
        VirtualMachine(name=f"{name}.vm{i}", memory=1024, cpu_demand=0, vjob=name)
        for i in range(vm_count)
    ]
    vjob = VJob(name=name, vms=vms, priority=priority)
    trace = alternating_trace([(idle, 0), (busy, 1)])
    return VJobWorkload(vjob=vjob, traces={vm.name: trace for vm in vms})


def main() -> None:
    nodes = make_working_nodes(2, cpu_capacity=2, memory_capacity=3584)

    # Three 2-VM vjobs: while everything idles they all fit; once they start
    # computing they demand 6 processing units and the cluster only has 4.
    workloads = [
        phased_vjob("urgent", vm_count=2, idle=60.0, busy=180.0, priority=1),
        phased_vjob("steady", vm_count=2, idle=60.0, busy=180.0, priority=2),
        phased_vjob("background", vm_count=2, idle=60.0, busy=180.0, priority=3),
    ]

    scenario = Scenario(
        nodes=nodes,
        workloads=workloads,
        policy="consolidation",
        optimizer_timeout=2.0,
    )
    result = scenario.run()

    rows = []
    for record in result.switches:
        if not record.action_count:
            continue
        rows.append(
            (
                f"{record.time / 60:.1f}",
                record.runs,
                record.migrations,
                record.suspends,
                record.resumes,
                format_seconds(record.duration),
                record.cost,
            )
        )
    print(
        series(
            "context switches performed to absorb the overload",
            ["minute", "run", "migrate", "suspend", "resume", "duration", "cost"],
            rows,
        )
    )

    rows = [
        (name, f"{time / 60:.1f} min")
        for name, time in sorted(result.completion_times.items(), key=lambda kv: kv[1])
    ]
    print(series("vjob completion times", ["vjob", "completed at"], rows))

    overload_samples = [s for s in result.utilization if s.cpu_demand_fraction > 1.0]
    print(
        f"the demand exceeded the cluster capacity during "
        f"{len(overload_samples)} decision periods; the configuration stayed "
        f"viable throughout: {result.metadata['final_viable']}"
    )


if __name__ == "__main__":
    main()
