#!/usr/bin/env python
"""The Section 5.2 campaign: dynamic consolidation vs static allocation.

Eight vjobs of nine VMs each (NASGrid-like applications, 512 MB to 2 GB per
VM) are submitted at the same moment on an 11-node cluster.  The script runs
both resource-management strategies on the same workload:

* the FCFS + static allocation baseline (each vjob books one CPU per VM for
  its whole duration), via :meth:`repro.Scenario.run_static`;
* the control loop driven by the ``"consolidation"`` policy — the paper's
  Entropy loop with dynamic consolidation and cluster-wide context
  switches — via :meth:`repro.Scenario.run`.

and prints the completion times, the utilization, and the statistics of the
context switches (compare with Figures 11-13 of the paper).

Run with::

    python examples/consolidation_campaign.py [--vjobs 8] [--quick]
"""

from __future__ import annotations

import argparse

from repro.analysis.metrics import (
    average_cpu_utilization,
    makespan_reduction,
    switch_statistics,
)
from repro import Scenario
from repro.analysis.report import format_fraction, format_seconds, series
from repro.workloads import paper_cluster_nodes, paper_experiment_vjobs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vjobs", type=int, default=8, help="number of vjobs")
    parser.add_argument(
        "--vms-per-vjob", type=int, default=9, help="VMs per vjob (paper: 9)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use 4 vjobs of 4 VMs for a fast demonstration run",
    )
    args = parser.parse_args()

    nodes = paper_cluster_nodes()
    if args.quick:
        # a shrunk run: 4 vjobs of 4 VMs on 4 of the 11 nodes, so contention
        # (and therefore consolidation benefits) still shows up
        vjob_count, vm_count = 4, 4
        nodes = nodes[:4]
    else:
        vjob_count, vm_count = args.vjobs, args.vms_per_vjob

    workloads = paper_experiment_vjobs(count=vjob_count, vm_count=vm_count)
    print(f"cluster: {len(nodes)} nodes, workload: {vjob_count} vjobs x {vm_count} VMs")
    print()

    scenario = Scenario(
        nodes=nodes,
        workloads=workloads,
        policy="consolidation",
        optimizer_timeout=3.0,
    )

    # -- static allocation baseline ------------------------------------------
    static = scenario.run_static()
    rows = [
        (a.job.name, a.job.cpus, f"{a.start / 60:.1f} min", f"{a.end / 60:.1f} min")
        for a in static.schedule.allocations
    ]
    print(series("FCFS static allocation (Figure 12)", ["vjob", "cpus", "start", "end"], rows))

    # -- Entropy with cluster-wide context switches ---------------------------
    entropy = scenario.run()
    stats = switch_statistics(entropy.switches)
    rows = [
        (record.time / 60, record.cost, format_seconds(record.duration),
         record.migrations, record.suspends, record.resumes)
        for record in entropy.switches
        if record.action_count
    ]
    print(
        series(
            "cluster-wide context switches (Figure 11)",
            ["minute", "cost", "duration", "migr", "susp", "resume"],
            [(f"{row[0]:.1f}",) + row[1:] for row in rows],
        )
    )

    # -- comparison ------------------------------------------------------------
    rows = [
        ("total completion time", f"{static.makespan / 60:.0f} min", f"{entropy.makespan / 60:.0f} min"),
        (
            "average CPU utilization",
            format_fraction(average_cpu_utilization(static.utilization, until=entropy.makespan)),
            format_fraction(average_cpu_utilization(entropy.utilization)),
        ),
        ("context switches", "-", stats.count),
        ("average switch duration", "-", format_seconds(stats.average_duration)),
    ]
    print(series("FCFS vs Entropy (Figure 13 / headline)", ["metric", "FCFS", "Entropy"], rows))
    print(
        "makespan reduction:",
        format_fraction(makespan_reduction(static.makespan, entropy.makespan)),
        "(the paper reports ~40%)",
    )


if __name__ == "__main__":
    main()
