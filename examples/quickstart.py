#!/usr/bin/env python
"""Quickstart: plan and execute one cluster-wide context switch.

A tiny cluster of three dual-core nodes hosts two running vjobs when a third
one arrives.  The cluster cannot run everything at once, so the decision module
suspends the lowest-priority vjob and starts the newcomer; the cluster-wide
context switch computes the cheapest viable placement, sequences the actions
into pools and executes them on the simulated testbed.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis.report import format_seconds, series
from repro.core import ClusterContextSwitch, plan_cost
from repro.decision import ConsolidationDecisionModule
from repro.model import Configuration, VJob, VJobQueue, VirtualMachine, make_working_nodes
from repro.sim import PlanExecutor, SimulatedCluster


def build_vjob(name: str, vm_count: int, memory: int, priority: int) -> VJob:
    vms = [
        VirtualMachine(name=f"{name}.vm{i}", memory=memory, cpu_demand=1, vjob=name)
        for i in range(vm_count)
    ]
    return VJob(name=name, vms=vms, priority=priority)


def main() -> None:
    # -- 1. describe the cluster and the submitted vjobs ---------------------
    nodes = make_working_nodes(3, cpu_capacity=2, memory_capacity=3584)
    alpha = build_vjob("alpha", vm_count=3, memory=1024, priority=1)
    gamma = build_vjob("gamma", vm_count=2, memory=1024, priority=2)
    # beta was submitted last: it is the first to be suspended when the
    # cluster becomes too small for everyone.
    beta = build_vjob("beta", vm_count=2, memory=2048, priority=3)
    queue = VJobQueue([alpha, beta, gamma])

    # alpha and beta are already running, gamma just arrived
    configuration = Configuration(nodes=nodes)
    for vjob in (alpha, beta, gamma):
        for vm in vjob.vms:
            configuration.add_vm(vm)
    alpha.run()
    beta.run()
    configuration.set_running("alpha.vm0", "node-0")
    configuration.set_running("alpha.vm1", "node-0")
    configuration.set_running("alpha.vm2", "node-1")
    configuration.set_running("beta.vm0", "node-1")
    configuration.set_running("beta.vm1", "node-2")

    print("initial configuration viable:", configuration.is_viable())

    # -- 2. the decision module selects the vjobs that should run ------------
    module = ConsolidationDecisionModule()
    decision = module.decide(configuration, queue)
    print("vjob states wanted by the decision module:")
    for vjob_name, state in decision.vjob_states.items():
        print(f"  {vjob_name}: {state.value}")

    # -- 3. the cluster-wide context switch plans the transition -------------
    switcher = ClusterContextSwitch(optimizer_timeout=5.0)
    report = switcher.compute(
        configuration,
        decision.vm_states,
        vjob_of_vm=module.vjob_index(queue),
        fallback_target=decision.fallback_target,
    )
    print()
    print(report.plan)
    breakdown = plan_cost(report.plan)
    print(f"plan cost (Table 1 model): {breakdown.total}")

    # -- 4. execute it on the simulated testbed ------------------------------
    cluster = SimulatedCluster(nodes=nodes)
    for vm in configuration.vms:
        cluster.add_vm(vm)
    for vm_name, node in configuration.placement().items():
        cluster.configuration.set_running(vm_name, node)
    execution = PlanExecutor().execute(report.plan, cluster)
    print(f"context switch duration: {format_seconds(execution.duration)}")

    rows = [
        (
            item.action.kind.value,
            item.action.vm,
            f"{item.start:.1f}s",
            f"{item.duration:.1f}s",
        )
        for item in execution.actions
    ]
    print()
    print(series("executed actions", ["action", "vm", "start", "duration"], rows))
    print("final configuration viable:", cluster.configuration.is_viable())


if __name__ == "__main__":
    main()
