#!/usr/bin/env python
"""Quickstart: run one scenario, then swap the decision policy.

A tiny cluster of two dual-core nodes receives three vjobs that cannot all
run at once.  The :class:`repro.Scenario` facade wires the whole
observe/decide/plan/execute loop from a declarative description; swapping the
scheduling policy is a one-argument change, and both runs return the same
structured :class:`repro.RunResult`:

* ``policy="consolidation"`` — the paper's dynamic consolidation: the
  lowest-priority vjob is suspended during the crunch and resumed afterwards;
* ``policy="fcfs"`` — the static-allocation baseline: each vjob books one CPU
  per VM for its whole duration and late vjobs simply wait.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Scenario, available_decision_modules
from repro.analysis.report import format_seconds, series
from repro.model import make_working_nodes
from repro.testing import make_vjob, make_workload
from repro.workloads import VJobWorkload, alternating_trace


def bursty_workload(name: str, priority: int) -> VJobWorkload:
    """A 2-VM vjob whose tasks compute in alternating 90 s bursts — the
    NASGrid-like shape of Section 5.2: at any instant only one of its VMs
    needs a processing unit, the other waits for data."""
    vjob = make_vjob(name, vm_count=2, memory=1024, priority=priority)
    traces = {
        vjob.vms[0].name: alternating_trace(
            [(60.0, 0), (90.0, 1), (120.0, 0), (90.0, 1)]
        ),
        vjob.vms[1].name: alternating_trace(
            [(150.0, 0), (90.0, 1), (120.0, 0), (90.0, 1)]
        ),
    }
    return VJobWorkload(vjob=vjob, traces=traces)


def build_workloads():
    """Three 2-VM vjobs on a 4-CPU cluster: the two bursty ones leave long
    idle gaps that dynamic consolidation fills with the third vjob, while
    FCFS keeps the booked CPUs claimed and makes it wait."""
    return [
        bursty_workload("alpha", priority=1),
        bursty_workload("gamma", priority=2),
        make_workload("beta", vm_count=2, memory=1024, duration=180.0,
                      priority=3, idle_head=60.0),
    ]


def describe(result) -> None:
    rows = [
        (
            f"{record.time / 60:.1f}",
            record.runs,
            record.migrations,
            record.suspends,
            record.resumes,
            format_seconds(record.duration),
            record.cost,
        )
        for record in result.switches
        if record.action_count
    ]
    print(series(
        f"context switches under {result.policy!r}",
        ["minute", "run", "migrate", "suspend", "resume", "duration", "cost"],
        rows,
    ))
    rows = [
        (name, f"{time / 60:.1f} min")
        for name, time in sorted(result.completion_times.items(), key=lambda kv: kv[1])
    ]
    print(series("vjob completion times", ["vjob", "completed at"], rows))
    print(f"makespan: {result.makespan / 60:.1f} min, "
          f"final configuration viable: {result.metadata['final_viable']}")
    print()


def main() -> None:
    print("registered decision modules:", ", ".join(available_decision_modules()))
    print()

    nodes = make_working_nodes(2, cpu_capacity=2, memory_capacity=3584)

    # The same scenario, two policies: only the `policy` argument changes.
    scenario = Scenario(nodes=nodes, workloads=build_workloads(),
                        policy="consolidation", optimizer_timeout=2.0)
    describe(scenario.run())

    scenario = Scenario(nodes=nodes, workloads=build_workloads(),
                        policy="fcfs", optimizer_timeout=2.0)
    describe(scenario.run())


if __name__ == "__main__":
    main()
