#!/usr/bin/env python
"""Cost of each VM context-switch operation (Section 2.3, Figure 3).

Prints the modelled duration of every VM action (run, stop, migrate, suspend,
resume) for the memory sizes used in the paper, distinguishing local from
remote suspend/resume — the calibration behind the simulated testbed and the
justification of the Table 1 cost model.

Run with::

    python examples/action_costs.py
"""

from __future__ import annotations

from repro.analysis.report import series
from repro.sim import DEFAULT_HYPERVISOR, FAST_STOP_HYPERVISOR
from repro.config import VM_MEMORY_SIZES_MB


def main() -> None:
    model = DEFAULT_HYPERVISOR

    rows = []
    for memory in VM_MEMORY_SIZES_MB:
        rows.append(
            (
                memory,
                f"{model.run_duration(memory):.0f}s",
                f"{model.stop_duration(memory):.0f}s",
                f"{FAST_STOP_HYPERVISOR.stop_duration(memory):.0f}s",
                f"{model.migrate_duration(memory):.1f}s",
            )
        )
    print(
        series(
            "Figure 3a — run / stop / migrate durations",
            ["memory (MB)", "run", "clean stop", "hard stop", "migrate"],
            rows,
        )
    )

    rows = []
    for memory in VM_MEMORY_SIZES_MB:
        rows.append(
            (
                memory,
                f"{model.suspend_duration(memory, local=True):.1f}s",
                f"{model.suspend_duration(memory, local=False):.1f}s",
                f"{model.resume_duration(memory, local=True):.1f}s",
                f"{model.resume_duration(memory, local=False):.1f}s",
            )
        )
    print(
        series(
            "Figures 3b/3c — suspend and resume durations, local vs remote",
            ["memory (MB)", "suspend local", "suspend remote", "resume local", "resume remote"],
            rows,
        )
    )

    print(
        "Table 1 cost model: migrate/suspend cost Dm(vm), resume costs Dm(vm) "
        "locally and 2*Dm(vm) remotely, run/stop cost a constant (0)."
    )


if __name__ == "__main__":
    main()
