#!/usr/bin/env python
"""Constrained operations: HA spreading + rolling maintenance under churn.

The placement-constraint subsystem (``repro.constraints``) turns operator
intent into relations the whole stack enforces — the CP optimizer compiles
them into its model, heuristic policies filter candidates with them, every
plan and the live cluster are checked continuously, and node crashes run
each constraint's repair hook before the victims are replanned.

This scenario exercises the catalog the way an operator would during a
rolling maintenance window:

* a replicated database vjob whose two VMs must stay on distinct nodes
  (``Spread`` — one node loss never takes both replicas);
* the same vjob is licensed for a three-node zone only (``Fence``,
  ``elastic=True``: if a zone node dies, the surviving zone takes over);
* ``node-0`` is drained for maintenance: nothing may run there (``Ban``);
* background vjobs keep arriving from a seeded churn stream, competing for
  the shrunken fleet;
* at t = 150 s one of the fence nodes crashes — the elastic fence repairs
  itself onto the survivors and the knocked-out vjobs are replanned under
  the same (adjusted) catalog.

Run with::

    python examples/ha_maintenance.py
"""

from __future__ import annotations

from repro import FaultSchedule, Scenario
from repro.constraints import Ban, Fence, Spread
from repro.model import make_working_nodes
from repro.testing import make_workload
from repro.workloads import ChurnGenerator, ProblemClass


def main() -> None:
    nodes = make_working_nodes(5, cpu_capacity=2, memory_capacity=3584)

    # The replicated service plus a seeded churn stream of batch vjobs.
    database = make_workload("db", vm_count=2, duration=300.0)
    churn = ChurnGenerator(
        seed=11,
        mean_interarrival_s=60.0,
        vm_count_choices=(2, 3),
        problem_classes=(ProblemClass.W,),
    ).workloads(3)
    workloads = [database, *churn]

    every_vm = [vm for workload in workloads for vm in workload.vjob.vm_names]
    constraints = [
        Spread(["db.vm0", "db.vm1"]),
        Fence(["db.vm0", "db.vm1"], ["node-1", "node-2", "node-3"], elastic=True),
        Ban(every_vm, ["node-0"]),  # drained for maintenance
    ]

    scenario = (
        Scenario(
            nodes=nodes,
            workloads=workloads,
            policy="consolidation",
            optimizer_timeout=10.0,
            max_time=4 * 3600.0,
            faults=FaultSchedule().node_crash("node-2", at=150.0),
        )
        .with_constraints(*constraints)
    )
    result = scenario.run()

    print("=== HA + rolling maintenance under churn ===")
    print(f"policy:             {result.policy}")
    print(f"makespan:           {result.makespan:.0f} s")
    print(f"context switches:   {result.switch_count}")
    print(f"faults:             {[f.kind for f in result.faults]}")
    print(f"repair latencies:   "
          f"{ {k: round(v, 1) for k, v in result.repair_latencies.items()} }")
    print(f"lost vjobs:         {result.lost_vjob_count}")
    print()
    print("active catalog after the crash (the elastic fence shrank):")
    for label in result.metadata.get("active_constraints", []):
        print(f"  - {label}")
    print()
    if result.honoured_constraints:
        print("constraint violations: none — the catalog held through the "
              "crash, the repair and every context switch")
    else:
        print("constraint violation timeline:")
        for record in result.constraint_violations:
            print(f"  t={record.time:7.1f}s [{record.phase}] {record.message}")
    print()
    print("completion times:")
    for name, time in sorted(result.completion_times.items()):
        print(f"  {name:<12} {time:8.0f} s")


if __name__ == "__main__":
    main()
