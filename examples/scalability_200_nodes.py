#!/usr/bin/env python
"""Scalability of the context-switch optimization (Section 5.1, Figure 10).

Generates random 200-node configurations hosting an increasing number of VMs
(grouped into vjobs of 9 or 18 VMs running NASGrid-like workloads), lets the
sample decision module choose which vjobs should run, and compares the cost of
the reconfiguration plan produced by the First-Fit-Decreasing baseline with the
cost of the plan produced by Entropy's CP optimizer.

Run with::

    python examples/scalability_200_nodes.py [--samples 2] [--timeout 5]
"""

from __future__ import annotations

import argparse

from repro import get_decision_module
from repro.analysis.metrics import CostComparison, average_cost_reduction, mean_costs_by_vm_count
from repro.analysis.report import format_fraction, series
from repro.core import ClusterContextSwitch, build_plan, plan_cost
from repro.workloads import TraceConfigurationGenerator, paper_vm_counts


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=2, help="samples per VM count (paper: 30)")
    parser.add_argument("--timeout", type=float, default=5.0, help="CP time budget in seconds (paper: 40)")
    parser.add_argument("--max-vms", type=int, default=270, help="largest VM count to evaluate")
    args = parser.parse_args()

    vm_counts = [count for count in paper_vm_counts() if count <= args.max_vms]
    # The registry resolves the policy by name — swap in any registered
    # decision module to rerun the scalability study under another policy.
    module = get_decision_module("consolidation")
    comparisons: list[CostComparison] = []

    for vm_count in vm_counts:
        for sample in range(args.samples):
            generator = TraceConfigurationGenerator(seed=1000 * vm_count + sample)
            scenario = generator.generate(vm_count)
            decision = module.decide(scenario.configuration, scenario.queue)
            if decision.fallback_target is None:
                continue
            ffd_cost = plan_cost(
                build_plan(
                    scenario.configuration,
                    decision.fallback_target,
                    scenario.vjob_of_vm(),
                )
            ).total
            switcher = ClusterContextSwitch(optimizer_timeout=args.timeout)
            report = switcher.compute(
                scenario.configuration,
                decision.vm_states,
                vjob_of_vm=scenario.vjob_of_vm(),
                fallback_target=decision.fallback_target,
            )
            comparisons.append(
                CostComparison(
                    vm_count=vm_count, ffd_cost=ffd_cost, entropy_cost=report.total_cost
                )
            )
            print(
                f"  {vm_count:4d} VMs sample {sample}: FFD {ffd_cost:>10d}  "
                f"Entropy {report.total_cost:>10d}"
            )

    rows = [
        (count, f"{ffd:.0f}", f"{entropy:.0f}", format_fraction(1 - entropy / ffd if ffd else 0.0))
        for count, ffd, entropy in mean_costs_by_vm_count(comparisons)
    ]
    print()
    print(
        series(
            "Figure 10 — reconfiguration cost, 200 nodes",
            ["VMs", "FFD cost", "Entropy cost", "reduction"],
            rows,
        )
    )
    print(
        "average cost reduction:",
        format_fraction(average_cost_reduction(comparisons)),
        "(the paper reports ~95%)",
    )


if __name__ == "__main__":
    main()
