#!/usr/bin/env python
"""Placement constraints: high availability and maintenance windows.

The paper's conclusion announces per-VM placement relations (already present
in Entropy), e.g. hosting the replicas of a service on different nodes for
high availability.  This example shows the optimizer honouring them during a
cluster-wide context switch:

* the two replicas of a database vjob must stay on distinct nodes (`Spread`);
* a node is drained for maintenance: no VM may run on it (`Ban`);
* a licensed application is pinned to a subset of nodes (`Fence`).

Run with::

    python examples/high_availability.py
"""

from __future__ import annotations

from repro.analysis.report import series
from repro.core import Ban, ClusterContextSwitch, Fence, Spread, check_constraints
from repro.model import Configuration, VirtualMachine, make_working_nodes
from repro.model.vm import VMState


def main() -> None:
    nodes = make_working_nodes(4, cpu_capacity=2, memory_capacity=3584)
    configuration = Configuration(nodes=nodes)

    # two database replicas currently packed on the same node
    configuration.add_vm(VirtualMachine("db.primary", memory=1024, cpu_demand=1))
    configuration.add_vm(VirtualMachine("db.replica", memory=1024, cpu_demand=1))
    configuration.set_running("db.primary", "node-0")
    configuration.set_running("db.replica", "node-0")

    # a licensed application, currently suspended
    configuration.add_vm(VirtualMachine("licensed", memory=2048, cpu_demand=1))
    configuration.set_sleeping("licensed", "node-1")

    # a batch worker sitting on the node to drain
    configuration.add_vm(VirtualMachine("worker", memory=512, cpu_demand=1))
    configuration.set_running("worker", "node-3")

    constraints = [
        Spread(["db.primary", "db.replica"]),
        Ban(["db.primary", "db.replica", "licensed", "worker"], ["node-3"]),
        Fence(["licensed"], ["node-1", "node-2"]),
    ]
    print("violated before the switch:",
          [type(c).__name__ for c in check_constraints(configuration, constraints)])

    switcher = ClusterContextSwitch(optimizer_timeout=5.0)
    report = switcher.compute(
        configuration,
        {"licensed": VMState.RUNNING},
        constraints=constraints,
    )

    print()
    print(report.plan)
    rows = [
        (vm, configuration.location_of(vm) or configuration.image_location_of(vm) or "-",
         report.target.location_of(vm) or "-")
        for vm in configuration.vm_names
    ]
    print(series("placement before / after", ["vm", "before", "after"], rows))

    final = report.plan.apply()
    print("violated after the switch:",
          [type(c).__name__ for c in check_constraints(final, constraints)])
    print("plan cost:", report.total_cost)


if __name__ == "__main__":
    main()
