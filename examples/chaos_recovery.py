#!/usr/bin/env python
"""Chaos recovery: a node crash under churn, absorbed by the control loop.

Five vjobs arrive over time (seeded churn stream) on a heterogeneous 5-node
fleet; at t = 120 s one busy node crashes, killing the VMs it hosts and the
suspend images it stores.  The control loop detects the failure at the next
iteration, evicts the node from the configuration, and the decision module
re-plans the knocked-out vjobs onto the surviving nodes — every vjob
completes, and the ``RunResult`` reports the repair latency, the SLA
accounting and the (zero) lost-vjob count.

This is the canonical chaos scenario: the same run is pinned byte-for-byte
by ``tests/integration/test_chaos_golden.py`` and documented step by step in
``docs/SIMULATOR_GUIDE.md``.

Run with::

    python examples/chaos_recovery.py [--crash-at 120] [--migration-failure-rate 0.0]
"""

from __future__ import annotations

import argparse

from repro import FaultSchedule, Scenario
from repro.analysis import makespan_inflation, recovery_statistics
from repro.analysis.report import format_seconds, series
from repro.workloads import ChurnGenerator, ProblemClass, heterogeneous_nodes


def build_workloads():
    """The seeded churn stream of the canonical scenario."""
    generator = ChurnGenerator(
        seed=11,
        mean_interarrival_s=45.0,
        vm_count_choices=(2, 3),
        problem_classes=(ProblemClass.W,),
    )
    return generator.workloads(5)


def build_scenario(faults, workloads):
    return Scenario(
        nodes=heterogeneous_nodes(5, seed=7),
        workloads=workloads,
        policy="consolidation",
        optimizer_timeout=30.0,
        faults=faults,
        sla_factor=6.0,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--crash-at", type=float, default=120.0,
        help="simulated time (s) of the node-1 crash",
    )
    parser.add_argument(
        "--migration-failure-rate", type=float, default=0.0,
        help="probability that any migration attempt aborts",
    )
    args = parser.parse_args()

    faults = FaultSchedule(
        migration_failure_rate=args.migration_failure_rate, seed=1
    ).node_crash("node-1", at=args.crash_at)

    baseline = build_scenario(None, build_workloads()).run()
    chaotic = build_scenario(faults, build_workloads()).run()

    print("Fault timeline")
    for fault in chaotic.faults:
        affected = ", ".join(fault.affected_vjobs) or "-"
        print(
            f"  t={fault.time:6.1f}s  {fault.kind:<18} {fault.target:<10} "
            f"detected t={fault.detected_at:6.1f}s  affected: {affected}"
        )

    print("\nRepairs (crash -> running again)")
    for name, latency in sorted(chaotic.repair_latencies.items()):
        print(f"  {name:<10} {format_seconds(latency)}")

    print("\nCompletion times (chaotic run)")
    print(
        series(
            "completed vjobs",
            ["vjob", "completed at"],
            [
                (name, format_seconds(time))
                for name, time in sorted(chaotic.completion_times.items())
            ],
        )
    )

    stats = recovery_statistics(chaotic)
    inflation = makespan_inflation(baseline.makespan, chaotic.makespan)
    print("\nRecovery summary")
    print(f"  faults applied        {stats.fault_count}")
    print(f"  vjobs repaired        {stats.repaired_vjobs}")
    print(f"  mean repair latency   {format_seconds(stats.mean_repair_latency)}")
    print(f"  wasted migrations     {stats.wasted_migrations}")
    print(f"  SLA violations        {stats.sla_violations}")
    print(f"  lost vjobs            {stats.lost_vjobs}")
    print(
        f"  makespan              {format_seconds(chaotic.makespan)} "
        f"(fault-free {format_seconds(baseline.makespan)}, "
        f"{inflation:+.1%})"
    )
    if stats.fully_recovered:
        print("\nEvery submitted vjob completed despite the crash.")


if __name__ == "__main__":
    main()
