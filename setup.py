"""Legacy setup script.

Kept so ``pip install -e .`` works on environments whose setuptools predates
PEP 660 editable installs (the metadata itself lives in ``pyproject.toml``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Cluster-Wide Context Switch of Virtualized Jobs' "
        "(Hermenier et al., HPDC 2010)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
)
