"""Legacy setup shim.

All package metadata lives in ``pyproject.toml`` (PEP 621); this file only
keeps ``python setup.py develop`` working on environments whose tooling
predates PEP 660 editable installs.
"""

from setuptools import setup

setup()
