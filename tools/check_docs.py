#!/usr/bin/env python
"""Documentation checker: intra-repo markdown links + embedded doctests.

Two passes over the repository's markdown documentation (``README.md``,
``ROADMAP.md``, ``CHANGES.md`` and everything under ``docs/``):

1. **Link check** — every relative markdown link target (``[text](path)``)
   must exist on disk; anchors and external ``http(s)``/``mailto`` links are
   skipped.
2. **Doctests** — every ``>>>`` block in ``docs/*.md`` is executed with the
   standard :mod:`doctest` runner, so the guides' examples cannot rot.  The
   guides are written so their outputs are deterministic (seeded generators,
   generous CP budgets).

Run locally with::

    python tools/check_docs.py

CI runs the same script in the ``docs`` job.  The module is also imported by
``tests/docs/test_documentation.py`` so the tier-1 suite enforces both
passes.
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

#: Markdown files whose links are validated.
LINKED_FILES = ("README.md", "ROADMAP.md", "CHANGES.md")

#: ``[text](target)`` — good enough for the plain links these docs use
#: (no nested brackets, no reference-style links).
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Targets that are not filesystem paths.
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "#")


def _ensure_importable() -> None:
    """Make ``repro`` importable for the doctests without an install."""
    src = REPO_ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))


def markdown_files() -> list[Path]:
    files = [REPO_ROOT / name for name in LINKED_FILES]
    files.extend(sorted(DOCS_DIR.glob("*.md")))
    return [path for path in files if path.exists()]


def check_links(paths: list[Path] | None = None) -> list[str]:
    """Return one error string per broken relative link."""
    errors: list[str] = []
    for path in paths if paths is not None else markdown_files():
        for number, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            for match in _LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(_EXTERNAL_PREFIXES):
                    continue
                resolved = (path.parent / target.split("#", 1)[0]).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{path.relative_to(REPO_ROOT)}:{number}: broken "
                        f"link -> {target}"
                    )
    return errors


_PROMPT_RE = re.compile(r"^\s*>>> ", re.MULTILINE)


def doctest_files() -> list[Path]:
    """Markdown guides containing at least one doctest prompt (a line
    starting with ``>>>``; prose mentions of the prompt do not count)."""
    return [
        path
        for path in sorted(DOCS_DIR.glob("*.md"))
        if _PROMPT_RE.search(path.read_text())
    ]


def run_doctests(verbose: bool = False) -> list[str]:
    """Run the doctests of every guide; returns one error per failing file."""
    _ensure_importable()
    errors: list[str] = []
    for path in doctest_files():
        failures, attempted = doctest.testfile(
            str(path),
            module_relative=False,
            verbose=verbose,
            optionflags=doctest.NORMALIZE_WHITESPACE,
        )
        status = "ok" if not failures else "FAILED"
        print(
            f"doctest {path.relative_to(REPO_ROOT)}: {attempted} examples, "
            f"{failures} failures [{status}]"
        )
        if failures:
            errors.append(
                f"{path.relative_to(REPO_ROOT)}: {failures} doctest "
                "failure(s)"
            )
        elif attempted == 0:
            errors.append(
                f"{path.relative_to(REPO_ROOT)}: contains '>>>' but doctest "
                "collected no examples (malformed block?)"
            )
    return errors


def main() -> int:
    link_errors = check_links()
    for error in link_errors:
        print(error)
    print(
        f"link check: {len(markdown_files())} files, "
        f"{len(link_errors)} broken links"
    )
    doctest_errors = run_doctests()
    if link_errors or doctest_errors:
        print("documentation check FAILED")
        return 1
    print("documentation check ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
