#!/usr/bin/env python
"""Documentation checker: links, embedded doctests, API-reference coverage.

Three passes over the repository's markdown documentation (``README.md``,
``ROADMAP.md``, ``CHANGES.md`` and everything under ``docs/``):

1. **Link check** — every relative markdown link target (``[text](path)``)
   must exist on disk; anchors and external ``http(s)``/``mailto`` links are
   skipped.
2. **Doctests** — every ``>>>`` block in ``docs/*.md`` is executed with the
   standard :mod:`doctest` runner, so the guides' examples cannot rot.  The
   guides are written so their outputs are deterministic (seeded generators,
   generous CP budgets).
3. **API-reference coverage** — every public symbol exported by the
   documented packages (``repro.api.__all__``, ``repro.repair.__all__``,
   ``repro.scale.__all__``, ``repro.service.__all__``,
   ``repro.instances.__all__``) must appear, backtick-quoted, in
   ``docs/API_REFERENCE.md``; an undocumented export fails the check (and
   CI), so the reference index cannot silently fall behind the code.

Run locally with::

    python tools/check_docs.py

CI runs the same script in the ``docs`` job.  The module is also imported by
``tests/docs/test_documentation.py`` so the tier-1 suite enforces all three
passes.
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

#: Markdown files whose links are validated.
LINKED_FILES = ("README.md", "ROADMAP.md", "CHANGES.md")

#: ``[text](target)`` — good enough for the plain links these docs use
#: (no nested brackets, no reference-style links).
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Targets that are not filesystem paths.
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "#")


def _ensure_importable() -> None:
    """Make ``repro`` importable for the doctests without an install."""
    src = REPO_ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))


def markdown_files() -> list[Path]:
    files = [REPO_ROOT / name for name in LINKED_FILES]
    files.extend(sorted(DOCS_DIR.glob("*.md")))
    return [path for path in files if path.exists()]


def check_links(paths: list[Path] | None = None) -> list[str]:
    """Return one error string per broken relative link."""
    errors: list[str] = []
    for path in paths if paths is not None else markdown_files():
        for number, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            for match in _LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(_EXTERNAL_PREFIXES):
                    continue
                resolved = (path.parent / target.split("#", 1)[0]).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{path.relative_to(REPO_ROOT)}:{number}: broken "
                        f"link -> {target}"
                    )
    return errors


_PROMPT_RE = re.compile(r"^\s*>>> ", re.MULTILINE)


def doctest_files() -> list[Path]:
    """Markdown guides containing at least one doctest prompt (a line
    starting with ``>>>``; prose mentions of the prompt do not count)."""
    return [
        path
        for path in sorted(DOCS_DIR.glob("*.md"))
        if _PROMPT_RE.search(path.read_text())
    ]


def run_doctests(verbose: bool = False) -> list[str]:
    """Run the doctests of every guide; returns one error per failing file."""
    _ensure_importable()
    errors: list[str] = []
    for path in doctest_files():
        failures, attempted = doctest.testfile(
            str(path),
            module_relative=False,
            verbose=verbose,
            optionflags=doctest.NORMALIZE_WHITESPACE,
        )
        status = "ok" if not failures else "FAILED"
        print(
            f"doctest {path.relative_to(REPO_ROOT)}: {attempted} examples, "
            f"{failures} failures [{status}]"
        )
        if failures:
            errors.append(
                f"{path.relative_to(REPO_ROOT)}: {failures} doctest "
                "failure(s)"
            )
        elif attempted == 0:
            errors.append(
                f"{path.relative_to(REPO_ROOT)}: contains '>>>' but doctest "
                "collected no examples (malformed block?)"
            )
    return errors


#: Packages whose ``__all__`` must be fully covered by the API reference.
DOCUMENTED_PACKAGES = (
    "repro.api",
    "repro.repair",
    "repro.scale",
    "repro.service",
    "repro.instances",
    "repro.obs",
)

#: The generated-style index of the public surface.
API_REFERENCE = DOCS_DIR / "API_REFERENCE.md"


def check_api_reference(
    packages: tuple[str, ...] = DOCUMENTED_PACKAGES,
) -> list[str]:
    """One error per public symbol missing from ``docs/API_REFERENCE.md``.

    A symbol counts as documented when it appears backtick-quoted in the
    reference (``` `Scenario` ``` or a dotted/called form such as
    ``` `repro.api.Scenario` ``` / ``` `Scenario(...)` ```).
    """
    _ensure_importable()
    import importlib

    if not API_REFERENCE.exists():
        return [f"{API_REFERENCE.relative_to(REPO_ROOT)} is missing"]
    text = API_REFERENCE.read_text()
    errors: list[str] = []
    for package_name in packages:
        package = importlib.import_module(package_name)
        exported = getattr(package, "__all__", ())
        if not exported:
            errors.append(f"{package_name} exports no __all__")
            continue
        for symbol in exported:
            pattern = re.compile(rf"`[\w.]*\b{re.escape(symbol)}\b[\w.()]*`")
            if not pattern.search(text):
                errors.append(
                    f"{API_REFERENCE.relative_to(REPO_ROOT)}: public symbol "
                    f"{package_name}.{symbol} is undocumented"
                )
    return errors


def main() -> int:
    link_errors = check_links()
    for error in link_errors:
        print(error)
    print(
        f"link check: {len(markdown_files())} files, "
        f"{len(link_errors)} broken links"
    )
    doctest_errors = run_doctests()
    api_errors = check_api_reference()
    for error in api_errors:
        print(error)
    print(
        f"api reference: {', '.join(DOCUMENTED_PACKAGES)} against "
        f"{API_REFERENCE.name}, {len(api_errors)} undocumented symbols"
    )
    if link_errors or doctest_errors or api_errors:
        print("documentation check FAILED")
        return 1
    print("documentation check ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
