"""CI smoke test for the operator daemon — everything over real HTTP.

Boots an :class:`repro.service.OperatorDaemon` on an ephemeral port around
the built-in demo scenario plus one injected crash, drives a full run purely
through the REST API with :class:`repro.service.OperatorClient`, then checks
the operator-facing invariants end to end:

* ``/healthz`` answers and the run reaches ``completed``;
* ``/metrics`` parses under the validating Prometheus text-format parser
  and its counters agree with the run result;
* the audit log replays the executed plan sequence byte-for-byte against
  ``/plans``;
* ``/configuration`` reports a viable final placement.

Exit code 0 on success; any failure raises and exits non-zero.

Usage::

    python tools/service_smoke.py
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service import OperatorClient, OperatorDaemon, replay_plans  # noqa: E402
from repro.service.__main__ import demo_scenario  # noqa: E402


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        audit_path = str(Path(tmp) / "audit.jsonl")
        scenario = demo_scenario()
        with OperatorDaemon(scenario, port=0, audit_path=audit_path) as daemon:
            client = OperatorClient(daemon.url)
            assert client.healthz()["status"] == "ok", "healthz not ok"

            client.inject_fault(
                {"kind": "node_crash", "target": "node-3", "at": 120.0}
            )
            client.start_run()
            state = client.wait(timeout=120.0)
            assert state == "completed", f"run ended in state {state!r}"

            result = client.result()
            assert result.makespan > 0.0, "empty run"
            assert len(result.faults) == 1, "injected crash not recorded"

            metrics = client.metrics()
            assert metrics["repro_faults_total"][0][1] == 1.0
            assert metrics["repro_vjobs_completed_total"][0][1] == len(
                result.completion_times
            )
            switch_total = sum(
                value for _, value in metrics["repro_context_switches_total"]
            )
            assert switch_total == len(result.switches)

            plans = client.plans()
            replayed = replay_plans(audit_path)
            assert json.dumps(plans, sort_keys=True) == json.dumps(
                replayed, sort_keys=True
            ), "audit replay diverged from /plans"
            assert len(plans) == len(result.switches)

            configuration = client.configuration()["configuration"]
            assert configuration["viable"], "final configuration not viable"

            print(
                f"service smoke ok: makespan={result.makespan}, "
                f"{len(plans)} plans replayed byte-for-byte, "
                f"{len(metrics)} metric families parsed"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
