"""CI smoke test for end-to-end span tracing (:mod:`repro.obs`).

Runs a seeded churn scenario through the control loop with tracing on,
then checks the observability pipeline end to end:

* the run's trace records the canonical phases (round, solve, cp.solve,
  repair-attempt, execute, ...) and survives the
  :class:`~repro.api.results.RunResult` round-trip;
* the Chrome trace-event export parses back as JSON and passes the
  schema/nesting validator (drag-and-droppable into Perfetto);
* the ``repro-trace`` CLI summarizes and exports the written trace file;
* on the PR 7 churn tier (100 VMs, 10 % churn per round), ``repro-trace
  diff`` of a cold-solve trace against a repair-engine trace reports the
  repair engine's solve-phase time reduction.

Exit code 0 on success; any failure raises and exits non-zero.

Usage::

    python tools/trace_smoke.py
"""

from __future__ import annotations

import json
import math
import random
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from repro.api import Scenario  # noqa: E402
from repro.core.optimizer import ContextSwitchOptimizer  # noqa: E402
from repro.decision import ConsolidationDecisionModule  # noqa: E402
from repro.model.vm import VMState  # noqa: E402
from repro.obs import (  # noqa: E402
    Tracer,
    diff_traces,
    load_trace,
    phase_totals,
    span,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.cli import main as trace_cli  # noqa: E402
from repro.repair import RepairOptimizer  # noqa: E402
from repro.workloads import (  # noqa: E402
    ChurnGenerator,
    ProblemClass,
    heterogeneous_nodes,
)

from bench_repair import HALO, build_instance  # noqa: E402

#: The PR 7 churn tier the diff runs on: (VM count, churn fraction).
DIFF_TIER = (100, 0.1)
DIFF_ROUNDS = 3


def traced_loop_run() -> None:
    """A traced control-loop run: phases, round-trip, Chrome export, CLI."""
    generator = ChurnGenerator(
        seed=23,
        mean_interarrival_s=30.0,
        vm_count_choices=(2, 3),
        problem_classes=(ProblemClass.W,),
    )
    scenario = Scenario(
        nodes=heterogeneous_nodes(8, seed=5),
        workloads=generator.workloads(8),
        policy="consolidation",
        optimizer_timeout=2.0,
        engine="repair",
        trace=True,
    )
    result = scenario.run()
    assert result.trace is not None, "traced run carried no trace"

    document = result.to_dict()
    phases = set(phase_totals(load_trace(document)))
    expected = {"run", "round", "solve", "cp.solve", "execute"}
    missing = expected - phases
    assert not missing, f"trace is missing phases: {sorted(missing)}"
    assert len(phases) >= 5, f"only {len(phases)} phases recorded"

    chrome = to_chrome_trace(document)
    errors = validate_chrome_trace(json.loads(json.dumps(chrome)))
    assert not errors, f"chrome export invalid: {errors}"

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "run.trace.json"
        trace_path.write_text(json.dumps(document))
        assert trace_cli(["summary", str(trace_path)]) == 0
        out = Path(tmp) / "run.chrome.json"
        assert trace_cli(["export", str(trace_path), "-o", str(out)]) == 0
        exported = json.loads(out.read_text())
        assert not validate_chrome_trace(exported)
    print(f"traced loop run ok: {len(phases)} phases, "
          f"{len(chrome['traceEvents'])} chrome events")


def _traced_churn_solves(repair: bool, seed: int = 1000) -> dict:
    """Replay the PR 7 churn rounds under one tracer; returns its trace."""
    vm_count, churn = DIFF_TIER
    configuration, queue, vjob_of_vm = build_instance(vm_count, seed=seed)
    states = dict(
        ConsolidationDecisionModule().decide(configuration, queue).vm_states
    )
    cold = ContextSwitchOptimizer(timeout=30.0, first_solution_only=True)
    optimizer = (
        RepairOptimizer(cold, timeout=30.0, halo=HALO) if repair else cold
    )
    # Warm-up outside the trace: the repair engine's cold start is not a
    # steady-state round, and the cold side replays identical churn.
    current = optimizer.optimize(
        configuration, states, vjob_of_vm=vjob_of_vm
    ).target

    rng = random.Random(seed)
    victims_per_round = max(1, math.ceil(vm_count * churn))
    tracer = Tracer()
    with tracer.activate() as root:
        root.set(engine="repair" if repair else "cold")
        for index in range(DIFF_ROUNDS):
            running = sorted(
                vm
                for vm in current.vm_names
                if current.state_of(vm) is VMState.RUNNING
                and states.get(vm) is VMState.RUNNING
            )
            victims = rng.sample(
                running, min(victims_per_round, len(running))
            )
            for victim in victims:
                current.set_waiting(victim)
            if repair:
                optimizer.mark_dirty(victims)
            with span("round", index=index):
                with span("solve"):
                    result = optimizer.optimize(
                        current, states, vjob_of_vm=vjob_of_vm
                    )
            current = result.target
    return tracer.to_dict()


def churn_tier_diff() -> None:
    """``repro-trace diff`` on the PR 7 tier: cold vs repair solve time."""
    cold = _traced_churn_solves(repair=False)
    warm = _traced_churn_solves(repair=True)
    delta = diff_traces(cold, warm)
    solve = delta["phases"]["solve"]
    print(
        f"churn tier solve phase: cold {solve['before_s']:.3f}s -> "
        f"repair {solve['after_s']:.3f}s ({solve['delta_s']:+.3f}s)"
    )
    with tempfile.TemporaryDirectory() as tmp:
        before = Path(tmp) / "cold.trace.json"
        after = Path(tmp) / "repair.trace.json"
        before.write_text(json.dumps(cold))
        after.write_text(json.dumps(warm))
        assert trace_cli(["diff", str(before), str(after)]) == 0
    assert solve["after_s"] < solve["before_s"], (
        "repair engine did not reduce solve-phase time on the churn tier"
    )


def main() -> int:
    traced_loop_run()
    churn_tier_diff()
    print("trace smoke ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
