#!/usr/bin/env python
"""CI smoke of the benchmark-suite artifacts (the ``verify-smoke`` job).

End-to-end, against the *committed* pack under ``src/repro/instances/pack/``:

1. **Round trip** — every committed instance loads (fingerprint-verified),
   re-saves byte-for-byte, and matches its from-seed rebuild, so the
   shipped files cannot drift from the generators silently.
2. **CLI** — ``repro-verify`` (via :func:`repro.instances.cli.main`) scores
   an empty plan against every instance (exit 0), reports a failing plan
   with exit 1, and rejects garbage with exit 2 and a structured error.
3. **Floors** — the committed baseline scoreboard matches a fresh re-run of
   the whole policy grid byte-for-byte and still satisfies the headline
   ordering (consolidation at or under the FFD/FCFS floors).

Run locally with::

    python tools/verify_smoke.py

Exit status 0 on success, 1 with a diagnostic on the first failure.
"""

from __future__ import annotations

import contextlib
import io
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _ensure_importable() -> None:
    src = REPO_ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))


def fail(message: str) -> int:
    print(f"verify-smoke FAILED: {message}")
    return 1


def run_cli(*argv: str) -> tuple[int, str]:
    from repro.instances.cli import main

    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(list(argv))
    return code, buffer.getvalue()


def main() -> int:
    _ensure_importable()

    from repro.instances.baselines import (
        baseline_scoreboard,
        floor_violations,
        load_scoreboard,
        scoreboard_to_json,
    )
    from repro.instances.format import instance_to_json, load_instance
    from repro.instances.pack import (
        PACK_DIR,
        SCOREBOARD_PATH,
        build_pack,
        pack_instance_names,
    )

    names = pack_instance_names()
    if not names:
        return fail(f"no committed instances under {PACK_DIR}")

    # 1. round trips and from-seed rebuilds --------------------------------
    built = {instance.name: instance for instance in build_pack()}
    if sorted(built) != names:
        return fail(
            f"committed pack {names} does not match the seed build "
            f"{sorted(built)}"
        )
    for name in names:
        path = PACK_DIR / f"{name}.json"
        committed = path.read_text()
        instance = load_instance(path)  # raises on fingerprint drift
        if instance_to_json(instance) + "\n" != committed:
            return fail(f"{name}: save(load({path.name})) is not byte-stable")
        if instance_to_json(built[name]) + "\n" != committed:
            return fail(
                f"{name}: committed file drifted from its from-seed rebuild "
                "(regenerate with REPRO_UPDATE_GOLDENS=1 if intentional)"
            )
        print(f"round-trip {name}: ok ({instance.fingerprint})")

    # 2. the CLI ----------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        empty_plan = Path(tmp) / "empty-plan.json"
        empty_plan.write_text(json.dumps({"plan": {"pools": []}}))
        for name in names:
            code, out = run_cli(
                str(PACK_DIR / f"{name}.json"), str(empty_plan)
            )
            if code != 0:
                return fail(
                    f"repro-verify on {name} with an empty plan exited "
                    f"{code}: {out}"
                )
        garbage = Path(tmp) / "garbage.json"
        garbage.write_text("{not json")
        code, out = run_cli(str(PACK_DIR / f"{names[0]}.json"), str(garbage))
        if code != 2 or "error" not in json.loads(out):
            return fail(
                f"malformed submission: expected exit 2 with a structured "
                f"error, got {code}: {out}"
            )
    print(f"cli: ok ({len(names)} instances scored, garbage rejected)")

    # 3. the baseline floors ----------------------------------------------
    committed_board = load_scoreboard(SCOREBOARD_PATH)
    for name in names:
        entry = committed_board["instances"].get(name)
        fingerprint = load_instance(PACK_DIR / f"{name}.json").fingerprint
        if entry is None or entry["fingerprint"] != fingerprint:
            return fail(
                f"scoreboard is stale: {name} fingerprint mismatch "
                "(regenerate with REPRO_UPDATE_GOLDENS=1)"
            )
    fresh = baseline_scoreboard()
    if scoreboard_to_json(fresh) != SCOREBOARD_PATH.read_text():
        return fail(
            "baseline scoreboard drifted from a fresh re-run "
            "(a policy/solver change moved the floors; regenerate with "
            "REPRO_UPDATE_GOLDENS=1 and review the diff)"
        )
    problems = floor_violations(fresh)
    if problems:
        return fail("baseline floors violated: " + "; ".join(problems))
    print("floors: ok (consolidation beats the FFD/FCFS floors)")

    print("verify-smoke ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
