"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.model import Configuration, Node, make_working_nodes
from repro.testing import make_large_fleet, make_vm


@pytest.fixture
def three_nodes() -> list[Node]:
    """Three uniprocessor nodes as in the Figure 5/6 examples."""
    return make_working_nodes(3, cpu_capacity=1, memory_capacity=2048)


@pytest.fixture
def paper_nodes() -> list[Node]:
    """The 11 dual-core working nodes of the paper's testbed."""
    return make_working_nodes(11, cpu_capacity=2, memory_capacity=3584)


@pytest.fixture
def empty_configuration(three_nodes) -> Configuration:
    return Configuration(nodes=three_nodes)


@pytest.fixture
def vm_factory():
    return make_vm


@pytest.fixture(scope="session")
def large_fleet_factory():
    """Session-scoped access to the cached large-fleet factory.

    Builds each parameter set once per test session (the 20k-VM fleet takes
    a visible fraction of a second) and hands out *copies*, so tests can
    mutate freely without poisoning the cache."""

    def factory(vm_count: int, **kwargs) -> Configuration:
        return make_large_fleet(vm_count, **kwargs).copy()

    return factory


@pytest.fixture
def loaded_configuration(three_nodes) -> Configuration:
    """Two running VMs (one busy, one idle) and one waiting VM."""
    configuration = Configuration(nodes=three_nodes)
    configuration.add_vm(make_vm("busy", memory=1024, cpu=1))
    configuration.add_vm(make_vm("idle", memory=512, cpu=0))
    configuration.add_vm(make_vm("pending", memory=512, cpu=1))
    configuration.set_running("busy", "node-0")
    configuration.set_running("idle", "node-1")
    return configuration
