"""Propagation-engine equivalence properties.

The event-driven engine (incremental propagators, priority queue, trailed
counters) and the retained naive-fixpoint reference engine must be
observationally identical on the RJSP-style models the optimizer builds:
same satisfiability, same optimum, same proof-of-optimality status, and a
returned solution that satisfies every constraint.  Any mismatch means an
incremental counter or an idempotence flag is wrong.

Each engine gets its own freshly built model: variables are stateful, so the
two searches must not share domains.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cp import (
    AllDifferent,
    AllEqual,
    ElementSum,
    LinearLessEqual,
    Model,
    Solver,
    VectorPacking,
    prefer_value,
    static_order,
)

MEMORY_SIZES = (256, 512, 1024, 2048)


@st.composite
def rjsp_instances(draw):
    """A small randomized RJSP-like instance description (pure data, so the
    model can be built once per engine)."""
    node_count = draw(st.integers(min_value=1, max_value=4))
    vm_count = draw(st.integers(min_value=1, max_value=5))
    capacities = [
        (
            draw(st.integers(min_value=0, max_value=3)),
            draw(st.sampled_from((2048, 4096, 8192))),
        )
        for _ in range(node_count)
    ]
    demands = [
        (
            draw(st.integers(min_value=0, max_value=2)),
            draw(st.sampled_from(MEMORY_SIZES)),
        )
        for _ in range(vm_count)
    ]
    # Per-VM movement-cost tables over all nodes, like Table 1's cost model.
    tables = [
        {node: draw(st.integers(min_value=0, max_value=20)) for node in range(node_count)}
        for _ in range(vm_count)
    ]
    preferences = {
        f"x{i}": draw(st.integers(min_value=0, max_value=node_count - 1))
        for i in range(vm_count)
        if draw(st.booleans())
    }
    # Optional relational constraints, as Spread/Gather would add.
    spread = draw(st.booleans()) and vm_count >= 2
    gather = draw(st.booleans()) and vm_count >= 2 and not spread
    # Optional external incumbent, as the greedy repair would seed.
    initial_bound = draw(
        st.one_of(st.none(), st.integers(min_value=0, max_value=30))
    )
    # Optional knapsack side constraint on the assignments themselves.
    linear_bound = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=3 * vm_count)))
    return {
        "capacities": capacities,
        "demands": demands,
        "tables": tables,
        "preferences": preferences,
        "spread": spread,
        "gather": gather,
        "initial_bound": initial_bound,
        "linear_bound": linear_bound,
    }


def _build(instance):
    node_count = len(instance["capacities"])
    model = Model()
    assignment = [
        model.int_var(f"x{i}", range(node_count))
        for i in range(len(instance["demands"]))
    ]
    model.add_constraint(
        VectorPacking(assignment, instance["demands"], instance["capacities"])
    )
    upper = sum(max(t.values()) for t in instance["tables"])
    total = model.interval_var("total", 0, upper)
    model.add_constraint(ElementSum(assignment, instance["tables"], total))
    if instance["spread"]:
        model.add_constraint(AllDifferent(assignment[:2]))
    if instance["gather"]:
        model.add_constraint(AllEqual(assignment[:2]))
    if instance["linear_bound"] is not None:
        model.add_constraint(
            LinearLessEqual(assignment, [1] * len(assignment), instance["linear_bound"])
        )
    return model, assignment, total


def _solve(instance, engine):
    model, assignment, total = _build(instance)
    solver = Solver(
        model,
        variable_selector=static_order(assignment),
        value_selector=prefer_value(instance["preferences"]),
        engine=engine,
    )
    result = solver.solve(
        minimize=total, initial_bound=instance["initial_bound"], collect_all=True
    )
    return model, result


@settings(max_examples=120, deadline=None)
@given(rjsp_instances())
def test_engines_agree_on_optimum_and_proof(instance):
    model_e, event = _solve(instance, "event")
    model_f, fixpoint = _solve(instance, "fixpoint")

    assert event.has_solution == fixpoint.has_solution
    assert event.statistics.proven_optimal == fixpoint.statistics.proven_optimal
    if event.has_solution:
        assert event.best.objective == fixpoint.best.objective
        # The best solution of either engine satisfies every constraint of
        # its own model (domains were mutated in place during the search, so
        # check against the model that produced the solution).
        for model, result in ((model_e, event), (model_f, fixpoint)):
            for var in model.variables:
                var.domain.assign(result.best[var.name])
            assert all(c.is_satisfied() for c in model.constraints)


@settings(max_examples=60, deadline=None)
@given(rjsp_instances())
def test_engines_agree_in_satisfaction_mode(instance):
    results = {}
    for engine in ("event", "fixpoint"):
        model, assignment, total = _build(instance)
        solver = Solver(model, variable_selector=static_order(assignment), engine=engine)
        results[engine] = solver.solve()
    assert results["event"].has_solution == results["fixpoint"].has_solution
    if results["event"].has_solution:
        assert results["event"].best.values == results["fixpoint"].best.values


@settings(max_examples=60, deadline=None)
@given(rjsp_instances())
def test_event_engine_explores_the_same_tree(instance):
    """With identical heuristics the engines must reach the same fixpoints,
    hence walk byte-identical search trees (same node/backtrack counts)."""
    _, event = _solve(instance, "event")
    _, fixpoint = _solve(instance, "fixpoint")
    assert event.statistics.nodes == fixpoint.statistics.nodes
    assert event.statistics.backtracks == fixpoint.statistics.backtracks
    assert event.statistics.solutions == fixpoint.statistics.solutions
