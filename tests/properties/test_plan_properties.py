"""Property-based tests of the planner invariants (hypothesis).

For arbitrary small scenarios the planner must always produce a plan that
(a) reaches the requested target assignment, (b) is feasible pool after pool,
(c) never loses a VM, and (d) regroups the resumes of a vjob in a single pool.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.actions import ActionKind
from repro.core.cost import plan_cost
from repro.core.planner import build_plan
from repro.decision.ffd import ffd_target_configuration
from repro.model.configuration import Configuration
from repro.model.errors import NoPivotAvailableError, PlanningError
from repro.model.node import make_working_nodes
from repro.model.vm import VirtualMachine, VMState


MEMORY_SIZES = (256, 512, 1024, 2048)
STATES = (VMState.WAITING, VMState.RUNNING, VMState.SLEEPING)


@st.composite
def scenarios(draw):
    """A random (current configuration, target states) pair.

    The current placement is built first-fit so it is always viable; the
    target states are drawn independently per VM.
    """
    node_count = draw(st.integers(min_value=2, max_value=5))
    node_memory = draw(st.sampled_from((2048, 4096)))
    vm_count = draw(st.integers(min_value=1, max_value=8))

    nodes = make_working_nodes(node_count, cpu_capacity=2, memory_capacity=node_memory)
    configuration = Configuration(nodes=nodes)

    target_states: dict[str, VMState] = {}
    for index in range(vm_count):
        memory = draw(st.sampled_from(MEMORY_SIZES))
        cpu = draw(st.integers(min_value=0, max_value=1))
        vjob = f"job{index % 3}"
        vm = VirtualMachine(
            name=f"vm{index}", memory=memory, cpu_demand=cpu, vjob=vjob
        )
        configuration.add_vm(vm)

        current_state = draw(st.sampled_from(STATES))
        if current_state is VMState.RUNNING:
            host = next(
                (n for n in configuration.node_names if configuration.can_host(n, vm)),
                None,
            )
            if host is not None:
                configuration.set_running(vm.name, host)
            else:
                configuration.set_waiting(vm.name)
        elif current_state is VMState.SLEEPING:
            image = draw(st.sampled_from(configuration.node_names))
            configuration.set_sleeping(vm.name, image)

        # Only draw the transitions a decision module actually requests: a
        # running VM can keep running, be suspended or stopped; a sleeping VM
        # can be resumed or stay asleep; a waiting VM can be started or stay
        # in the queue (Figure 2).
        if configuration.state_of(vm.name) is VMState.RUNNING:
            allowed = (VMState.RUNNING, VMState.SLEEPING, VMState.TERMINATED)
        elif configuration.state_of(vm.name) is VMState.SLEEPING:
            allowed = (VMState.RUNNING, VMState.SLEEPING)
        else:  # waiting
            allowed = (VMState.RUNNING, VMState.WAITING)
        target_states[vm.name] = draw(st.sampled_from(allowed))

    return configuration, target_states


def vjob_mapping(configuration: Configuration) -> dict[str, str]:
    return {vm.name: vm.vjob for vm in configuration.vms if vm.vjob}


@settings(max_examples=60, deadline=None)
@given(scenarios())
def test_plan_reaches_a_viable_ffd_target(scenario):
    configuration, target_states = scenario
    target = ffd_target_configuration(configuration, target_states)
    if target is None:
        return  # the requested states do not fit on this cluster
    assert target.is_viable()
    try:
        plan = build_plan(configuration, target, vjob_mapping(configuration))
    except (NoPivotAvailableError, PlanningError):
        # legitimate failure: a migration cycle without any usable pivot
        return
    result = plan.apply()
    assert result.same_assignment(target)


@settings(max_examples=60, deadline=None)
@given(scenarios())
def test_plan_conserves_vms_and_costs_are_consistent(scenario):
    configuration, target_states = scenario
    target = ffd_target_configuration(configuration, target_states)
    if target is None:
        return
    try:
        plan = build_plan(configuration, target, vjob_mapping(configuration))
    except (NoPivotAvailableError, PlanningError):
        return
    result = plan.apply()
    assert set(result.vm_names) == set(configuration.vm_names)
    breakdown = plan_cost(plan)
    assert breakdown.total >= breakdown.local_total >= 0
    assert len(breakdown.pool_costs) == len(plan.pools)
    # every intermediate configuration stays viable
    running = configuration.copy()
    for pool in plan.pools:
        for action in pool:
            assert action.is_feasible(running)
        for action in pool:
            if not action.consumes_resources():
                action.apply(running)
        for action in pool:
            if action.consumes_resources():
                action.apply(running)
        assert running.is_viable()


@settings(max_examples=40, deadline=None)
@given(scenarios())
def test_vjob_resumes_are_grouped_in_one_pool(scenario):
    configuration, target_states = scenario
    target = ffd_target_configuration(configuration, target_states)
    if target is None:
        return
    mapping = vjob_mapping(configuration)
    try:
        plan = build_plan(configuration, target, mapping)
    except (NoPivotAvailableError, PlanningError):
        return
    pools_per_vjob: dict[str, set[int]] = {}
    for index, pool in enumerate(plan.pools):
        for action in pool:
            if action.kind is ActionKind.RESUME and action.vm in mapping:
                pools_per_vjob.setdefault(mapping[action.vm], set()).add(index)
    for pools in pools_per_vjob.values():
        assert len(pools) == 1


@settings(max_examples=40, deadline=None)
@given(scenarios())
def test_plan_touches_each_vm_at_most_twice(scenario):
    """A VM is moved at most twice: once as a bypass, once to its destination."""
    configuration, target_states = scenario
    target = ffd_target_configuration(configuration, target_states)
    if target is None:
        return
    try:
        plan = build_plan(configuration, target, vjob_mapping(configuration))
    except (NoPivotAvailableError, PlanningError):
        return
    touched: dict[str, int] = {}
    for action in plan.actions():
        touched[action.vm] = touched.get(action.vm, 0) + 1
    assert all(count <= 2 for count in touched.values())
