"""Property-based tests of the instance format and the standalone verifier.

Two ISSUE-mandated invariants, over arbitrary small instances:

* the JSON round trip is lossless — ``save → load → save`` is byte-stable
  and fingerprint-preserving;
* the standalone verifier's verdict agrees with the in-process checker
  pipeline, on valid plans and on deliberately mutated ones (a VM moved
  somewhere it must not go, a dropped action, a violated Spread/Fence).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.constraints import Fence, Spread
from repro.constraints.checker import check_plan
from repro.core.actions import Migrate
from repro.core.plan import Pool, ReconfigurationPlan
from repro.instances.format import (
    Instance,
    fingerprint_of,
    instance_from_dict,
    load_instance,
    save_instance,
)
from repro.instances.verifier import verify_submission
from repro.model.node import make_working_nodes
from repro.model.vjob import VJob
from repro.model.vm import VirtualMachine, VMState
from repro.workloads.traces import DemandTrace, Phase, VJobWorkload

MEMORY_SIZES = (256, 512, 1024)


@st.composite
def instances(draw):
    """A random viable instance: every VM runs alone-per-CPU first-fit, an
    optional Spread/Fence constraint over a drawn vjob."""
    node_count = draw(st.integers(min_value=3, max_value=6))
    vjob_count = draw(st.integers(min_value=1, max_value=3))
    nodes = make_working_nodes(
        node_count, cpu_capacity=2, memory_capacity=4096
    )

    workloads = []
    states: dict[str, VMState] = {}
    placement: dict[str, str] = {}
    cpu_used = {node.name: 0 for node in nodes}
    mem_used = {node.name: 0 for node in nodes}
    for j in range(vjob_count):
        vm_count = draw(st.integers(min_value=1, max_value=3))
        vms = []
        traces = {}
        for i in range(vm_count):
            name = f"job{j}.vm{i}"
            memory = draw(st.sampled_from(MEMORY_SIZES))
            phases = [
                Phase(
                    duration=float(draw(st.integers(60, 600))),
                    cpu_demand=draw(st.integers(0, 1)),
                )
                for _ in range(draw(st.integers(1, 3)))
            ]
            vm = VirtualMachine(
                name=name,
                memory=memory,
                cpu_demand=phases[0].cpu_demand,
                vjob=f"job{j}",
            )
            vms.append(vm)
            traces[name] = DemandTrace(phases)
        vjob = VJob(name=f"job{j}", vms=vms, priority=j)
        workloads.append(VJobWorkload(vjob=vjob, traces=traces))

        # place the whole vjob running, first-fit, or leave it waiting
        if draw(st.booleans()):
            fits = []
            for vm in vms:
                host = next(
                    (
                        n.name
                        for n in nodes
                        if cpu_used[n.name] + vm.cpu_demand <= n.cpu_capacity
                        and mem_used[n.name] + vm.memory <= n.memory_capacity
                    ),
                    None,
                )
                if host is None:
                    fits = []
                    break
                fits.append((vm, host))
                cpu_used[host] += vm.cpu_demand
                mem_used[host] += vm.memory
            for vm, host in fits:
                states[vm.name] = VMState.RUNNING
                placement[vm.name] = host

    constraints = ()
    if vjob_count >= 1 and draw(st.booleans()):
        target = workloads[draw(st.integers(0, vjob_count - 1))]
        vm_names = [vm.name for vm in target.vjob.vms]
        if draw(st.booleans()):
            constraints = (Spread(vm_names),)
        else:
            width = draw(st.integers(2, node_count))
            constraints = (
                Fence(vm_names, [f"node-{k}" for k in range(width)]),
            )

    return Instance(
        name="prop",
        seed=draw(st.integers(0, 2**31)),
        nodes=tuple(nodes),
        workloads=tuple(workloads),
        constraints=constraints,
        states=states,
        placement=placement,
    )


@settings(max_examples=40, deadline=None)
@given(instances())
def test_round_trip_is_byte_stable_and_fingerprint_preserving(
    tmp_path_factory, instance
):
    tmp_path = tmp_path_factory.mktemp("roundtrip")
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    fp1 = save_instance(instance, first)
    loaded = load_instance(first)
    fp2 = save_instance(loaded, second)
    assert fp1 == fp2 == instance.fingerprint
    assert first.read_bytes() == second.read_bytes()
    assert loaded.configuration() == instance.configuration()


@settings(max_examples=40, deadline=None)
@given(instances())
def test_document_round_trip_preserves_fingerprint(instance):
    document = instance.document()
    rebuilt = instance_from_dict(document)
    assert rebuilt.document() == document
    assert fingerprint_of(rebuilt.to_dict()) == instance.fingerprint


@st.composite
def plans_against(draw, instance):
    """A submitted plan over ``instance``: each pool migrates one running
    VM to a drawn node.  ``mutate`` marks deliberate corruption — dropping
    a leading pool so later assumptions break, or rerouting a migration."""
    running = sorted(
        vm
        for w in instance.workloads
        for vm in (v.name for v in w.vjob.vms)
        if vm in instance.states
        and instance.states[vm] is VMState.RUNNING
    )
    if not running:
        return []
    count = draw(st.integers(1, min(3, len(running))))
    chosen = draw(
        st.lists(
            st.sampled_from(running),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    node_names = [node.name for node in instance.nodes]
    pools = []
    for vm in chosen:
        destination = draw(st.sampled_from(node_names))
        source = instance.placement[vm]
        if destination == source:
            continue
        pools.append(
            [
                {
                    "kind": "migrate",
                    "vm": vm,
                    "source": source,
                    "destination": destination,
                }
            ]
        )
    return pools


@st.composite
def verification_cases(draw):
    instance = draw(instances())
    pools = draw(plans_against(instance))
    if pools and draw(st.booleans()):
        mutation = draw(st.sampled_from(("drop-action", "reroute")))
        if mutation == "drop-action":
            pools = pools[1:]
        else:
            node_names = [node.name for node in instance.nodes]
            action = pools[0][0]
            action["destination"] = draw(st.sampled_from(node_names))
            if action["destination"] == action["source"]:
                action["destination"] = node_names[
                    (node_names.index(action["source"]) + 1) % len(node_names)
                ]
    return instance, pools


@settings(max_examples=60, deadline=None)
@given(verification_cases())
def test_verifier_agrees_with_in_process_checker(case):
    """Whatever the submission — valid, rerouted into a constraint, or with
    an action dropped — the standalone verdict must match replaying the
    same pools through ReconfigurationPlan + check_plan directly."""
    instance, pools = case
    report = verify_submission(instance, {"plan": {"pools": pools}})

    plan = ReconfigurationPlan(source=instance.configuration())
    for pool_spec in pools:
        pool = Pool()
        for spec in pool_spec:
            pool.add(
                Migrate(
                    vm=spec["vm"],
                    source_node=spec["source"],
                    destination_node=spec["destination"],
                )
            )
        plan.append_pool(pool)

    feasible = True
    try:
        plan.apply()
    except Exception:
        feasible = False
    assert report.feasible == feasible

    if feasible:
        direct = tuple(
            check_plan(plan, instance.constraints, include_source=False)
        )
        assert [
            (v.constraint, v.message) for v in report.constraint_violations
        ] == [(v.constraint, v.message) for v in direct]
        assert report.passed == (not direct and report.viable)
    else:
        assert not report.passed
